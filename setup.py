"""Setuptools configuration.

The offline environment used for this reproduction lacks the ``wheel``
package, so PEP-660 editable installs fail.  This setup lets
``pip install -e . --no-build-isolation --no-use-pep517`` fall back to the
legacy ``setup.py develop`` path.

Optional extras:

* ``repro[array-api]`` -- installs ``array-api-strict``, enabling the
  strict-conformance kernel backend (``Scenario(backend="array_api_strict")``
  and the portable-path tests in ``tests/kernels``).  The core package only
  needs NumPy/SciPy; CuPy and JAX backends register automatically whenever
  those modules are importable, so they need no extra here.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.5.0",
    description=(
        "Reproduction of 'Sprout: a functional caching approach to minimize "
        "service latency in erasure-coded storage' (ICDCS 2016)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=[
        "numpy>=1.22",
        "scipy>=1.8",
    ],
    extras_require={
        "array-api": ["array-api-strict>=1.1"],
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
    entry_points={
        "console_scripts": [
            # The experiments CLI (same interface as
            # ``python -m repro.experiments``): --list, per-experiment
            # runs, --fault/--fault-param, --workload/--workload-param.
            "repro-experiments=repro.experiments.runner:main",
        ],
    },
)
