"""Setuptools shim.

The offline environment used for this reproduction lacks the ``wheel``
package, so PEP-660 editable installs fail.  This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` fall back to the
legacy ``setup.py develop`` path.  All project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
