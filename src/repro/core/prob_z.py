"""Solver for the ``Prob Z`` sub-problem of Algorithm 1.

For fixed scheduling probabilities ``pi_{i,j}`` the objective of Eq. (6)
separates over files, and the only remaining variables are the per-file
auxiliary scalars ``z_i >= 0``.  Each one-dimensional problem is convex; the
paper solves it by projected gradient descent.  We provide both that solver
and a bisection-on-the-derivative solver (the default, since it is exact for
this scalar convex problem) so the projected-gradient path stays available
for validation and ablation benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from repro.core.bound import SolutionState, node_moments
from repro.core.model import StorageSystemModel
from repro.queueing.mg1 import QueueMoments
from repro.queueing.order_stats import (
    latency_bound_at_z,
    latency_bound_gradient_z,
    optimal_z,
)


def solve_prob_z(
    model: StorageSystemModel,
    state: SolutionState,
    moments: Mapping[int, QueueMoments] | None = None,
    method: str = "bisection",
    learning_rate: float = 0.5,
    max_iterations: int = 500,
    tolerance: float = 1e-9,
) -> List[float]:
    """Optimize every ``z_i`` for the scheduling probabilities in ``state``.

    Parameters
    ----------
    model:
        The storage-system model (used only for node moments).
    state:
        Candidate solution providing the fixed ``pi_{i,j}``.
    moments:
        Pre-computed node moments; recomputed from ``state`` when omitted.
    method:
        ``"bisection"`` (exact, default) or ``"gradient"`` (projected
        gradient descent, as described in the paper).
    learning_rate, max_iterations, tolerance:
        Parameters of the projected-gradient solver.

    Returns
    -------
    list of float
        The optimal ``z_i`` for every file, in model file order.
    """
    if moments is None:
        moments = node_moments(model, state)
    z_values: List[float] = []
    for file_probs in state.probabilities:
        relevant = {node_id: moments[node_id] for node_id in file_probs}
        if method == "bisection":
            z_values.append(optimal_z(file_probs, relevant))
        elif method == "gradient":
            z_values.append(
                _projected_gradient_z(
                    file_probs,
                    relevant,
                    learning_rate=learning_rate,
                    max_iterations=max_iterations,
                    tolerance=tolerance,
                )
            )
        else:
            raise ValueError(f"unknown Prob Z method {method!r}")
    return z_values


def _projected_gradient_z(
    probabilities: Dict[int, float],
    moments: Mapping[int, QueueMoments],
    learning_rate: float,
    max_iterations: int,
    tolerance: float,
) -> float:
    """Projected gradient descent on the scalar convex ``z`` problem.

    The iterate is clamped at zero after every step, exactly as described in
    Section IV-B ("making z as zero if the solution is negative in each
    iteration").
    """
    if not probabilities or all(pi == 0.0 for pi in probabilities.values()):
        return 0.0
    z = max(
        (moment.mean for node_id, moment in moments.items() if probabilities.get(node_id, 0.0) > 0),
        default=0.0,
    )
    previous_value = latency_bound_at_z(z, probabilities, moments)
    step = learning_rate
    for _ in range(max_iterations):
        gradient = latency_bound_gradient_z(z, probabilities, moments)
        candidate = max(z - step * gradient, 0.0)
        candidate_value = latency_bound_at_z(candidate, probabilities, moments)
        if candidate_value > previous_value:
            # Backtrack: the step overshot the minimum of the convex bowl.
            step *= 0.5
            if step < 1e-12:
                break
            continue
        improvement = previous_value - candidate_value
        z = candidate
        previous_value = candidate_value
        if improvement < tolerance and abs(gradient) < 1e-6:
            break
    return z
