"""Solvers for the ``Prob Pi`` sub-problem of Algorithm 1.

For fixed auxiliary variables ``z_i`` the objective of Eq. (6) is convex in
the scheduling probabilities ``pi_{i,j}`` over the polytope

    0 <= pi_{i,j} <= 1,              pi_{i,j} = 0 for j not in S_i,
    K_L,i <= sum_j pi_{i,j} <= K_U,i,
    sum_i (k_i - sum_j pi_{i,j}) <= C.

The paper solves this with projected gradient descent, using MOSEK for the
projection step.  We provide three interchangeable solvers:

* :func:`solve_projected_gradient` (default) -- Armijo-backtracking projected
  gradient descent using the exact polytope projection implemented in
  :class:`repro.core.vectorized.VectorizedSystem`.
* :func:`solve_frank_wolfe` -- the conditional-gradient method whose linear
  minimisation oracle over this polytope has a closed-form greedy solution;
  useful as an independent cross-check and for ablation benchmarks.
* :func:`solve_fista` -- accelerated projected gradient (FISTA with a
  monotone restart and backtracking Lipschitz estimation), the workhorse of
  the online re-solver in :mod:`repro.control.resolve`; it accepts a custom
  ``projector`` so warm-started solves can project over a reduced active
  set.
* :func:`solve_slsqp` -- ``scipy.optimize`` SLSQP for small instances, used
  by the test-suite to validate the two first solvers.

Every solver takes a ``warm_start=`` alias for ``initial_pi``: the online
controller passes the previous bin's converged iterate here, which is what
makes per-drift re-solves cheap relative to cold starts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.core.vectorized import VectorizedSystem
from repro.exceptions import OptimizationError


@dataclass
class ProbPiResult:
    """Outcome of a Prob-Pi solve."""

    pi: np.ndarray
    objective: float
    iterations: int
    converged: bool
    #: Final backtracked Lipschitz estimate (FISTA only); carrying it into
    #: the next warm solve skips the initial step-size search.
    lipschitz: float = 0.0


def solve_projected_gradient(
    system: VectorizedSystem,
    z: np.ndarray,
    lower_sums: np.ndarray,
    upper_sums: np.ndarray,
    initial_pi: Optional[np.ndarray] = None,
    fixed_mask: Optional[np.ndarray] = None,
    fixed_values: Optional[np.ndarray] = None,
    max_iterations: int = 120,
    tolerance: float = 1e-6,
    initial_step: float = 1.0,
    warm_start: Optional[np.ndarray] = None,
) -> ProbPiResult:
    """Projected gradient descent with Armijo backtracking.

    Parameters
    ----------
    system:
        The compiled system providing objective, gradient and projection.
    z:
        Fixed per-file auxiliary variables.
    lower_sums, upper_sums:
        Per-file bounds ``K_L,i`` / ``K_U,i`` on ``sum_j pi_{i,j}``.
    initial_pi:
        Warm-start point; defaults to the projected no-cache start.
    fixed_mask, fixed_values:
        Per-pair coordinates frozen by the integer-rounding outer loop.
    warm_start:
        Alias for ``initial_pi`` (takes precedence when both are given);
        the online re-solver passes the previous bin's iterate here.
    """
    if warm_start is not None:
        initial_pi = warm_start
    if initial_pi is None:
        initial_pi = system.initial_pi()
    pi = system.project(initial_pi, lower_sums, upper_sums, fixed_mask, fixed_values)
    objective, gradient = system.objective_and_gradient(pi, z)
    step = initial_step
    converged = False
    iterations_used = 0
    for iteration in range(max_iterations):
        iterations_used = iteration + 1
        candidate = system.project(
            pi - step * gradient, lower_sums, upper_sums, fixed_mask, fixed_values
        )
        direction = candidate - pi
        direction_norm = float(np.linalg.norm(direction))
        if direction_norm < tolerance:
            converged = True
            break
        # Armijo backtracking *along the feasible segment* pi -> candidate:
        # both endpoints are feasible, so every interior point is feasible
        # and no further projections are needed during the line search.
        expected_decrease = float(np.dot(gradient, direction))
        alpha = 1.0
        candidate_objective = system.objective(pi + alpha * direction, z)
        backtracks = 0
        while (
            candidate_objective > objective + 1e-4 * alpha * expected_decrease
            and backtracks < 25
        ):
            alpha *= 0.5
            candidate_objective = system.objective(pi + alpha * direction, z)
            backtracks += 1
        if candidate_objective >= objective - 1e-15:
            # No descent even with a tiny step: treat as converged.
            converged = True
            break
        improvement = objective - candidate_objective
        pi = pi + alpha * direction
        objective, gradient = system.objective_and_gradient(pi, z)
        if backtracks == 0:
            step *= 1.5
        elif backtracks > 2:
            step *= 0.5
        if improvement < tolerance * max(abs(objective), 1.0):
            converged = True
            break
    return ProbPiResult(
        pi=pi, objective=objective, iterations=iterations_used, converged=converged
    )


#: Backtracking doublings of ``L`` before/after which solve_fista falls back
#: from the quadratic-model test to plain monotone descent (see below).
_MIN_BACKTRACKS = 30
_MAX_BACKTRACKS = 60


def solve_fista(
    system: VectorizedSystem,
    z: np.ndarray,
    lower_sums: np.ndarray,
    upper_sums: np.ndarray,
    initial_pi: Optional[np.ndarray] = None,
    fixed_mask: Optional[np.ndarray] = None,
    fixed_values: Optional[np.ndarray] = None,
    max_iterations: int = 400,
    tolerance: float = 1e-10,
    check_window: int = 20,
    initial_lipschitz: float = 1.0,
    projector: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    warm_start: Optional[np.ndarray] = None,
) -> ProbPiResult:
    """Accelerated projected gradient (FISTA) with a monotone restart.

    The step size is governed by a backtracked Lipschitz estimate ``L``:
    whenever the quadratic upper model at ``L`` is violated the estimate
    doubles, and after every accepted step it decays slightly (x0.95, or
    x0.9 on a restart) so the method re-probes for longer steps as the
    local curvature flattens.  Acceleration is restarted (momentum reset,
    iterate rewound) whenever the candidate would increase the objective,
    which keeps the iteration monotone -- important because the stopping
    rule is *windowed improvement*: every ``check_window`` iterations the
    solver stops once the objective improved by less than
    ``tolerance * max(|objective|, 1)`` over the window.  Unlike a
    gradient-norm test this is robust to the slow tail of the condition
    number and is what the warm/cold parity guarantee of
    :mod:`repro.control.resolve` is calibrated against.

    Parameters
    ----------
    projector:
        Optional replacement for ``system.project``: a callable mapping a
        trial point to its projection onto the feasible set.  The online
        re-solver passes a reduced active-set projector here so warm
        solves only pay for the coordinates the previous solution left
        strictly inside the box.
    warm_start:
        Alias for ``initial_pi`` (takes precedence when both are given).
    initial_lipschitz:
        Starting value of the backtracked Lipschitz estimate; pass the
        ``lipschitz`` field of a previous result to skip the warm-up.
    """
    if warm_start is not None:
        initial_pi = warm_start
    if initial_pi is None:
        initial_pi = system.initial_pi()
    if projector is None:
        def projector(point: np.ndarray) -> np.ndarray:
            return system.project(
                point, lower_sums, upper_sums, fixed_mask, fixed_values
            )
    if initial_lipschitz <= 0.0:
        raise OptimizationError("initial_lipschitz must be positive")

    pi = projector(np.asarray(initial_pi, dtype=float))
    momentum_point = pi.copy()
    t = 1.0
    objective = system.objective(pi, z)
    lipschitz = float(initial_lipschitz)
    anchor = objective
    iterations_used = 0
    converged = False
    for iteration in range(max_iterations):
        iterations_used = iteration + 1
        objective_y, gradient_y = system.objective_and_gradient(momentum_point, z)
        # Backtracking: double L until the quadratic model at L upper-bounds
        # the objective at the projected gradient step.  Near a queueing
        # saturation pole the gradient spans many orders of magnitude and
        # the linear term of the model wildly overestimates the possible
        # descent, so no finite L satisfies the test even though the
        # candidates descend enormously; after a bounded number of
        # doublings, accept any candidate that strictly improves on the
        # current objective (plain monotone descent still converges).
        for backtrack in range(_MAX_BACKTRACKS + 1):
            candidate = projector(momentum_point - gradient_y / lipschitz)
            step = candidate - momentum_point
            quadratic = (
                objective_y
                + float(np.dot(gradient_y, step))
                + 0.5 * lipschitz * float(np.dot(step, step))
            )
            candidate_objective = system.objective(candidate, z)
            if candidate_objective <= quadratic + 1e-12:
                break
            if backtrack >= _MIN_BACKTRACKS and candidate_objective < objective:
                break
            lipschitz *= 2.0
        t_next = 0.5 * (1.0 + np.sqrt(1.0 + 4.0 * t * t))
        if candidate_objective > objective:
            # Monotone restart: rewind to the best iterate, drop momentum.
            momentum_point = pi.copy()
            t = 1.0
            lipschitz *= 0.9
        else:
            momentum = (t - 1.0) / t_next
            momentum_point = candidate + momentum * (candidate - pi)
            pi = candidate
            objective = candidate_objective
            t = t_next
            lipschitz *= 0.95
        if (iteration + 1) % check_window == 0:
            if anchor - objective < tolerance * max(abs(objective), 1.0):
                converged = True
                break
            anchor = objective
    return ProbPiResult(
        pi=pi,
        objective=objective,
        iterations=iterations_used,
        converged=converged,
        lipschitz=lipschitz,
    )


def solve_frank_wolfe(
    system: VectorizedSystem,
    z: np.ndarray,
    lower_sums: np.ndarray,
    upper_sums: np.ndarray,
    initial_pi: Optional[np.ndarray] = None,
    fixed_mask: Optional[np.ndarray] = None,
    fixed_values: Optional[np.ndarray] = None,
    max_iterations: int = 300,
    tolerance: float = 1e-6,
    warm_start: Optional[np.ndarray] = None,
) -> ProbPiResult:
    """Frank-Wolfe (conditional gradient) solver.

    The linear minimisation oracle over the Prob-Pi polytope has a greedy
    solution: each file first takes its mandatory ``K_L,i`` units on its
    cheapest coordinates, all remaining negative-cost coordinates are added
    up to the per-file caps, and if the coupling constraint
    ``sum pi >= T`` is still violated the globally cheapest remaining
    coordinates are raised until it holds.  ``warm_start`` is an alias for
    ``initial_pi`` (takes precedence when both are given).
    """
    if warm_start is not None:
        initial_pi = warm_start
    if initial_pi is None:
        initial_pi = system.initial_pi()
    pi = system.project(initial_pi, lower_sums, upper_sums, fixed_mask, fixed_values)
    objective = system.objective(pi, z)
    converged = False
    iterations_used = 0
    for iteration in range(max_iterations):
        iterations_used = iteration + 1
        _, gradient = system.objective_and_gradient(pi, z)
        vertex = _linear_oracle(
            system, gradient, lower_sums, upper_sums, fixed_mask, fixed_values
        )
        direction = vertex - pi
        gap = float(-np.dot(gradient, direction))
        if gap < tolerance:
            converged = True
            break
        # Exact-ish line search over the segment via golden-section.
        step = _line_search(system, pi, direction, z)
        if step <= 0.0:
            converged = True
            break
        pi = pi + step * direction
        new_objective = system.objective(pi, z)
        if objective - new_objective < tolerance * max(abs(objective), 1.0):
            objective = new_objective
            converged = True
            break
        objective = new_objective
    return ProbPiResult(
        pi=pi, objective=objective, iterations=iterations_used, converged=converged
    )


def _linear_oracle(
    system: VectorizedSystem,
    costs: np.ndarray,
    lower_sums: np.ndarray,
    upper_sums: np.ndarray,
    fixed_mask: Optional[np.ndarray],
    fixed_values: Optional[np.ndarray],
) -> np.ndarray:
    """Minimise ``costs . pi`` over the Prob-Pi polytope (greedy solution)."""
    num_pairs = system.num_pairs
    if fixed_mask is None:
        fixed_mask = np.zeros(num_pairs, dtype=bool)
    if fixed_values is None:
        fixed_values = np.zeros(num_pairs, dtype=float)

    pi = np.zeros(num_pairs, dtype=float)
    pi[fixed_mask] = fixed_values[fixed_mask]

    order = np.argsort(costs, kind="stable")
    file_totals = system.file_sums(pi)

    # Phase 1: per-file mandatory minimum K_L using the cheapest coordinates.
    for pair_index in order:
        if fixed_mask[pair_index]:
            continue
        file_position = int(system.pair_file[pair_index])
        deficit = lower_sums[file_position] - file_totals[file_position]
        if deficit <= 1e-12:
            continue
        amount = min(1.0, deficit)
        pi[pair_index] = amount
        file_totals[file_position] += amount

    # Phase 2: negative-cost coordinates are profitable on their own.
    for pair_index in order:
        if fixed_mask[pair_index] or costs[pair_index] >= 0.0:
            continue
        file_position = int(system.pair_file[pair_index])
        headroom = upper_sums[file_position] - file_totals[file_position]
        if headroom <= 1e-12:
            continue
        extra = min(1.0 - pi[pair_index], headroom)
        if extra <= 0.0:
            continue
        pi[pair_index] += extra
        file_totals[file_position] += extra

    # Phase 3: meet the coupling constraint sum(pi) >= T as cheaply as possible.
    target_total = system.required_total()
    total = float(pi.sum())
    if total < target_total - 1e-9:
        for pair_index in order:
            if fixed_mask[pair_index]:
                continue
            file_position = int(system.pair_file[pair_index])
            headroom = upper_sums[file_position] - file_totals[file_position]
            slack = min(1.0 - pi[pair_index], headroom)
            if slack <= 1e-12:
                continue
            add = min(slack, target_total - total)
            pi[pair_index] += add
            file_totals[file_position] += add
            total += add
            if total >= target_total - 1e-9:
                break
        if total < target_total - 1e-6:
            raise OptimizationError(
                "linear oracle could not satisfy the cache-capacity constraint"
            )
    return pi


def _line_search(
    system: VectorizedSystem,
    pi: np.ndarray,
    direction: np.ndarray,
    z: np.ndarray,
    iterations: int = 40,
) -> float:
    """Golden-section line search for the Frank-Wolfe step in [0, 1]."""
    golden = (np.sqrt(5.0) - 1.0) / 2.0
    low, high = 0.0, 1.0
    point_a = high - golden * (high - low)
    point_b = low + golden * (high - low)
    value_a = system.objective(pi + point_a * direction, z)
    value_b = system.objective(pi + point_b * direction, z)
    for _ in range(iterations):
        if value_a < value_b:
            high = point_b
            point_b, value_b = point_a, value_a
            point_a = high - golden * (high - low)
            value_a = system.objective(pi + point_a * direction, z)
        else:
            low = point_a
            point_a, value_a = point_b, value_b
            point_b = low + golden * (high - low)
            value_b = system.objective(pi + point_b * direction, z)
    best = 0.5 * (low + high)
    if system.objective(pi + best * direction, z) >= system.objective(pi, z):
        return 0.0
    return best


def solve_slsqp(
    system: VectorizedSystem,
    z: np.ndarray,
    lower_sums: np.ndarray,
    upper_sums: np.ndarray,
    initial_pi: Optional[np.ndarray] = None,
    max_iterations: int = 200,
    warm_start: Optional[np.ndarray] = None,
) -> ProbPiResult:
    """Solve Prob Pi with ``scipy.optimize`` SLSQP (small instances only)."""
    from scipy import optimize

    if warm_start is not None:
        initial_pi = warm_start
    if initial_pi is None:
        initial_pi = system.initial_pi()
    initial_pi = system.project(initial_pi, lower_sums, upper_sums)

    def objective(pi: np.ndarray) -> float:
        return system.objective(pi, z)

    def gradient(pi: np.ndarray) -> np.ndarray:
        return system.objective_and_gradient(pi, z)[1]

    constraints = []
    target_total = system.required_total()
    constraints.append(
        {"type": "ineq", "fun": lambda pi: float(pi.sum()) - target_total}
    )
    for file_position in range(system.num_files):
        mask = system.pair_file == file_position
        constraints.append(
            {
                "type": "ineq",
                "fun": (lambda pi, m=mask, u=float(upper_sums[file_position]): u - float(pi[m].sum())),
            }
        )
        constraints.append(
            {
                "type": "ineq",
                "fun": (lambda pi, m=mask, l=float(lower_sums[file_position]): float(pi[m].sum()) - l),
            }
        )
    bounds = [(0.0, 1.0)] * system.num_pairs
    result = optimize.minimize(
        objective,
        initial_pi,
        jac=gradient,
        bounds=bounds,
        constraints=constraints,
        method="SLSQP",
        options={"maxiter": max_iterations, "ftol": 1e-9},
    )
    pi = np.clip(result.x, 0.0, 1.0)
    return ProbPiResult(
        pi=pi,
        objective=float(result.fun),
        iterations=int(result.nit),
        converged=bool(result.success),
    )
