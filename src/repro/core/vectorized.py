"""Vectorised evaluation of the Eq. (6) objective and its gradient.

The reference implementation in :mod:`repro.core.bound` works with per-file
dictionaries, which is convenient for small examples and unit tests but too
slow for the paper-scale instances (1000 files x 7 chunk placements).  This
module compiles a :class:`~repro.core.model.StorageSystemModel` into flat
numpy arrays indexed by (file, node) *pairs* -- one entry for every
``pi_{i,j}`` with ``j in S_i`` -- and provides:

* node arrival rates, M/G/1 moments and their derivatives,
* the weighted latency objective and its gradient with respect to ``pi``,
* vectorised per-file optimisation of the auxiliary variables ``z_i``,
* Euclidean projection onto the Prob-Pi feasible polytope
  ``{0 <= pi <= 1, K_L,i <= sum_j pi_{i,j} <= K_U,i, sum_i,j pi_{i,j} >= T}``
  where ``T = sum_i k_i - C`` encodes the cache-capacity constraint.

The tests in ``tests/core/test_vectorized.py`` verify that the vectorised
objective agrees with the dictionary-based reference implementation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.bound import SolutionState
from repro.core.model import StorageSystemModel
from repro.exceptions import InfeasibleError, OptimizationError

#: Utilisation clamp used to keep the objective finite (and extremely large)
#: when a candidate point drives a node beyond its stability region.
_RHO_CLAMP = 1.0 - 1e-7


class VectorizedSystem:
    """Array-based view of a storage-system model for fast optimization.

    Parameters
    ----------
    model:
        The storage-system model to compile.
    """

    def __init__(self, model: StorageSystemModel):
        self._model = model
        self._node_ids: List[int] = model.node_ids
        self._node_index: Dict[int, int] = {
            node_id: position for position, node_id in enumerate(self._node_ids)
        }
        files = model.files
        self.num_files = len(files)
        self.num_nodes = len(self._node_ids)

        pair_file: List[int] = []
        pair_node: List[int] = []
        for file_position, spec in enumerate(files):
            for node_id in spec.placement:
                pair_file.append(file_position)
                pair_node.append(self._node_index[node_id])
        self.pair_file = np.asarray(pair_file, dtype=np.int64)
        self.pair_node = np.asarray(pair_node, dtype=np.int64)
        self.num_pairs = self.pair_file.size

        self.arrival_rates = np.asarray(
            [spec.arrival_rate for spec in files], dtype=float
        )
        total_rate = float(self.arrival_rates.sum())
        if total_rate <= 0:
            raise OptimizationError("total arrival rate must be positive")
        self.weights = self.arrival_rates / total_rate
        self.k_values = np.asarray([spec.k for spec in files], dtype=float)
        self.n_values = np.asarray([spec.n for spec in files], dtype=float)
        self.cache_capacity = float(model.cache_capacity)

        self.mu = np.asarray(
            [model.service(node_id).rate for node_id in self._node_ids], dtype=float
        )
        self.gamma2 = np.asarray(
            [model.service(node_id).second_moment for node_id in self._node_ids],
            dtype=float,
        )
        self.gamma3 = np.asarray(
            [model.service(node_id).third_moment for node_id in self._node_ids],
            dtype=float,
        )
        self.sigma2 = np.asarray(
            [model.service(node_id).variance for node_id in self._node_ids],
            dtype=float,
        )

    # ------------------------------------------------------------------
    # Conversions between flat vectors and SolutionState
    # ------------------------------------------------------------------

    @property
    def model(self) -> StorageSystemModel:
        """The underlying model."""
        return self._model

    def initial_pi(self) -> np.ndarray:
        """Uniform no-cache starting point ``pi_{i,j} = k_i / n_i``."""
        return (self.k_values / self.n_values)[self.pair_file]

    def from_state(self, state: SolutionState) -> np.ndarray:
        """Flatten a :class:`SolutionState` into a pair vector."""
        pi = np.zeros(self.num_pairs, dtype=float)
        for pair_index in range(self.num_pairs):
            file_position = int(self.pair_file[pair_index])
            node_id = self._node_ids[int(self.pair_node[pair_index])]
            pi[pair_index] = state.probabilities[file_position].get(node_id, 0.0)
        return pi

    def to_state(self, pi: np.ndarray, z: Optional[np.ndarray] = None) -> SolutionState:
        """Expand a pair vector (and optional z vector) into a SolutionState."""
        probabilities: List[Dict[int, float]] = [dict() for _ in range(self.num_files)]
        for pair_index in range(self.num_pairs):
            file_position = int(self.pair_file[pair_index])
            node_id = self._node_ids[int(self.pair_node[pair_index])]
            probabilities[file_position][node_id] = float(pi[pair_index])
        if z is None:
            z = self.optimal_z(pi)
        return SolutionState(probabilities=probabilities, z_values=[float(v) for v in z])

    # ------------------------------------------------------------------
    # Queueing quantities
    # ------------------------------------------------------------------

    def node_rates(self, pi: np.ndarray) -> np.ndarray:
        """Aggregate chunk arrival rate ``Lambda_j`` at every node."""
        contributions = self.arrival_rates[self.pair_file] * pi
        return np.bincount(self.pair_node, weights=contributions, minlength=self.num_nodes)

    def queue_moments(self, node_rates: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised Eqs. (3)-(4): mean and variance of node sojourn times."""
        rho = np.minimum(node_rates / self.mu, _RHO_CLAMP)
        effective_rates = rho * self.mu
        one_minus_rho = 1.0 - rho
        mean = 1.0 / self.mu + effective_rates * self.gamma2 / (2.0 * one_minus_rho)
        variance = (
            self.sigma2
            + effective_rates * self.gamma3 / (3.0 * one_minus_rho)
            + effective_rates**2 * self.gamma2**2 / (4.0 * one_minus_rho**2)
        )
        return mean, variance

    def queue_moment_derivatives(self, node_rates: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Derivatives of the node moments with respect to ``Lambda_j``."""
        rho = np.minimum(node_rates / self.mu, _RHO_CLAMP)
        effective_rates = rho * self.mu
        one_minus_rho = 1.0 - rho
        d_mean = self.gamma2 / (2.0 * one_minus_rho**2)
        d_var = (
            self.gamma3 / (3.0 * one_minus_rho**2)
            + effective_rates * self.gamma2**2 / (2.0 * one_minus_rho**2)
            + effective_rates**2 * self.gamma2**2 / (2.0 * self.mu * one_minus_rho**3)
        )
        return d_mean, d_var

    # ------------------------------------------------------------------
    # Objective, bounds and gradients
    # ------------------------------------------------------------------

    def per_file_bounds(self, pi: np.ndarray, z: np.ndarray) -> np.ndarray:
        """Per-file Lemma-1 bounds evaluated at the given ``z``."""
        mean, variance = self.queue_moments(self.node_rates(pi))
        diff = mean[self.pair_node] - z[self.pair_file]
        root = np.sqrt(diff * diff + variance[self.pair_node])
        pair_terms = 0.5 * pi * (diff + root)
        bounds = z + np.bincount(
            self.pair_file, weights=pair_terms, minlength=self.num_files
        )
        return bounds

    def objective(self, pi: np.ndarray, z: np.ndarray) -> float:
        """The weighted latency objective of Eq. (6)."""
        return float(np.dot(self.weights, self.per_file_bounds(pi, z)))

    def objective_and_gradient(
        self, pi: np.ndarray, z: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """Objective value and its gradient with respect to ``pi``.

        Each ``pi_{i,j}`` has a direct effect on the file-``i`` bound and an
        indirect effect through the node load ``Lambda_j`` which every file
        scheduling that node experiences; both are included.
        """
        node_rates = self.node_rates(pi)
        mean, variance = self.queue_moments(node_rates)
        d_mean, d_var = self.queue_moment_derivatives(node_rates)

        diff = mean[self.pair_node] - z[self.pair_file]
        root = np.sqrt(diff * diff + variance[self.pair_node])
        safe_root = np.where(root > 0.0, root, 1.0)

        pair_weights = self.weights[self.pair_file]
        pair_terms = 0.5 * pi * (diff + root)
        bounds = z + np.bincount(
            self.pair_file, weights=pair_terms, minlength=self.num_files
        )
        objective = float(np.dot(self.weights, bounds))

        direct = pair_weights * 0.5 * (diff + root)

        # Sensitivity of the whole objective to each node's moments.
        d_bound_d_mean = pair_weights * 0.5 * pi * (1.0 + np.where(root > 0.0, diff / safe_root, 1.0))
        d_bound_d_var = np.where(root > 0.0, pair_weights * 0.25 * pi / safe_root, 0.0)
        sensitivity_mean = np.bincount(
            self.pair_node, weights=d_bound_d_mean, minlength=self.num_nodes
        )
        sensitivity_var = np.bincount(
            self.pair_node, weights=d_bound_d_var, minlength=self.num_nodes
        )

        coupling = self.arrival_rates[self.pair_file] * (
            sensitivity_mean[self.pair_node] * d_mean[self.pair_node]
            + sensitivity_var[self.pair_node] * d_var[self.pair_node]
        )
        gradient = direct + coupling
        return objective, gradient

    # ------------------------------------------------------------------
    # Auxiliary variables z
    # ------------------------------------------------------------------

    def optimal_z(self, pi: np.ndarray, iterations: int = 80) -> np.ndarray:
        """Vectorised per-file bisection for the optimal ``z_i >= 0``.

        The per-file objective is convex in ``z_i`` with derivative
        ``1 - sum_j (pi_{i,j}/2) (1 + diff / root)``; the root of the
        derivative is bracketed in ``[0, max_j(E[Q_j] + sqrt(Var[Q_j]))]``
        and found by simultaneous bisection over all files.
        """
        mean, variance = self.queue_moments(self.node_rates(pi))
        pair_mean = mean[self.pair_node]
        pair_var = variance[self.pair_node]

        upper_candidate = pair_mean + np.sqrt(np.maximum(pair_var, 0.0))
        active = pi > 0.0
        upper = np.zeros(self.num_files)
        np.maximum.at(upper, self.pair_file[active], upper_candidate[active])
        upper = np.maximum(upper, 1e-12)

        lower = np.zeros(self.num_files)

        def derivative(z: np.ndarray) -> np.ndarray:
            diff = pair_mean - z[self.pair_file]
            root = np.sqrt(diff * diff + pair_var)
            safe_root = np.where(root > 0.0, root, 1.0)
            terms = 0.5 * pi * (1.0 + np.where(root > 0.0, diff / safe_root, 0.0))
            return 1.0 - np.bincount(
                self.pair_file, weights=terms, minlength=self.num_files
            )

        # Files whose derivative at z=0 is already non-negative sit at z=0.
        at_zero = derivative(np.zeros(self.num_files)) >= 0.0
        # Expand the bracket for files whose derivative is still negative at
        # the initial upper bound (possible with pi summing to > 2).
        for _ in range(60):
            negative_at_upper = derivative(upper) < 0.0
            negative_at_upper &= ~at_zero
            if not np.any(negative_at_upper):
                break
            upper[negative_at_upper] *= 2.0

        for _ in range(iterations):
            midpoint = 0.5 * (lower + upper)
            negative = derivative(midpoint) < 0.0
            lower = np.where(negative, midpoint, lower)
            upper = np.where(negative, upper, midpoint)
        z = 0.5 * (lower + upper)
        z[at_zero] = 0.0
        return np.maximum(z, 0.0)

    # ------------------------------------------------------------------
    # Cache allocation helpers
    # ------------------------------------------------------------------

    def file_sums(self, pi: np.ndarray) -> np.ndarray:
        """Per-file totals ``s_i = sum_j pi_{i,j}``."""
        return np.bincount(self.pair_file, weights=pi, minlength=self.num_files)

    def cache_allocation(self, pi: np.ndarray) -> np.ndarray:
        """Per-file cache allocations ``d_i = k_i - s_i`` (possibly fractional)."""
        return self.k_values - self.file_sums(pi)

    def cache_usage(self, pi: np.ndarray) -> float:
        """Total cache usage ``sum_i d_i``."""
        return float(np.sum(self.cache_allocation(pi)))

    def required_total(self) -> float:
        """Lower bound ``T = sum_i k_i - C`` on the total of all ``pi``."""
        return float(self.k_values.sum() - self.cache_capacity)

    # ------------------------------------------------------------------
    # Projection onto the Prob-Pi feasible polytope
    # ------------------------------------------------------------------

    def project(
        self,
        pi: np.ndarray,
        lower_sums: np.ndarray,
        upper_sums: np.ndarray,
        fixed_mask: Optional[np.ndarray] = None,
        fixed_values: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Euclidean projection onto the feasible set of Prob Pi.

        Parameters
        ----------
        pi:
            The point to project (pair vector).
        lower_sums, upper_sums:
            Per-file bounds ``K_L,i`` and ``K_U,i`` on ``sum_j pi_{i,j}``.
        fixed_mask, fixed_values:
            Optional per-pair mask of coordinates that are frozen at
            ``fixed_values`` (used to pin fully-rounded files).

        Notes
        -----
        The single coupling constraint ``sum pi >= T`` is dualised with a
        multiplier ``nu >= 0``: the optimal point is the per-file projection
        of ``pi + nu``, and ``nu`` is found by bisection.  The projected
        total for a trial ``nu`` has the closed form
        ``sum_i clamp(sum_j clip(pi_{i,j} + nu, 0, 1), K_L,i, K_U,i)``, so
        the outer bisection never needs the (more expensive) per-file
        multipliers; those are computed only once, for the final ``nu``.
        """
        lower_sums = np.asarray(lower_sums, dtype=float)
        upper_sums = np.asarray(upper_sums, dtype=float)
        if np.any(lower_sums > upper_sums + 1e-12):
            raise InfeasibleError("per-file lower sum exceeds upper sum")

        if fixed_mask is None:
            fixed_mask = np.zeros(self.num_pairs, dtype=bool)
            any_fixed = False
        else:
            any_fixed = bool(np.any(fixed_mask))
        if fixed_values is None:
            fixed_values = np.zeros(self.num_pairs, dtype=float)

        target_total = self.required_total()

        def clipped(values: np.ndarray) -> np.ndarray:
            result = np.clip(values, 0.0, 1.0)
            if any_fixed:
                result[fixed_mask] = fixed_values[fixed_mask]
            return result

        def projected_total(nu: float) -> float:
            sums = self.file_sums(clipped(pi + nu))
            return float(np.clip(sums, lower_sums, upper_sums).sum())

        def per_file_projection(values: np.ndarray) -> np.ndarray:
            projected = clipped(values)
            sums = self.file_sums(projected)
            below = sums < lower_sums - 1e-12
            above = sums > upper_sums + 1e-12
            if not np.any(below) and not np.any(above):
                return projected
            # Per-file shift theta_i with x = clip(v + theta_i); the sum is
            # monotone in theta_i so a vectorised bisection over the
            # violating files recovers the exact per-file projection.
            needs_shift = below | above
            theta_low = np.where(above, -2.0, 0.0)
            theta_high = np.where(below, 2.0, 0.0)
            targets = np.where(below, lower_sums, upper_sums)
            for _ in range(30):
                shifted = clipped(values + theta_high[self.pair_file])
                still_below = below & (self.file_sums(shifted) < targets - 1e-12)
                if not np.any(still_below):
                    break
                theta_high[still_below] *= 2.0
            for _ in range(30):
                shifted = clipped(values + theta_low[self.pair_file])
                still_above = above & (self.file_sums(shifted) > targets + 1e-12)
                if not np.any(still_above):
                    break
                theta_low[still_above] *= 2.0
            for _ in range(40):
                theta_mid = 0.5 * (theta_low + theta_high)
                sums_mid = self.file_sums(clipped(values + theta_mid[self.pair_file]))
                go_up = sums_mid < targets
                theta_low = np.where(needs_shift & go_up, theta_mid, theta_low)
                theta_high = np.where(needs_shift & ~go_up, theta_mid, theta_high)
            theta = np.where(needs_shift, 0.5 * (theta_low + theta_high), 0.0)
            return clipped(values + theta[self.pair_file])

        if target_total <= projected_total(0.0) + 1e-9:
            return per_file_projection(pi)

        # The cache-capacity constraint is violated: raise all coordinates by
        # a common multiplier nu until the projected total reaches T.
        max_total = float(np.minimum(upper_sums, self.n_values).sum())
        if target_total > max_total + 1e-9:
            raise InfeasibleError(
                "cache capacity constraint cannot be met: requires total "
                f"{target_total:.3f} but the per-file bounds only allow "
                f"{max_total:.3f}"
            )
        nu_low, nu_high = 0.0, 2.0
        for _ in range(40):
            if projected_total(nu_high) >= target_total - 1e-9:
                break
            nu_high *= 2.0
        for _ in range(50):
            nu_mid = 0.5 * (nu_low + nu_high)
            if projected_total(nu_mid) < target_total:
                nu_low = nu_mid
            else:
                nu_high = nu_mid
        return per_file_projection(pi + nu_high)
