"""Vectorised evaluation of the Eq. (6) objective and its gradient.

The reference implementation in :mod:`repro.core.bound` works with per-file
dictionaries, which is convenient for small examples and unit tests but too
slow for the paper-scale instances (1000 files x 7 chunk placements).  This
module compiles a :class:`~repro.core.model.StorageSystemModel` into flat
numpy arrays indexed by (file, node) *pairs* -- one entry for every
``pi_{i,j}`` with ``j in S_i`` -- and provides:

* node arrival rates, M/G/1 moments and their derivatives,
* the weighted latency objective and its gradient with respect to ``pi``,
* vectorised per-file optimisation of the auxiliary variables ``z_i``,
* Euclidean projection onto the Prob-Pi feasible polytope
  ``{0 <= pi <= 1, K_L,i <= sum_j pi_{i,j} <= K_U,i, sum_i,j pi_{i,j} >= T}``
  where ``T = sum_i k_i - C`` encodes the cache-capacity constraint.

The tests in ``tests/core/test_vectorized.py`` verify that the vectorised
objective agrees with the dictionary-based reference implementation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.bound import SolutionState
from repro.core.model import StorageSystemModel
from repro.exceptions import InfeasibleError, OptimizationError
from repro.kernels import segment_max, segment_sum

#: Utilisation clamp used to keep the objective finite (and extremely large)
#: when a candidate point drives a node beyond its stability region.
_RHO_CLAMP = 1.0 - 1e-7


def _piecewise_clip_sum_inverse(
    values: np.ndarray,
    segment_counts: np.ndarray,
    targets: np.ndarray,
) -> np.ndarray:
    """Solve ``sum_j clip(v_j + theta_s, 0, 1) = t_s`` for every segment.

    ``values`` holds the concatenated per-segment coordinates (segments are
    contiguous, with ``segment_counts[s]`` entries each) and ``targets`` the
    per-segment right-hand sides, pre-clamped to ``[0, n_s]``.  The map
    ``theta -> sum_j clip(v_j + theta)`` is piecewise linear and
    non-decreasing with breakpoints at ``-v_j`` (coordinate leaves the lower
    clip) and ``1 - v_j`` (coordinate saturates), so the exact root is found
    by sorting the ``2 n_s`` breakpoints, accumulating the function value at
    each one, and interpolating inside the bracketing linear piece -- no
    iterative bisection.  Everything is segmented: one ``lexsort`` and a few
    cumulative sums solve all segments at once.
    """
    num_segments = segment_counts.size
    total = values.size
    width = int(segment_counts[0]) if num_segments else 0
    if num_segments and np.all(segment_counts == width):
        # Uniform-width fast path (the common case: every file is stored on
        # the same number of nodes): one per-row argsort over a
        # (segments, 2*width) matrix instead of a global lexsort.
        value_rows = values.reshape(num_segments, width)
        row_breaks = np.concatenate([-value_rows, 1.0 - value_rows], axis=1)
        row_slopes = np.concatenate(
            [np.ones((num_segments, width)), -np.ones((num_segments, width))], axis=1
        )
        order = np.argsort(row_breaks, axis=1)
        row_breaks = np.take_along_axis(row_breaks, order, axis=1)
        row_slopes = np.take_along_axis(row_slopes, order, axis=1)
        active = np.cumsum(row_slopes, axis=1)
        f = np.zeros_like(row_breaks)
        f[:, 1:] = np.cumsum(
            active[:, :-1] * (row_breaks[:, 1:] - row_breaks[:, :-1]), axis=1
        )
        position = np.sum(f < targets[:, None], axis=1)
        rows = np.arange(num_segments)
        high = np.clip(position, 0, 2 * width - 1)
        low = np.clip(position - 1, 0, 2 * width - 1)
        f_high = f[rows, high]
        f_low = f[rows, low]
        e_high = row_breaks[rows, high]
        e_low = row_breaks[rows, low]
        denominator = f_high - f_low
        safe = denominator > 0.0
        theta = np.where(
            safe,
            e_high
            - (f_high - targets) * (e_high - e_low) / np.where(safe, denominator, 1.0),
            e_high,
        )
        at_start = position <= 0
        past_end = position >= 2 * width
        theta[at_start] = row_breaks[at_start, 0]
        theta[past_end] = row_breaks[past_end, -1]
        return theta

    segments = np.repeat(np.arange(num_segments), segment_counts)

    breakpoints = np.concatenate([-values, 1.0 - values])
    slopes = np.concatenate([np.ones(total), -np.ones(total)])
    break_segments = np.concatenate([segments, segments])
    order = np.lexsort((breakpoints, break_segments))
    breakpoints = breakpoints[order]
    slopes = slopes[order]

    counts = segment_counts * 2
    ends = np.cumsum(counts)
    offsets = ends - counts

    # Active-coordinate count after each breakpoint (segmented cumsum).
    cumulative_slope = np.cumsum(slopes)
    slope_base = np.concatenate([[0.0], cumulative_slope[ends[:-1] - 1]])
    active = cumulative_slope - np.repeat(slope_base, counts)

    # Function value at each breakpoint: f[m] = f[m-1] + active[m-1] * gap.
    increments = np.zeros_like(breakpoints)
    increments[1:] = active[:-1] * (breakpoints[1:] - breakpoints[:-1])
    increments[offsets] = 0.0
    cumulative_f = np.cumsum(increments)
    f_base = np.concatenate([[0.0], cumulative_f[ends[:-1] - 1]])
    f = cumulative_f - np.repeat(f_base, counts)

    # Segmented searchsorted: shift every segment's (non-decreasing) f range
    # into its own disjoint band so one flat searchsorted finds, for every
    # segment, the first breakpoint with f >= t.
    band = float(segment_counts.max()) + 2.0
    bands = np.arange(num_segments) * band
    flat_f = f + np.repeat(bands, counts)
    insert = np.searchsorted(flat_f, targets + bands, side="left")
    position = insert - offsets

    high = np.clip(insert, 0, breakpoints.size - 1)
    low = np.clip(insert - 1, 0, breakpoints.size - 1)
    denominator = f[high] - f[low]
    safe = denominator > 0.0
    theta = np.where(
        safe,
        breakpoints[high]
        - (f[high] - targets)
        * (breakpoints[high] - breakpoints[low])
        / np.where(safe, denominator, 1.0),
        breakpoints[high],
    )
    at_start = position <= 0
    past_end = position >= counts
    theta[at_start] = breakpoints[offsets[at_start]]
    theta[past_end] = breakpoints[ends[past_end] - 1]
    return theta


class VectorizedSystem:
    """Array-based view of a storage-system model for fast optimization.

    Parameters
    ----------
    model:
        The storage-system model to compile.
    """

    def __init__(self, model: StorageSystemModel):
        self._model = model
        self._node_ids: List[int] = model.node_ids
        self._node_index: Dict[int, int] = {
            node_id: position for position, node_id in enumerate(self._node_ids)
        }
        files = model.files
        self.num_files = len(files)
        self.num_nodes = len(self._node_ids)

        pair_file: List[int] = []
        pair_node: List[int] = []
        for file_position, spec in enumerate(files):
            for node_id in spec.placement:
                pair_file.append(file_position)
                pair_node.append(self._node_index[node_id])
        self.pair_file = np.asarray(pair_file, dtype=np.int64)
        self.pair_node = np.asarray(pair_node, dtype=np.int64)
        self.num_pairs = self.pair_file.size

        self.arrival_rates = np.asarray(
            [spec.arrival_rate for spec in files], dtype=float
        )
        total_rate = float(self.arrival_rates.sum())
        if total_rate <= 0:
            raise OptimizationError("total arrival rate must be positive")
        self.weights = self.arrival_rates / total_rate
        self.k_values = np.asarray([spec.k for spec in files], dtype=float)
        self.n_values = np.asarray([spec.n for spec in files], dtype=float)
        self.cache_capacity = float(model.cache_capacity)

        self.mu = np.asarray(
            [model.service(node_id).rate for node_id in self._node_ids], dtype=float
        )
        self.gamma2 = np.asarray(
            [model.service(node_id).second_moment for node_id in self._node_ids],
            dtype=float,
        )
        self.gamma3 = np.asarray(
            [model.service(node_id).third_moment for node_id in self._node_ids],
            dtype=float,
        )
        self.sigma2 = np.asarray(
            [model.service(node_id).variance for node_id in self._node_ids],
            dtype=float,
        )

        # The pair arrays are built file by file, so ``pair_file`` is sorted
        # and every file owns one contiguous segment: per-file reductions run
        # as ``np.add.reduceat`` over these offsets, which is considerably
        # faster than ``np.bincount`` with weights in the solver's inner
        # loop (projection bisections call ``file_sums`` hundreds of times
        # per solve).  Per-pair gathers of static file quantities are cached
        # here once instead of being re-gathered on every objective call.
        pair_counts = np.bincount(self.pair_file, minlength=self.num_files)
        self._file_segments_contiguous = bool(pair_counts.min() > 0)
        self._file_offsets = np.concatenate(
            [[0], np.cumsum(pair_counts)[:-1]]
        ).astype(np.int64)
        self.pair_weights = self.weights[self.pair_file]
        self.pair_rates = self.arrival_rates[self.pair_file]
        # Fingerprint of the placement structure, used by rebind() to refuse
        # models whose (file, node) pairs differ from the compiled arrays.
        self._placement_signature = tuple(spec.placement for spec in files)

    # ------------------------------------------------------------------
    # Per-file segmented reductions
    # ------------------------------------------------------------------

    def _file_sum(self, values: np.ndarray) -> np.ndarray:
        """Per-file sums of a pair vector (segmented kernel fast path)."""
        if self._file_segments_contiguous:
            return segment_sum(values, self._file_offsets)
        return np.bincount(self.pair_file, weights=values, minlength=self.num_files)

    def _file_max(self, values: np.ndarray) -> np.ndarray:
        """Per-file maxima of a pair vector."""
        if self._file_segments_contiguous:
            return segment_max(values, self._file_offsets)
        result = np.full(self.num_files, -np.inf)
        np.maximum.at(result, self.pair_file, values)
        return result

    # ------------------------------------------------------------------
    # Conversions between flat vectors and SolutionState
    # ------------------------------------------------------------------

    @property
    def model(self) -> StorageSystemModel:
        """The underlying model."""
        return self._model

    def set_cache_capacity(self, cache_capacity: float) -> None:
        """Update the cache capacity without recompiling the pair arrays."""
        self.cache_capacity = float(cache_capacity)

    def set_arrival_rates(self, arrival_rates: Sequence[float]) -> None:
        """Re-point the compiled system at new per-file arrival rates.

        This is the hot path of the online controller: when the streaming
        estimator opens a new time bin, only the rates (and the weights /
        per-pair gathers derived from them) change -- the pair structure,
        service moments and cache capacity stay untouched, so no model
        rebuild or :meth:`rebind` is needed.  Note the underlying
        ``StorageSystemModel`` is *not* updated; callers that need a
        consistent model (e.g. for simulation) should build one with
        ``model.copy_with_arrival_rates``.
        """
        rates = np.asarray(arrival_rates, dtype=float)
        if rates.shape != (self.num_files,):
            raise OptimizationError(
                f"expected {self.num_files} arrival rates, got {rates.shape}"
            )
        if np.any(rates < 0.0):
            raise OptimizationError("arrival rates must be non-negative")
        total_rate = float(rates.sum())
        if total_rate <= 0:
            raise OptimizationError("total arrival rate must be positive")
        self.arrival_rates = rates
        self.weights = rates / total_rate
        self.pair_weights = self.weights[self.pair_file]
        self.pair_rates = self.arrival_rates[self.pair_file]

    def rebind(self, model: StorageSystemModel) -> "VectorizedSystem":
        """Re-point the compiled system at a structurally identical model.

        Sweeps such as Fig. 3 / Fig. 4 solve the same 1000-file instance for
        many cache sizes (or re-predicted arrival rates); recompiling the
        (file, node) pair arrays each time dominates the solve at paper
        scale.  ``rebind`` refreshes everything that is cheap to recompute
        -- arrival rates, weights, service moments, cache capacity -- and
        keeps the pair structure, which must be unchanged: same files in
        the same order with the same placements on the same node set.
        """
        files = model.files
        if (
            len(files) != self.num_files
            or len(model.node_ids) != self.num_nodes
            or model.node_ids != self._node_ids
        ):
            raise OptimizationError(
                "rebind requires a model with the same files and node set"
            )
        if tuple(spec.placement for spec in files) != self._placement_signature:
            raise OptimizationError("rebind requires identical chunk placements")
        self._model = model
        self.arrival_rates = np.asarray(
            [spec.arrival_rate for spec in files], dtype=float
        )
        total_rate = float(self.arrival_rates.sum())
        if total_rate <= 0:
            raise OptimizationError("total arrival rate must be positive")
        self.weights = self.arrival_rates / total_rate
        self.k_values = np.asarray([spec.k for spec in files], dtype=float)
        self.n_values = np.asarray([spec.n for spec in files], dtype=float)
        self.cache_capacity = float(model.cache_capacity)
        self.mu = np.asarray(
            [model.service(node_id).rate for node_id in self._node_ids], dtype=float
        )
        self.gamma2 = np.asarray(
            [model.service(node_id).second_moment for node_id in self._node_ids],
            dtype=float,
        )
        self.gamma3 = np.asarray(
            [model.service(node_id).third_moment for node_id in self._node_ids],
            dtype=float,
        )
        self.sigma2 = np.asarray(
            [model.service(node_id).variance for node_id in self._node_ids],
            dtype=float,
        )
        self.pair_weights = self.weights[self.pair_file]
        self.pair_rates = self.arrival_rates[self.pair_file]
        return self

    def initial_pi(self) -> np.ndarray:
        """Uniform no-cache starting point ``pi_{i,j} = k_i / n_i``."""
        return (self.k_values / self.n_values)[self.pair_file]

    def from_state(self, state: SolutionState) -> np.ndarray:
        """Flatten a :class:`SolutionState` into a pair vector."""
        pi = np.zeros(self.num_pairs, dtype=float)
        for pair_index in range(self.num_pairs):
            file_position = int(self.pair_file[pair_index])
            node_id = self._node_ids[int(self.pair_node[pair_index])]
            pi[pair_index] = state.probabilities[file_position].get(node_id, 0.0)
        return pi

    def to_state(self, pi: np.ndarray, z: Optional[np.ndarray] = None) -> SolutionState:
        """Expand a pair vector (and optional z vector) into a SolutionState."""
        probabilities: List[Dict[int, float]] = [dict() for _ in range(self.num_files)]
        for pair_index in range(self.num_pairs):
            file_position = int(self.pair_file[pair_index])
            node_id = self._node_ids[int(self.pair_node[pair_index])]
            probabilities[file_position][node_id] = float(pi[pair_index])
        if z is None:
            z = self.optimal_z(pi)
        return SolutionState(probabilities=probabilities, z_values=[float(v) for v in z])

    # ------------------------------------------------------------------
    # Queueing quantities
    # ------------------------------------------------------------------

    def node_rates(self, pi: np.ndarray) -> np.ndarray:
        """Aggregate chunk arrival rate ``Lambda_j`` at every node."""
        contributions = self.pair_rates * pi
        return np.bincount(self.pair_node, weights=contributions, minlength=self.num_nodes)

    def queue_moments(self, node_rates: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised Eqs. (3)-(4): mean and variance of node sojourn times."""
        rho = np.minimum(node_rates / self.mu, _RHO_CLAMP)
        effective_rates = rho * self.mu
        one_minus_rho = 1.0 - rho
        mean = 1.0 / self.mu + effective_rates * self.gamma2 / (2.0 * one_minus_rho)
        variance = (
            self.sigma2
            + effective_rates * self.gamma3 / (3.0 * one_minus_rho)
            + effective_rates**2 * self.gamma2**2 / (4.0 * one_minus_rho**2)
        )
        return mean, variance

    def queue_moment_derivatives(self, node_rates: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Derivatives of the node moments with respect to ``Lambda_j``."""
        rho = np.minimum(node_rates / self.mu, _RHO_CLAMP)
        effective_rates = rho * self.mu
        one_minus_rho = 1.0 - rho
        d_mean = self.gamma2 / (2.0 * one_minus_rho**2)
        d_var = (
            self.gamma3 / (3.0 * one_minus_rho**2)
            + effective_rates * self.gamma2**2 / (2.0 * one_minus_rho**2)
            + effective_rates**2 * self.gamma2**2 / (2.0 * self.mu * one_minus_rho**3)
        )
        return d_mean, d_var

    # ------------------------------------------------------------------
    # Objective, bounds and gradients
    # ------------------------------------------------------------------

    def per_file_bounds(self, pi: np.ndarray, z: np.ndarray) -> np.ndarray:
        """Per-file Lemma-1 bounds evaluated at the given ``z``."""
        mean, variance = self.queue_moments(self.node_rates(pi))
        diff = mean[self.pair_node] - z[self.pair_file]
        root = np.sqrt(diff * diff + variance[self.pair_node])
        pair_terms = 0.5 * pi * (diff + root)
        return z + self._file_sum(pair_terms)

    def objective(self, pi: np.ndarray, z: np.ndarray) -> float:
        """The weighted latency objective of Eq. (6)."""
        return float(np.dot(self.weights, self.per_file_bounds(pi, z)))

    def objective_and_gradient(
        self, pi: np.ndarray, z: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """Objective value and its gradient with respect to ``pi``.

        Each ``pi_{i,j}`` has a direct effect on the file-``i`` bound and an
        indirect effect through the node load ``Lambda_j`` which every file
        scheduling that node experiences; both are included.
        """
        node_rates = self.node_rates(pi)
        mean, variance = self.queue_moments(node_rates)
        d_mean, d_var = self.queue_moment_derivatives(node_rates)

        diff = mean[self.pair_node] - z[self.pair_file]
        root = np.sqrt(diff * diff + variance[self.pair_node])
        safe_root = np.where(root > 0.0, root, 1.0)

        pair_weights = self.pair_weights
        pair_terms = 0.5 * pi * (diff + root)
        bounds = z + self._file_sum(pair_terms)
        objective = float(np.dot(self.weights, bounds))

        direct = pair_weights * 0.5 * (diff + root)

        # Sensitivity of the whole objective to each node's moments.
        d_bound_d_mean = pair_weights * 0.5 * pi * (1.0 + np.where(root > 0.0, diff / safe_root, 1.0))
        d_bound_d_var = np.where(root > 0.0, pair_weights * 0.25 * pi / safe_root, 0.0)
        sensitivity_mean = np.bincount(
            self.pair_node, weights=d_bound_d_mean, minlength=self.num_nodes
        )
        sensitivity_var = np.bincount(
            self.pair_node, weights=d_bound_d_var, minlength=self.num_nodes
        )

        coupling = self.pair_rates * (
            sensitivity_mean[self.pair_node] * d_mean[self.pair_node]
            + sensitivity_var[self.pair_node] * d_var[self.pair_node]
        )
        gradient = direct + coupling
        return objective, gradient

    # ------------------------------------------------------------------
    # Auxiliary variables z
    # ------------------------------------------------------------------

    def optimal_z(self, pi: np.ndarray, iterations: int = 80) -> np.ndarray:
        """Vectorised per-file bisection for the optimal ``z_i >= 0``.

        The per-file objective is convex in ``z_i`` with derivative
        ``1 - sum_j (pi_{i,j}/2) (1 + diff / root)``; the root of the
        derivative is bracketed in ``[0, max_j(E[Q_j] + sqrt(Var[Q_j]))]``
        and found by simultaneous bisection over all files.
        """
        mean, variance = self.queue_moments(self.node_rates(pi))
        pair_mean = mean[self.pair_node]
        pair_var = variance[self.pair_node]

        upper_candidate = pair_mean + np.sqrt(np.maximum(pair_var, 0.0))
        active = pi > 0.0
        upper = np.maximum(
            self._file_max(np.where(active, upper_candidate, 0.0)), 1e-12
        )

        lower = np.zeros(self.num_files)

        def derivative(z: np.ndarray) -> np.ndarray:
            diff = pair_mean - z[self.pair_file]
            root = np.sqrt(diff * diff + pair_var)
            safe_root = np.where(root > 0.0, root, 1.0)
            terms = 0.5 * pi * (1.0 + np.where(root > 0.0, diff / safe_root, 0.0))
            return 1.0 - self._file_sum(terms)

        # Files whose derivative at z=0 is already non-negative sit at z=0.
        at_zero = derivative(np.zeros(self.num_files)) >= 0.0
        # Expand the bracket for files whose derivative is still negative at
        # the initial upper bound (possible with pi summing to > 2).
        for _ in range(60):
            negative_at_upper = derivative(upper) < 0.0
            negative_at_upper &= ~at_zero
            if not np.any(negative_at_upper):
                break
            upper[negative_at_upper] *= 2.0

        for _ in range(iterations):
            midpoint = 0.5 * (lower + upper)
            negative = derivative(midpoint) < 0.0
            lower = np.where(negative, midpoint, lower)
            upper = np.where(negative, upper, midpoint)
        z = 0.5 * (lower + upper)
        z[at_zero] = 0.0
        return np.maximum(z, 0.0)

    # ------------------------------------------------------------------
    # Cache allocation helpers
    # ------------------------------------------------------------------

    def file_sums(self, pi: np.ndarray) -> np.ndarray:
        """Per-file totals ``s_i = sum_j pi_{i,j}``."""
        return self._file_sum(pi)

    def cache_allocation(self, pi: np.ndarray) -> np.ndarray:
        """Per-file cache allocations ``d_i = k_i - s_i`` (possibly fractional)."""
        return self.k_values - self.file_sums(pi)

    def cache_usage(self, pi: np.ndarray) -> float:
        """Total cache usage ``sum_i d_i``."""
        return float(np.sum(self.cache_allocation(pi)))

    def required_total(self) -> float:
        """Lower bound ``T = sum_i k_i - C`` on the total of all ``pi``."""
        return float(self.k_values.sum() - self.cache_capacity)

    # ------------------------------------------------------------------
    # Projection onto the Prob-Pi feasible polytope
    # ------------------------------------------------------------------

    def project(
        self,
        pi: np.ndarray,
        lower_sums: np.ndarray,
        upper_sums: np.ndarray,
        fixed_mask: Optional[np.ndarray] = None,
        fixed_values: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Euclidean projection onto the feasible set of Prob Pi.

        Parameters
        ----------
        pi:
            The point to project (pair vector).
        lower_sums, upper_sums:
            Per-file bounds ``K_L,i`` and ``K_U,i`` on ``sum_j pi_{i,j}``.
        fixed_mask, fixed_values:
            Optional per-pair mask of coordinates that are frozen at
            ``fixed_values`` (used to pin fully-rounded files).

        Notes
        -----
        The single coupling constraint ``sum pi >= T`` is dualised with a
        multiplier ``nu >= 0``: the optimal point is the per-file projection
        of ``pi + nu``, and ``nu`` is found by bisection.  The projected
        total for a trial ``nu`` has the closed form
        ``sum_i clamp(sum_j clip(pi_{i,j} + nu, 0, 1), K_L,i, K_U,i)``, so
        the outer bisection never needs the (more expensive) per-file
        multipliers; those are solved only once, for the final ``nu``, by
        the exact segmented breakpoint solver
        :func:`_piecewise_clip_sum_inverse` (no inner bisection loops).
        """
        lower_sums = np.asarray(lower_sums, dtype=float)
        upper_sums = np.asarray(upper_sums, dtype=float)
        if np.any(lower_sums > upper_sums + 1e-12):
            raise InfeasibleError("per-file lower sum exceeds upper sum")

        if fixed_mask is None:
            fixed_mask = np.zeros(self.num_pairs, dtype=bool)
            any_fixed = False
        else:
            any_fixed = bool(np.any(fixed_mask))
        if fixed_values is None:
            fixed_values = np.zeros(self.num_pairs, dtype=float)

        target_total = self.required_total()
        work = np.empty_like(pi)

        def clipped(values: np.ndarray) -> np.ndarray:
            result = np.clip(values, 0.0, 1.0)
            if any_fixed:
                result[fixed_mask] = fixed_values[fixed_mask]
            return result

        def projected_total(nu: float) -> float:
            # Buffer-reusing fast path: this runs ~40 times per projection
            # inside the bisection, so it avoids fresh allocations.
            np.add(pi, nu, out=work)
            np.clip(work, 0.0, 1.0, out=work)
            if any_fixed:
                work[fixed_mask] = fixed_values[fixed_mask]
            sums = self._file_sum(work)
            np.clip(sums, lower_sums, upper_sums, out=sums)
            return float(sums.sum())

        def per_file_projection(values: np.ndarray) -> np.ndarray:
            projected = clipped(values)
            sums = self.file_sums(projected)
            below = sums < lower_sums - 1e-12
            above = sums > upper_sums + 1e-12
            needs_shift = below | above
            if not np.any(needs_shift):
                return projected
            # Per-file shift theta_i with x = clip(v + theta_i); the shift
            # only moves the non-fixed coordinates, so fixed contributions
            # are subtracted from the targets and excluded from the solve.
            free_mask = needs_shift[self.pair_file]
            targets = np.where(below, lower_sums, upper_sums)
            if any_fixed:
                free_mask &= ~fixed_mask
                fixed_contribution = self._file_sum(
                    np.where(fixed_mask, fixed_values, 0.0)
                )
                targets = targets - fixed_contribution
            free_counts = np.bincount(
                self.pair_file[free_mask], minlength=self.num_files
            )
            needs_shift &= free_counts > 0
            free_mask &= needs_shift[self.pair_file]
            violating = np.flatnonzero(needs_shift)
            if violating.size == 0:
                return projected
            segment_counts = free_counts[violating]
            segment_targets = np.clip(
                targets[violating], 0.0, segment_counts.astype(float)
            )
            theta = _piecewise_clip_sum_inverse(
                values[free_mask], segment_counts, segment_targets
            )
            shift = np.zeros(self.num_files)
            shift[violating] = theta
            return clipped(values + shift[self.pair_file])

        if target_total <= projected_total(0.0) + 1e-9:
            return per_file_projection(pi)

        # The cache-capacity constraint is violated: raise all coordinates by
        # a common multiplier nu until the projected total reaches T.
        max_total = float(np.minimum(upper_sums, self.n_values).sum())
        if target_total > max_total + 1e-9:
            raise InfeasibleError(
                "cache capacity constraint cannot be met: requires total "
                f"{target_total:.3f} but the per-file bounds only allow "
                f"{max_total:.3f}"
            )
        nu_low, nu_high = 0.0, 2.0
        for _ in range(40):
            if projected_total(nu_high) >= target_total - 1e-9:
                break
            nu_high *= 2.0
        while nu_high - nu_low > 1e-11 * max(1.0, nu_high):
            nu_mid = 0.5 * (nu_low + nu_high)
            if projected_total(nu_mid) < target_total:
                nu_low = nu_mid
            else:
                nu_high = nu_mid
        return per_file_projection(pi + nu_high)
