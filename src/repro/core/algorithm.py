"""Algorithm 1: alternating minimization with iterative integer rounding.

The cache-content optimization (Eqs. 6-11) is an integer program because
``d_{i}``, the number of functional chunks of file ``i`` kept in the cache,
must be an integer.  Algorithm 1 of the paper tackles it heuristically:

1. **Outer loop** -- alternate between solving ``Prob Z`` (the per-file
   auxiliary variables ``z_i``, convex) and ``Prob Pi`` (the scheduling
   probabilities ``pi_{i,j}``, convex after relaxing integrality), until the
   objective improvement drops below a tolerance ``epsilon``.
2. **Inner rounding loop** -- after each relaxed ``Prob Pi`` solve, pick the
   file (or, for speed, a fixed fraction of the files) with the largest
   fractional part of ``sum_j pi_{i,j}`` and pin its total to the ceiling,
   i.e. round its cache allocation *down*; re-solve and repeat until every
   file's allocation is integral.

The implementation operates on the vectorised system for speed and returns a
:class:`~repro.core.placement.CachePlacement` plus a full convergence trace
(used to regenerate Fig. 3).
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.bound import SolutionState
from repro.core.model import StorageSystemModel
from repro.core.placement import CachePlacement, FilePlacement
from repro.core.prob_pi import (
    ProbPiResult,
    solve_fista,
    solve_frank_wolfe,
    solve_projected_gradient,
    solve_slsqp,
)
from repro.core.vectorized import VectorizedSystem
from repro.exceptions import OptimizationError


@dataclass
class OptimizationResult:
    """Outcome of a full Algorithm-1 run."""

    placement: CachePlacement
    objective_trace: List[float] = field(default_factory=list)
    outer_iterations: int = 0
    inner_solves: int = 0
    converged: bool = False

    @property
    def final_objective(self) -> float:
        """The last objective value reached."""
        return self.placement.objective


class CacheOptimizer:
    """Algorithm 1 of the Sprout paper.

    Parameters
    ----------
    model:
        The storage-system model for the current time bin.
    tolerance:
        Outer-loop convergence threshold ``epsilon`` on the objective
        (the paper uses 0.01 seconds).
    max_outer_iterations:
        Safety cap on outer alternating-minimization iterations.
    rounding_fraction:
        Fraction of still-fractional files rounded per inner iteration.  The
        paper rounds one file at a time but notes that rounding a ``ceil``
        of a fixed fraction gives an ``O(log r)`` inner loop; 0 selects the
        single-file variant.
    pi_solver:
        ``"projected_gradient"`` (default), ``"frank_wolfe"`` or ``"slsqp"``.
    pi_max_iterations:
        Iteration cap handed to the Prob-Pi solver.
    system:
        Optional precompiled :class:`VectorizedSystem` to reuse.  Sweeps
        that solve the same instance for many cache sizes or arrival-rate
        predictions (Figs. 3 and 4) pass the previous optimizer's system
        here; it is rebound to ``model`` instead of being recompiled, which
        skips the pair-array construction at every sweep point.
    """

    def __init__(
        self,
        model: StorageSystemModel,
        tolerance: float = 0.01,
        max_outer_iterations: int = 50,
        rounding_fraction: float = 0.3,
        pi_solver: str = "projected_gradient",
        pi_max_iterations: int = 120,
        system: Optional[VectorizedSystem] = None,
    ):
        if tolerance <= 0:
            raise OptimizationError("tolerance must be positive")
        if not 0.0 <= rounding_fraction < 1.0:
            raise OptimizationError("rounding_fraction must lie in [0, 1)")
        if pi_solver not in {"projected_gradient", "fista", "frank_wolfe", "slsqp"}:
            raise OptimizationError(f"unknown Prob-Pi solver {pi_solver!r}")
        self._model = model
        self._system = system.rebind(model) if system is not None else VectorizedSystem(model)
        self._tolerance = float(tolerance)
        self._max_outer_iterations = int(max_outer_iterations)
        self._rounding_fraction = float(rounding_fraction)
        self._pi_solver = pi_solver
        self._pi_max_iterations = int(pi_max_iterations)

    @property
    def model(self) -> StorageSystemModel:
        """The model being optimized."""
        return self._model

    @property
    def system(self) -> VectorizedSystem:
        """The compiled vectorised system."""
        return self._system

    # ------------------------------------------------------------------
    # Sub-problem dispatch
    # ------------------------------------------------------------------

    def _solve_pi(
        self,
        z: np.ndarray,
        lower_sums: np.ndarray,
        upper_sums: np.ndarray,
        initial_pi: np.ndarray,
    ) -> ProbPiResult:
        if self._pi_solver == "projected_gradient":
            return solve_projected_gradient(
                self._system,
                z,
                lower_sums,
                upper_sums,
                initial_pi=initial_pi,
                max_iterations=self._pi_max_iterations,
            )
        if self._pi_solver == "fista":
            return solve_fista(
                self._system,
                z,
                lower_sums,
                upper_sums,
                initial_pi=initial_pi,
                max_iterations=self._pi_max_iterations,
            )
        if self._pi_solver == "frank_wolfe":
            return solve_frank_wolfe(
                self._system,
                z,
                lower_sums,
                upper_sums,
                initial_pi=initial_pi,
                max_iterations=self._pi_max_iterations,
            )
        return solve_slsqp(
            self._system,
            z,
            lower_sums,
            upper_sums,
            initial_pi=initial_pi,
            max_iterations=self._pi_max_iterations,
        )

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------

    def optimize(
        self,
        initial_state: Optional[SolutionState] = None,
        time_bin: Optional[int] = None,
        warm_start: Optional[np.ndarray] = None,
    ) -> OptimizationResult:
        """Run Algorithm 1 and return the optimized cache placement.

        Parameters
        ----------
        initial_state:
            Optional warm start (e.g. the converged solution of the previous
            cache size or the previous time bin, as done for Fig. 3).
        time_bin:
            Identifier recorded in the resulting placement.
        warm_start:
            Optional warm start as a flat pair vector (the representation
            the solvers and :class:`VectorizedSystem` use natively).  The
            online controller keeps its state in this form to avoid the
            per-pair Python loops of :class:`SolutionState` conversion at
            paper scale; takes precedence over ``initial_state``.
        """
        system = self._system
        if warm_start is not None:
            pi = system.project(
                np.asarray(warm_start, dtype=float),
                np.zeros(system.num_files),
                system.k_values.copy(),
            )
        elif initial_state is not None:
            pi = system.project(
                system.from_state(initial_state),
                np.zeros(system.num_files),
                system.k_values.copy(),
            )
        else:
            pi = system.project(
                system.initial_pi(),
                np.zeros(system.num_files),
                system.k_values.copy(),
            )
        z = system.optimal_z(pi)
        objective = system.objective(pi, z)
        trace: List[float] = [objective]
        inner_solves = 0
        converged = False
        outer_iterations = 0

        for outer in range(self._max_outer_iterations):
            outer_iterations = outer + 1
            # ---- Prob Z: optimal auxiliary variables for the current pi.
            z = system.optimal_z(pi)
            # ---- Prob Pi with iterative integer rounding.
            lower_sums = np.zeros(system.num_files)
            upper_sums = system.k_values.copy()
            fixed_file = np.zeros(system.num_files, dtype=bool)
            current_pi = pi.copy()
            for _ in range(system.num_files + 1):
                result = self._solve_pi(z, lower_sums, upper_sums, current_pi)
                inner_solves += 1
                current_pi = result.pi
                sums = system.file_sums(current_pi)
                fractional = sums - np.floor(sums + 1e-9)
                fractional[fixed_file] = 0.0
                fractional[fractional < 1e-6] = 0.0
                if not np.any(fractional > 0.0):
                    break
                # Select the file(s) with the largest fractional part and pin
                # their totals to the ceiling (cache allocation rounded down).
                candidates = np.where(fractional > 0.0)[0]
                if self._rounding_fraction <= 0.0:
                    count = 1
                else:
                    count = max(
                        1, int(math.ceil(self._rounding_fraction * candidates.size))
                    )
                chosen = candidates[np.argsort(fractional[candidates])[::-1][:count]]
                for file_position in chosen:
                    target = float(np.ceil(sums[file_position] - 1e-9))
                    target = min(target, float(system.k_values[file_position]))
                    lower_sums[file_position] = target
                    upper_sums[file_position] = target
                    fixed_file[file_position] = True
            pi = current_pi
            new_objective = system.objective(pi, z)
            trace.append(new_objective)
            if abs(trace[-2] - new_objective) <= self._tolerance:
                converged = True
                break

        # The ceiling-based rounding can leave cache capacity unused (it
        # always rounds a file's allocation *down*).  A final greedy pass --
        # "identify the files whose latency benefits most from caching and
        # construct chunks until the cache is filled up", as the paper
        # describes the heuristic -- assigns any remaining capacity.
        pi, z = self._greedy_refill(pi, z)
        final_objective = system.objective(pi, z)
        if final_objective < trace[-1] - 1e-12:
            trace.append(final_objective)

        placement = self._build_placement(pi, z, time_bin)
        return OptimizationResult(
            placement=placement,
            objective_trace=trace,
            outer_iterations=outer_iterations,
            inner_solves=inner_solves,
            converged=converged,
        )

    # ------------------------------------------------------------------
    # Greedy refill of unused cache capacity
    # ------------------------------------------------------------------

    def _greedy_refill(
        self, pi: np.ndarray, z: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Assign leftover cache capacity one chunk at a time.

        Each step evaluates, for every file that still fetches at least one
        chunk from storage, the objective decrease obtained by moving one of
        its chunks into the cache (its scheduling probabilities are scaled
        down proportionally, which preserves feasibility), and applies the
        best move.  The loop stops when the cache is full or no move helps.
        """
        system = self._system
        capacity = self._model.cache_capacity
        if capacity <= 0:
            return pi, z
        pi = pi.copy()
        for _ in range(capacity):
            sums = system.file_sums(pi)
            cached = np.rint(system.k_values - sums)
            free_capacity = capacity - float(cached.sum())
            if free_capacity < 1.0 - 1e-6:
                break
            eligible = sums >= 1.0 - 1e-9
            if not np.any(eligible):
                break
            current_bounds = system.per_file_bounds(pi, z)
            # Candidate: scale each eligible file's probabilities by
            # (s_i - 1) / s_i, evaluated with node moments held at the
            # current operating point (a standard greedy approximation).
            scale = np.ones(system.num_files)
            scale[eligible] = (sums[eligible] - 1.0) / np.maximum(sums[eligible], 1e-12)
            candidate_pi = pi * scale[system.pair_file]
            candidate_bounds = system.per_file_bounds(candidate_pi, z)
            gains = np.where(
                eligible, system.weights * (current_bounds - candidate_bounds), -np.inf
            )
            best = int(np.argmax(gains))
            if not np.isfinite(gains[best]) or gains[best] <= 1e-15:
                break
            mask = system.pair_file == best
            pi[mask] *= scale[best]
            z = system.optimal_z(pi)
        return pi, system.optimal_z(pi)

    # ------------------------------------------------------------------
    # Result assembly
    # ------------------------------------------------------------------

    def _build_placement(
        self, pi: np.ndarray, z: np.ndarray, time_bin: Optional[int]
    ) -> CachePlacement:
        return build_placement(self._system, self._model, pi, z, time_bin)


def build_placement(
    system: VectorizedSystem,
    model: StorageSystemModel,
    pi: np.ndarray,
    z: np.ndarray,
    time_bin: Optional[int] = None,
    cached_chunks: Optional[np.ndarray] = None,
) -> CachePlacement:
    """Assemble a validated :class:`CachePlacement` from a solver iterate.

    Shared by :class:`CacheOptimizer` and the online re-solver
    (:mod:`repro.control.resolve`).  The arrival rates recorded per file are
    taken from ``system`` (not ``model``) so placements built after
    :meth:`VectorizedSystem.set_arrival_rates` carry the measured rates.

    Parameters
    ----------
    cached_chunks:
        Optional integer per-file cache allocation to record instead of
        rounding ``k_i - sum_j pi_{i,j}``; the online re-solver passes its
        apportionment-rounded allocation here so the placement matches the
        pinned solve exactly.
    """
    sums = system.file_sums(pi)
    if cached_chunks is None:
        cached = np.rint(system.k_values - sums).astype(int)
        cached = np.clip(cached, 0, system.k_values.astype(int))
    else:
        cached = np.asarray(cached_chunks, dtype=int).copy()
    # Guard the capacity constraint against accumulated rounding noise:
    # greedily trim files with the smallest latency benefit if needed.
    overflow = int(cached.sum()) - model.cache_capacity
    if overflow > 0:
        order = np.argsort(system.weights)  # least-weighted files first
        for file_position in order:
            if overflow <= 0:
                break
            reducible = min(int(cached[file_position]), overflow)
            cached[file_position] -= reducible
            overflow -= reducible
    bounds = system.per_file_bounds(pi, system.optimal_z(pi))
    objective = float(np.dot(system.weights, bounds))

    state = system.to_state(pi, z)
    files: List[FilePlacement] = []
    for file_position, spec in enumerate(model.files):
        files.append(
            FilePlacement(
                file_id=spec.file_id,
                cached_chunks=int(cached[file_position]),
                scheduling_probabilities=dict(state.probabilities[file_position]),
                latency_bound=float(bounds[file_position]),
                arrival_rate=float(system.arrival_rates[file_position]),
                k=spec.k,
                n=spec.n,
            )
        )
    placement = CachePlacement(
        files=files,
        objective=objective,
        cache_capacity=model.cache_capacity,
        time_bin=time_bin,
        metadata={"total_fractional_cache": float((system.k_values - sums).sum())},
    )
    placement.validate_against(model)
    return placement


def optimize_cache_placement(
    model: StorageSystemModel,
    tolerance: float = 0.01,
    warm_start: Optional[SolutionState] = None,
    time_bin: Optional[int] = None,
    **optimizer_kwargs,
) -> OptimizationResult:
    """Deprecated convenience wrapper: build a :class:`CacheOptimizer`, run it.

    .. deprecated:: 1.1.0
        Use ``CacheOptimizer(model, ...).optimize(...)`` directly, or the
        declarative facade ``repro.api.run_scenario(Scenario(...))``.
    """
    warnings.warn(
        "optimize_cache_placement() is deprecated; use "
        "CacheOptimizer(model, ...).optimize(...) or repro.api.run_scenario()",
        DeprecationWarning,
        stacklevel=2,
    )
    optimizer = CacheOptimizer(model, tolerance=tolerance, **optimizer_kwargs)
    return optimizer.optimize(initial_state=warm_start, time_bin=time_bin)
