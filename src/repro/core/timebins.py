"""Time-bin management: re-optimization under time-varying arrival rates.

The paper assumes time-scale separation: the service period is divided into
time bins, within each of which the arrival rates are stationary.  At the
start of every bin the cache placement is re-optimized with the newly
predicted rates, and cache contents are updated lazily:

* files whose allocation shrank have the excess chunks dropped immediately
  (no network cost -- dropping cached data is free),
* files whose allocation grew receive their new functional chunks only when
  the file is next accessed (the chunks are generated from the data fetched
  for that access, again avoiding extra network traffic).

:class:`TimeBinScheduler` used to implement that loop directly; it is now a
thin deprecation shim over :class:`repro.control.OnlineController`, which
adds streaming drift detection, warm-started re-solves and bounded churn.
The dataclasses (:class:`TimeBin`, :class:`CacheContentDelta`,
:class:`TimeBinOutcome`) remain the canonical bin bookkeeping types.

.. deprecated:: 1.4.0
    Use ``repro.control.OnlineController`` (``process_bin`` for explicit
    rate tables, ``run``/``observe`` for streams).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.algorithm import OptimizationResult
from repro.core.model import StorageSystemModel
from repro.core.placement import CachePlacement
from repro.exceptions import ModelError


@dataclass
class TimeBin:
    """One stationary period with its own per-file arrival rates."""

    index: int
    duration: float
    arrival_rates: Dict[str, float]

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ModelError(f"time bin {self.index}: duration must be positive")
        for file_id, rate in self.arrival_rates.items():
            if rate < 0:
                raise ModelError(
                    f"time bin {self.index}: negative arrival rate for {file_id!r}"
                )


@dataclass
class CacheContentDelta:
    """Cache-content changes between two consecutive time bins."""

    time_bin: int
    removed: Dict[str, int] = field(default_factory=dict)
    added_on_access: Dict[str, int] = field(default_factory=dict)

    @property
    def chunks_removed(self) -> int:
        """Total chunks dropped at the bin boundary."""
        return sum(self.removed.values())

    @property
    def chunks_pending(self) -> int:
        """Total chunks to be added lazily on first access."""
        return sum(self.added_on_access.values())


@dataclass
class TimeBinOutcome:
    """Placement plus bookkeeping for one time bin."""

    time_bin: TimeBin
    placement: CachePlacement
    result: OptimizationResult
    delta: CacheContentDelta


class TimeBinScheduler:
    """Deprecated shim: per-bin re-optimization via the online controller.

    .. deprecated:: 1.4.0
        Use :class:`repro.control.OnlineController` directly --
        ``process_bin`` for explicit rate tables (what this shim wraps),
        ``run``/``observe`` for drift-triggered operation on a request
        stream with bounded churn.

    Parameters
    ----------
    base_model:
        Model describing nodes, files and cache capacity; the per-bin
        arrival rates override the model's rates.
    tolerance, optimizer_kwargs:
        Accepted for backward compatibility; ``tolerance`` maps onto the
        controller's alternation tolerance, other optimizer keywords are
        ignored (the controller's FISTA re-solver replaces the per-bin
        :class:`~repro.core.algorithm.CacheOptimizer` run).
    """

    def __init__(
        self,
        base_model: StorageSystemModel,
        tolerance: float = 0.01,
        **optimizer_kwargs,
    ):
        warnings.warn(
            "TimeBinScheduler is deprecated; use repro.control.OnlineController "
            "(process_bin for explicit rate tables, run/observe for streams)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.control import OnlineController

        self._base_model = base_model
        self._controller = OnlineController(
            base_model, alternation_tolerance=tolerance
        )
        self._previous_placement: Optional[CachePlacement] = None
        self._history: List[TimeBinOutcome] = []

    @property
    def history(self) -> List[TimeBinOutcome]:
        """All processed time bins in order."""
        return list(self._history)

    @property
    def current_placement(self) -> Optional[CachePlacement]:
        """The placement of the most recently processed time bin."""
        return self._previous_placement

    # ------------------------------------------------------------------
    # Processing
    # ------------------------------------------------------------------

    def process_bin(self, time_bin: TimeBin) -> TimeBinOutcome:
        """Re-optimize the placement for ``time_bin`` and record the delta."""
        record = self._controller.process_bin(
            dict(time_bin.arrival_rates), index=time_bin.index
        )
        placement = record.placement
        delta = self._compute_delta(time_bin.index, placement)
        self._previous_placement = placement
        result = OptimizationResult(
            placement=placement,
            objective_trace=[
                record.report.relaxed_objective,
                record.report.objective,
            ],
            outer_iterations=record.report.sweeps + 1,
            inner_solves=record.report.iterations,
            converged=not record.report.fallback,
        )
        outcome = TimeBinOutcome(
            time_bin=time_bin, placement=placement, result=result, delta=delta
        )
        self._history.append(outcome)
        return outcome

    def process_bins(self, bins: Sequence[TimeBin]) -> List[TimeBinOutcome]:
        """Process a sequence of time bins in order."""
        return [self.process_bin(time_bin) for time_bin in bins]

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _compute_delta(
        self, bin_index: int, placement: CachePlacement
    ) -> CacheContentDelta:
        delta = CacheContentDelta(time_bin=bin_index)
        previous = (
            self._previous_placement.cached_chunks()
            if self._previous_placement is not None
            else {}
        )
        for entry in placement.files:
            before = previous.get(entry.file_id, 0)
            change = entry.cached_chunks - before
            if change < 0:
                delta.removed[entry.file_id] = -change
            elif change > 0:
                delta.added_on_access[entry.file_id] = change
        return delta


def bins_from_rate_table(
    rate_table: Sequence[Mapping[str, float]],
    duration: float = 100.0,
) -> List[TimeBin]:
    """Build :class:`TimeBin` objects from a list of per-file rate mappings.

    Used to replay Table I of the paper (three bins of rates for ten files).
    """
    bins = []
    for index, rates in enumerate(rate_table):
        bins.append(
            TimeBin(index=index + 1, duration=duration, arrival_rates=dict(rates))
        )
    return bins
