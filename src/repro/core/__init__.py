"""Core contribution of the Sprout paper: the latency bound for functional
caching and the cache-content optimization (Algorithm 1).

Public entry points:

* :class:`repro.core.model.StorageSystemModel` -- files, codes, placement,
  server service distributions and per-file arrival rates.
* :func:`repro.core.bound.system_objective` -- the weighted latency bound of
  Eq. (6) for a candidate solution.
* :class:`repro.core.algorithm.CacheOptimizer` -- Algorithm 1 (alternating
  minimization with iterative integer rounding).
* :class:`repro.core.placement.CachePlacement` -- the optimized placement,
  scheduling probabilities and per-file latency bounds.
* :class:`repro.core.timebins.TimeBinScheduler` -- re-optimization across
  time bins with warm starts and incremental cache-content updates.
"""

from repro.core.model import FileSpec, StorageSystemModel
from repro.core.bound import SolutionState, system_objective, per_file_bounds
from repro.core.algorithm import CacheOptimizer, OptimizationResult
from repro.core.placement import CachePlacement
from repro.core.timebins import TimeBin, TimeBinScheduler, CacheContentDelta

__all__ = [
    "FileSpec",
    "StorageSystemModel",
    "SolutionState",
    "system_objective",
    "per_file_bounds",
    "CacheOptimizer",
    "OptimizationResult",
    "CachePlacement",
    "TimeBin",
    "TimeBinScheduler",
    "CacheContentDelta",
]
