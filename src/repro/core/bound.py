"""Evaluation of the weighted latency bound (Eq. 6) for candidate solutions.

The optimization in :mod:`repro.core.algorithm` iterates over two variable
groups -- the per-file auxiliary scalars ``z_i`` and the scheduling
probabilities ``pi_{i,j}``.  This module packages a candidate point as a
:class:`SolutionState` and evaluates the objective, the per-file bounds, the
node loads and the gradients needed by the solvers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import math

from repro.core.model import StorageSystemModel
from repro.exceptions import OptimizationError
from repro.queueing.mg1 import QueueMoments, queue_moment_derivatives, queue_moments
from repro.queueing.order_stats import latency_bound_at_z, optimal_z


@dataclass
class SolutionState:
    """A candidate solution of the cache optimization.

    Attributes
    ----------
    probabilities:
        One mapping per file (aligned with the model's file order) from node
        id to the scheduling probability ``pi_{i,j}``.
    z_values:
        Per-file auxiliary variables ``z_i``.
    """

    probabilities: List[Dict[int, float]]
    z_values: List[float] = field(default_factory=list)

    def copy(self) -> "SolutionState":
        """Deep copy of the candidate solution."""
        return SolutionState(
            probabilities=[dict(p) for p in self.probabilities],
            z_values=list(self.z_values),
        )

    def cache_allocation(self, model: StorageSystemModel) -> List[float]:
        """Return per-file cache allocations ``d_i = k_i - sum_j pi_{i,j}``.

        Fractional values are possible before the integer rounding finishes.
        """
        allocations = []
        for spec, file_probs in zip(model.files, self.probabilities):
            allocations.append(spec.k - sum(file_probs.values()))
        return allocations

    def total_cache_usage(self, model: StorageSystemModel) -> float:
        """Total (possibly fractional) number of cached chunks."""
        return sum(max(d, 0.0) for d in self.cache_allocation(model))


def initial_solution(model: StorageSystemModel) -> SolutionState:
    """Build a feasible starting point with nothing in the cache.

    Every file spreads its ``k_i`` chunk requests uniformly over its ``n_i``
    hosting nodes (``pi_{i,j} = k_i / n_i <= 1``), which satisfies all
    constraints with ``d_i = 0``.
    """
    probabilities: List[Dict[int, float]] = []
    for spec in model.files:
        pi = spec.k / spec.n
        probabilities.append({node_id: pi for node_id in spec.placement})
    state = SolutionState(probabilities=probabilities, z_values=[0.0] * model.num_files)
    moments = node_moments(model, state)
    state.z_values = [
        optimal_z(file_probs, {j: moments[j] for j in file_probs})
        for file_probs in state.probabilities
    ]
    return state


def node_moments(
    model: StorageSystemModel,
    state: SolutionState,
    strict: bool = False,
) -> Dict[int, QueueMoments]:
    """Sojourn-time moments at every node under the candidate schedule."""
    arrival_rates = model.node_arrival_rates(state.probabilities)
    moments: Dict[int, QueueMoments] = {}
    for node_id in model.node_ids:
        moments[node_id] = queue_moments(
            arrival_rates[node_id], model.service(node_id), strict=strict
        )
    return moments


def per_file_bounds(
    model: StorageSystemModel,
    state: SolutionState,
    moments: Optional[Mapping[int, QueueMoments]] = None,
    use_given_z: bool = False,
) -> List[float]:
    """Per-file latency bounds ``U_i`` for the candidate solution.

    Parameters
    ----------
    use_given_z:
        When ``True`` the bounds are evaluated at the candidate ``z_i``;
        otherwise each file's bound is minimised over ``z_i`` (tightest).
    """
    if moments is None:
        moments = node_moments(model, state)
    bounds: List[float] = []
    for index, file_probs in enumerate(state.probabilities):
        relevant = {j: moments[j] for j in file_probs}
        if use_given_z and state.z_values:
            bounds.append(
                latency_bound_at_z(state.z_values[index], file_probs, relevant)
            )
        else:
            z_star = optimal_z(file_probs, relevant)
            bounds.append(latency_bound_at_z(z_star, file_probs, relevant))
    return bounds


def system_objective(
    model: StorageSystemModel,
    state: SolutionState,
    moments: Optional[Mapping[int, QueueMoments]] = None,
    use_given_z: bool = False,
) -> float:
    """The weighted objective of Eq. (6): ``sum_i (lambda_i / lambda_hat) U_i``."""
    total_rate = model.total_arrival_rate
    if total_rate <= 0:
        raise OptimizationError("total arrival rate must be positive")
    bounds = per_file_bounds(model, state, moments=moments, use_given_z=use_given_z)
    objective = 0.0
    for spec, bound in zip(model.files, bounds):
        objective += (spec.arrival_rate / total_rate) * bound
    return objective


def objective_gradient_pi(
    model: StorageSystemModel,
    state: SolutionState,
) -> List[Dict[int, float]]:
    """Gradient of the Eq. (6) objective with respect to every ``pi_{i,j}``.

    The objective couples files through the node arrival rates
    ``Lambda_j = sum_i lambda_i pi_{i,j}``: increasing ``pi_{i,j}`` both adds
    a direct term for file ``i`` and inflates the queueing moments that every
    file scheduling node ``j`` experiences.  Both effects are accounted for.
    """
    total_rate = model.total_arrival_rate
    arrival_rates = model.node_arrival_rates(state.probabilities)
    moments: Dict[int, QueueMoments] = {}
    moment_derivatives: Dict[int, tuple] = {}
    for node_id in model.node_ids:
        service = model.service(node_id)
        moments[node_id] = queue_moments(arrival_rates[node_id], service, strict=False)
        moment_derivatives[node_id] = queue_moment_derivatives(
            arrival_rates[node_id], service
        )

    # Pre-compute, for every node, the sensitivity of the whole objective to
    # the node's E[Q_j] and Var[Q_j]:  sum over files using that node of the
    # weighted partial derivatives of the Lemma-1 expression.
    sensitivity_mean: Dict[int, float] = {j: 0.0 for j in model.node_ids}
    sensitivity_var: Dict[int, float] = {j: 0.0 for j in model.node_ids}
    direct_terms: List[Dict[int, float]] = []
    for index, (spec, file_probs) in enumerate(zip(model.files, state.probabilities)):
        weight = spec.arrival_rate / total_rate
        z_i = state.z_values[index] if state.z_values else 0.0
        direct: Dict[int, float] = {}
        for node_id, pi in file_probs.items():
            moment = moments[node_id]
            diff = moment.mean - z_i
            root = math.sqrt(diff * diff + moment.variance)
            # Direct derivative of the file-i bound w.r.t. pi_{i,j}.
            direct[node_id] = weight * 0.5 * (diff + root)
            # Derivative w.r.t. the node moments (chain rule terms).
            if root > 0:
                d_mean = weight * 0.5 * pi * (1.0 + diff / root)
                d_var = weight * 0.25 * pi / root
            else:
                d_mean = weight * 0.5 * pi
                d_var = 0.0
            sensitivity_mean[node_id] += d_mean
            sensitivity_var[node_id] += d_var
        direct_terms.append(direct)

    gradients: List[Dict[int, float]] = []
    for spec, file_probs, direct in zip(model.files, state.probabilities, direct_terms):
        gradient: Dict[int, float] = {}
        for node_id in file_probs:
            d_mean_d_lambda, d_var_d_lambda = moment_derivatives[node_id]
            coupling = spec.arrival_rate * (
                sensitivity_mean[node_id] * d_mean_d_lambda
                + sensitivity_var[node_id] * d_var_d_lambda
            )
            gradient[node_id] = direct[node_id] + coupling
        gradients.append(gradient)
    return gradients
