"""Storage-system model used by the cache optimization.

A :class:`StorageSystemModel` captures everything Section III of the paper
needs for a single compute-server cache in a single time bin:

* ``m`` heterogeneous storage nodes, each with an arbitrary chunk
  service-time distribution,
* ``r`` files, each stored with an ``(n_i, k_i)`` MDS code on a node subset
  ``S_i``,
* per-file Poisson request arrival rates ``lambda_i``,
* a cache of capacity ``C`` chunks shared by all files.

The model is a plain data container plus validation and convenience
accessors; the optimization lives in :mod:`repro.core.algorithm`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.exceptions import ModelError
from repro.queueing.distributions import ExponentialService, ServiceDistribution


@dataclass
class FileSpec:
    """Description of one erasure-coded file.

    Attributes
    ----------
    file_id:
        Stable identifier of the file (used in placements and reports).
    n:
        Number of coded chunks stored on storage nodes.
    k:
        Number of chunks required to reconstruct the file.
    placement:
        The node ids in ``S_i`` holding the file's ``n`` chunks.
    arrival_rate:
        Poisson request arrival rate ``lambda_i`` (requests per second).
    chunk_size:
        Chunk size in bytes (used by the simulator and the cluster
        emulation; the analytical model is size-agnostic because the service
        distributions already absorb the transfer time).
    size_bytes:
        Original file size; defaults to ``k * chunk_size``.
    """

    file_id: str
    n: int
    k: int
    placement: Sequence[int]
    arrival_rate: float
    chunk_size: int = 1
    size_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        self.placement = tuple(self.placement)
        if self.k <= 0:
            raise ModelError(f"file {self.file_id}: k must be positive, got {self.k}")
        if self.n < self.k:
            raise ModelError(
                f"file {self.file_id}: n ({self.n}) must be at least k ({self.k})"
            )
        if len(self.placement) != self.n:
            raise ModelError(
                f"file {self.file_id}: placement lists {len(self.placement)} nodes "
                f"but n={self.n}"
            )
        if len(set(self.placement)) != len(self.placement):
            raise ModelError(
                f"file {self.file_id}: placement contains duplicate nodes"
            )
        if self.arrival_rate < 0:
            raise ModelError(
                f"file {self.file_id}: arrival rate must be non-negative, "
                f"got {self.arrival_rate}"
            )
        if self.chunk_size <= 0:
            raise ModelError(
                f"file {self.file_id}: chunk size must be positive, got {self.chunk_size}"
            )
        if self.size_bytes is None:
            self.size_bytes = self.k * self.chunk_size

    @property
    def redundancy_factor(self) -> float:
        """Storage overhead ``n / k``."""
        return self.n / self.k


class StorageSystemModel:
    """The full single-cache system model of Section III.

    Parameters
    ----------
    services:
        Per-node chunk service-time distributions, keyed by node id
        ``0 .. m-1`` (or given as a sequence).
    files:
        The files stored in the system.
    cache_capacity:
        Cache size ``C`` in chunks.
    """

    def __init__(
        self,
        services: Sequence[ServiceDistribution] | Mapping[int, ServiceDistribution],
        files: Sequence[FileSpec],
        cache_capacity: int,
    ):
        if isinstance(services, Mapping):
            self._services: Dict[int, ServiceDistribution] = dict(services)
        else:
            self._services = dict(enumerate(services))
        if not self._services:
            raise ModelError("the model requires at least one storage node")
        for node_id, service in self._services.items():
            service.validate()
            if node_id < 0:
                raise ModelError(f"node ids must be non-negative, got {node_id}")
        self._files: List[FileSpec] = list(files)
        if not self._files:
            raise ModelError("the model requires at least one file")
        seen_ids = set()
        for spec in self._files:
            if spec.file_id in seen_ids:
                raise ModelError(f"duplicate file id {spec.file_id!r}")
            seen_ids.add(spec.file_id)
            for node_id in spec.placement:
                if node_id not in self._services:
                    raise ModelError(
                        f"file {spec.file_id} placed on unknown node {node_id}"
                    )
        if cache_capacity < 0:
            raise ModelError(f"cache capacity must be non-negative, got {cache_capacity}")
        self._cache_capacity = int(cache_capacity)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of storage nodes ``m``."""
        return len(self._services)

    @property
    def num_files(self) -> int:
        """Number of files ``r``."""
        return len(self._files)

    @property
    def node_ids(self) -> List[int]:
        """Sorted list of node ids."""
        return sorted(self._services)

    @property
    def files(self) -> List[FileSpec]:
        """The file specifications (shared list; treat as read-only)."""
        return list(self._files)

    @property
    def cache_capacity(self) -> int:
        """Cache capacity ``C`` in chunks."""
        return self._cache_capacity

    @property
    def total_arrival_rate(self) -> float:
        """Aggregate file request rate ``lambda_hat``."""
        return float(sum(spec.arrival_rate for spec in self._files))

    def service(self, node_id: int) -> ServiceDistribution:
        """Return the service distribution of ``node_id``."""
        try:
            return self._services[node_id]
        except KeyError as error:
            raise ModelError(f"unknown node id {node_id}") from error

    @property
    def services(self) -> Dict[int, ServiceDistribution]:
        """Mapping from node id to service distribution (copy)."""
        return dict(self._services)

    def file(self, file_id: str) -> FileSpec:
        """Return the specification of file ``file_id``."""
        for spec in self._files:
            if spec.file_id == file_id:
                return spec
        raise ModelError(f"unknown file id {file_id!r}")

    def file_index(self, file_id: str) -> int:
        """Return the positional index of ``file_id``."""
        for index, spec in enumerate(self._files):
            if spec.file_id == file_id:
                return index
        raise ModelError(f"unknown file id {file_id!r}")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    def node_arrival_rates(
        self, probabilities: Sequence[Mapping[int, float]]
    ) -> Dict[int, float]:
        """Aggregate chunk arrival rate ``Lambda_j`` per node.

        ``Lambda_j = sum_i lambda_i * pi_{i,j}`` for a candidate scheduling
        assignment ``probabilities`` aligned with :attr:`files`.
        """
        if len(probabilities) != self.num_files:
            raise ModelError(
                f"expected probabilities for {self.num_files} files, "
                f"got {len(probabilities)}"
            )
        rates = {node_id: 0.0 for node_id in self._services}
        for spec, file_probs in zip(self._files, probabilities):
            for node_id, pi in file_probs.items():
                if node_id not in rates:
                    raise ModelError(
                        f"file {spec.file_id} schedules unknown node {node_id}"
                    )
                if node_id not in spec.placement and pi > 0:
                    raise ModelError(
                        f"file {spec.file_id} schedules node {node_id} that does "
                        "not hold any of its chunks"
                    )
                rates[node_id] += spec.arrival_rate * float(pi)
        return rates

    def max_cache_demand(self) -> int:
        """Total cache demand if every file cached all ``k_i`` chunks."""
        return int(sum(spec.k for spec in self._files))

    def copy_with_arrival_rates(
        self, arrival_rates: Mapping[str, float] | Sequence[float]
    ) -> "StorageSystemModel":
        """Return a new model identical to this one but with new arrival rates.

        Used by the time-bin scheduler when the predicted rates change.
        """
        if isinstance(arrival_rates, Mapping):
            new_files = []
            for spec in self._files:
                rate = arrival_rates.get(spec.file_id, spec.arrival_rate)
                new_files.append(
                    FileSpec(
                        file_id=spec.file_id,
                        n=spec.n,
                        k=spec.k,
                        placement=spec.placement,
                        arrival_rate=rate,
                        chunk_size=spec.chunk_size,
                        size_bytes=spec.size_bytes,
                    )
                )
        else:
            rates = list(arrival_rates)
            if len(rates) != self.num_files:
                raise ModelError(
                    f"expected {self.num_files} arrival rates, got {len(rates)}"
                )
            new_files = [
                FileSpec(
                    file_id=spec.file_id,
                    n=spec.n,
                    k=spec.k,
                    placement=spec.placement,
                    arrival_rate=rate,
                    chunk_size=spec.chunk_size,
                    size_bytes=spec.size_bytes,
                )
                for spec, rate in zip(self._files, rates)
            ]
        return StorageSystemModel(
            services=self._services,
            files=new_files,
            cache_capacity=self._cache_capacity,
        )

    def copy_with_cache_capacity(self, cache_capacity: int) -> "StorageSystemModel":
        """Return a new model with a different cache capacity."""
        return StorageSystemModel(
            services=self._services,
            files=self._files,
            cache_capacity=cache_capacity,
        )

    def __repr__(self) -> str:
        return (
            f"StorageSystemModel(nodes={self.num_nodes}, files={self.num_files}, "
            f"cache_capacity={self._cache_capacity})"
        )


def build_random_placement_model(
    num_nodes: int,
    num_files: int,
    n: int,
    k: int,
    arrival_rates: Sequence[float],
    service_rates: Sequence[float],
    cache_capacity: int,
    chunk_size: int = 1,
    seed: Optional[int] = None,
) -> StorageSystemModel:
    """Build the paper's default style of model with random chunk placement.

    Parameters mirror the simulation setup of Section V-A: ``num_nodes``
    servers with exponential service at the given rates, ``num_files`` files
    each ``(n, k)``-coded and placed on a random ``n``-subset of nodes, and a
    cyclic assignment of the provided arrival-rate pattern to files.
    """
    if len(service_rates) != num_nodes:
        raise ModelError(
            f"expected {num_nodes} service rates, got {len(service_rates)}"
        )
    if n > num_nodes:
        raise ModelError(f"n={n} exceeds the number of nodes {num_nodes}")
    if not arrival_rates:
        raise ModelError("arrival_rates must not be empty")
    rng = np.random.default_rng(seed)
    services = [ExponentialService(rate) for rate in service_rates]
    files = []
    for index in range(num_files):
        placement = rng.choice(num_nodes, size=n, replace=False)
        files.append(
            FileSpec(
                file_id=f"file-{index}",
                n=n,
                k=k,
                placement=[int(node) for node in placement],
                arrival_rate=float(arrival_rates[index % len(arrival_rates)]),
                chunk_size=chunk_size,
            )
        )
    return StorageSystemModel(
        services=services, files=files, cache_capacity=cache_capacity
    )
