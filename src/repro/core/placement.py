"""Cache-placement results produced by the optimization.

A :class:`CachePlacement` is the user-facing output of Algorithm 1: the
integer number of functional chunks to cache per file, the scheduling
probabilities for the chunks fetched from storage, and the analytical
latency bounds achieved.  It also knows how to express the placement as the
"equivalent code" view used by the Ceph prototype (a file with ``d`` cached
chunks is read as if it were ``(n, k - d)`` coded).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.core.model import StorageSystemModel
from repro.exceptions import ModelError


@dataclass
class FilePlacement:
    """Placement decision for a single file."""

    file_id: str
    cached_chunks: int
    scheduling_probabilities: Dict[int, float]
    latency_bound: float
    arrival_rate: float
    k: int
    n: int

    @property
    def storage_chunks_per_request(self) -> int:
        """Number of chunks fetched from storage per read (``k - d``)."""
        return self.k - self.cached_chunks

    @property
    def equivalent_code(self) -> tuple[int, int]:
        """The Ceph-prototype equivalent code ``(n, k - d)``."""
        return (self.n, self.k - self.cached_chunks)

    @property
    def fully_cached(self) -> bool:
        """Whether the whole file can be reconstructed from the cache."""
        return self.cached_chunks >= self.k


@dataclass
class CachePlacement:
    """Complete cache placement for one compute-server cache and time bin.

    Attributes
    ----------
    files:
        Per-file placement decisions, in the model's file order.
    objective:
        The weighted latency bound (Eq. 6) achieved by this placement.
    cache_capacity:
        Cache capacity (in chunks) the placement was computed for.
    time_bin:
        Optional identifier of the time bin the placement belongs to.
    """

    files: List[FilePlacement]
    objective: float
    cache_capacity: int
    time_bin: Optional[int] = None
    metadata: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def placement_for(self, file_id: str) -> FilePlacement:
        """Return the placement entry of ``file_id``."""
        for entry in self.files:
            if entry.file_id == file_id:
                return entry
        raise ModelError(f"no placement for file {file_id!r}")

    def cached_chunks(self) -> Dict[str, int]:
        """Mapping from file id to the number of cached chunks ``d_i``."""
        return {entry.file_id: entry.cached_chunks for entry in self.files}

    def scheduling_probabilities(self) -> Dict[str, Dict[int, float]]:
        """Mapping from file id to its per-node scheduling probabilities."""
        return {
            entry.file_id: dict(entry.scheduling_probabilities)
            for entry in self.files
        }

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    @property
    def total_cached_chunks(self) -> int:
        """Total number of chunks placed in the cache."""
        return sum(entry.cached_chunks for entry in self.files)

    @property
    def cache_utilization(self) -> float:
        """Fraction of the cache capacity used (0 when capacity is 0)."""
        if self.cache_capacity == 0:
            return 0.0
        return self.total_cached_chunks / self.cache_capacity

    def mean_latency_bound(self) -> float:
        """Arrival-rate weighted mean of the per-file latency bounds."""
        total_rate = sum(entry.arrival_rate for entry in self.files)
        if total_rate <= 0:
            raise ModelError("total arrival rate must be positive")
        return sum(
            entry.arrival_rate / total_rate * entry.latency_bound
            for entry in self.files
        )

    def pool_assignment(self) -> Dict[tuple[int, int], List[str]]:
        """Group files by equivalent code -- the Ceph object-pool map.

        The prototype in the paper creates one pool per equivalent code
        ``(n, k - d)`` and assigns each object to the pool matching its
        current cache allocation.
        """
        pools: Dict[tuple[int, int], List[str]] = {}
        for entry in self.files:
            pools.setdefault(entry.equivalent_code, []).append(entry.file_id)
        return pools

    def validate_against(self, model: StorageSystemModel) -> None:
        """Sanity-check the placement against a model (capacity, supports)."""
        if len(self.files) != model.num_files:
            raise ModelError(
                f"placement covers {len(self.files)} files, model has {model.num_files}"
            )
        if self.total_cached_chunks > model.cache_capacity:
            raise ModelError(
                f"placement uses {self.total_cached_chunks} chunks, capacity is "
                f"{model.cache_capacity}"
            )
        for entry, spec in zip(self.files, model.files):
            if entry.file_id != spec.file_id:
                raise ModelError(
                    "placement file order does not match the model "
                    f"({entry.file_id!r} vs {spec.file_id!r})"
                )
            if not 0 <= entry.cached_chunks <= spec.k:
                raise ModelError(
                    f"file {entry.file_id}: cached chunks {entry.cached_chunks} "
                    f"outside [0, {spec.k}]"
                )
            for node_id, pi in entry.scheduling_probabilities.items():
                if node_id not in spec.placement and pi > 1e-9:
                    raise ModelError(
                        f"file {entry.file_id}: schedules node {node_id} that "
                        "holds none of its chunks"
                    )
                if pi < -1e-9 or pi > 1.0 + 1e-9:
                    raise ModelError(
                        f"file {entry.file_id}: probability {pi} outside [0, 1]"
                    )

    def summary(self) -> str:
        """Human-readable multi-line summary of the placement."""
        lines = [
            f"CachePlacement(time_bin={self.time_bin}, "
            f"objective={self.objective:.4f}, "
            f"cached={self.total_cached_chunks}/{self.cache_capacity})"
        ]
        for entry in self.files:
            lines.append(
                f"  {entry.file_id}: d={entry.cached_chunks} "
                f"(equivalent code {entry.equivalent_code}), "
                f"U_i={entry.latency_bound:.4f}"
            )
        return "\n".join(lines)


def placement_histogram(placement: CachePlacement) -> Dict[int, int]:
    """Histogram of cache allocations: how many files cache ``d`` chunks."""
    histogram: Dict[int, int] = {}
    for entry in placement.files:
        histogram[entry.cached_chunks] = histogram.get(entry.cached_chunks, 0) + 1
    return dict(sorted(histogram.items()))


def compare_placements(
    before: CachePlacement, after: CachePlacement
) -> Dict[str, int]:
    """Per-file change in cached chunks between two placements.

    Positive values mean the file gained cache space in ``after``.
    """
    before_chunks = before.cached_chunks()
    after_chunks = after.cached_chunks()
    all_ids = set(before_chunks) | set(after_chunks)
    return {
        file_id: after_chunks.get(file_id, 0) - before_chunks.get(file_id, 0)
        for file_id in sorted(all_ids)
    }
