"""Service-time distributions with the moments the Sprout analysis needs.

Lemma 1 of the paper consumes, for each storage node ``j``, the first three
moments of the per-chunk service time ``X_j``:

* mean ``E[X_j] = 1 / mu_j``,
* second moment ``Gamma_j^2 = E[X_j^2]`` (equivalently the variance
  ``sigma_j^2``),
* third moment ``hat Gamma_j^3 = E[X_j^3]``.

Every distribution class below exposes those moments analytically *and* can
draw random samples, so the same object parameterises both the analytical
bound and the discrete-event simulator.  ``EmpiricalMomentsService`` builds a
distribution directly from a measured mean / variance pair (Tables IV and V
of the paper) by fitting a log-normal with matching first two moments.
"""

from __future__ import annotations

import abc
import math
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import ModelError


class ServiceDistribution(abc.ABC):
    """Abstract base class for per-chunk service-time distributions."""

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """First moment ``E[X]`` in seconds."""

    @property
    @abc.abstractmethod
    def second_moment(self) -> float:
        """Second moment ``E[X^2]``."""

    @property
    @abc.abstractmethod
    def third_moment(self) -> float:
        """Third moment ``E[X^3]``."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        """Draw one sample (``size is None``) or an array of samples."""

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def rate(self) -> float:
        """Service rate ``mu = 1 / E[X]``."""
        return 1.0 / self.mean

    @property
    def variance(self) -> float:
        """Variance ``sigma^2 = E[X^2] - E[X]^2``."""
        return self.second_moment - self.mean**2

    @property
    def squared_coefficient_of_variation(self) -> float:
        """``sigma^2 / E[X]^2`` -- 1 for exponential, 0 for deterministic."""
        return self.variance / self.mean**2

    def validate(self) -> None:
        """Raise :class:`ModelError` if the moments are inconsistent."""
        if self.mean <= 0:
            raise ModelError(f"mean service time must be positive, got {self.mean}")
        if self.second_moment < self.mean**2:
            raise ModelError(
                "second moment smaller than squared mean: "
                f"E[X^2]={self.second_moment}, E[X]^2={self.mean ** 2}"
            )
        if self.third_moment <= 0:
            raise ModelError("third moment must be positive")

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(mean={self.mean:.6g}, "
            f"var={self.variance:.6g})"
        )


class ExponentialService(ServiceDistribution):
    """Exponential service times with rate ``mu`` (mean ``1/mu``)."""

    def __init__(self, rate: float):
        if rate <= 0:
            raise ModelError(f"service rate must be positive, got {rate}")
        self._rate = float(rate)

    @property
    def rate(self) -> float:
        return self._rate

    @property
    def mean(self) -> float:
        return 1.0 / self._rate

    @property
    def second_moment(self) -> float:
        return 2.0 / self._rate**2

    @property
    def third_moment(self) -> float:
        return 6.0 / self._rate**3

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        return rng.exponential(scale=1.0 / self._rate, size=size)


class DeterministicService(ServiceDistribution):
    """Constant (deterministic) service times."""

    def __init__(self, value: float):
        if value <= 0:
            raise ModelError(f"service time must be positive, got {value}")
        self._value = float(value)

    @property
    def mean(self) -> float:
        return self._value

    @property
    def second_moment(self) -> float:
        return self._value**2

    @property
    def third_moment(self) -> float:
        return self._value**3

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        if size is None:
            return self._value
        return np.full(size, self._value)


class ShiftedExponentialService(ServiceDistribution):
    """Shifted exponential: ``X = shift + Exp(rate)``.

    A common model for storage reads -- a fixed positioning / network cost
    plus an exponential transfer component.
    """

    def __init__(self, shift: float, rate: float):
        if shift < 0:
            raise ModelError(f"shift must be non-negative, got {shift}")
        if rate <= 0:
            raise ModelError(f"rate must be positive, got {rate}")
        self._shift = float(shift)
        self._rate = float(rate)

    @property
    def shift(self) -> float:
        """Deterministic offset added to every service time."""
        return self._shift

    @property
    def exponential_rate(self) -> float:
        """Rate of the exponential component."""
        return self._rate

    @property
    def mean(self) -> float:
        return self._shift + 1.0 / self._rate

    @property
    def second_moment(self) -> float:
        # E[(s + Y)^2] = s^2 + 2 s E[Y] + E[Y^2] with Y ~ Exp(rate)
        return (
            self._shift**2
            + 2.0 * self._shift / self._rate
            + 2.0 / self._rate**2
        )

    @property
    def third_moment(self) -> float:
        # E[(s + Y)^3] = s^3 + 3 s^2 E[Y] + 3 s E[Y^2] + E[Y^3]
        return (
            self._shift**3
            + 3.0 * self._shift**2 / self._rate
            + 6.0 * self._shift / self._rate**2
            + 6.0 / self._rate**3
        )

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        return self._shift + rng.exponential(scale=1.0 / self._rate, size=size)


class ParetoService(ServiceDistribution):
    """Pareto (heavy-tailed) service times with scale ``x_m`` and shape ``alpha``.

    The first three moments exist only when ``alpha > 3``; the constructor
    enforces that so the distribution can always feed Lemma 1.
    """

    def __init__(self, scale: float, shape: float):
        if scale <= 0:
            raise ModelError(f"scale must be positive, got {scale}")
        if shape <= 3:
            raise ModelError(
                "Pareto shape must exceed 3 so that the first three moments "
                f"exist, got {shape}"
            )
        self._scale = float(scale)
        self._shape = float(shape)

    @property
    def scale(self) -> float:
        """Minimum value ``x_m`` of the distribution."""
        return self._scale

    @property
    def shape(self) -> float:
        """Tail index ``alpha``."""
        return self._shape

    def _raw_moment(self, order: int) -> float:
        return self._shape * self._scale**order / (self._shape - order)

    @property
    def mean(self) -> float:
        return self._raw_moment(1)

    @property
    def second_moment(self) -> float:
        return self._raw_moment(2)

    @property
    def third_moment(self) -> float:
        return self._raw_moment(3)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        # numpy's pareto gives samples of (X/x_m - 1); rescale and shift.
        return self._scale * (1.0 + rng.pareto(self._shape, size=size))


class LogNormalService(ServiceDistribution):
    """Log-normal service times parameterised by ``mu`` and ``sigma`` of log X."""

    def __init__(self, log_mean: float, log_sigma: float):
        if log_sigma < 0:
            raise ModelError(f"log_sigma must be non-negative, got {log_sigma}")
        self._log_mean = float(log_mean)
        self._log_sigma = float(log_sigma)

    @property
    def log_mean(self) -> float:
        """Mean of ``log X``."""
        return self._log_mean

    @property
    def log_sigma(self) -> float:
        """Standard deviation of ``log X``."""
        return self._log_sigma

    def _raw_moment(self, order: int) -> float:
        return math.exp(
            order * self._log_mean + 0.5 * order**2 * self._log_sigma**2
        )

    @property
    def mean(self) -> float:
        return self._raw_moment(1)

    @property
    def second_moment(self) -> float:
        return self._raw_moment(2)

    @property
    def third_moment(self) -> float:
        return self._raw_moment(3)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        return rng.lognormal(mean=self._log_mean, sigma=self._log_sigma, size=size)

    @classmethod
    def from_mean_variance(cls, mean: float, variance: float) -> "LogNormalService":
        """Fit a log-normal matching a measured ``mean`` and ``variance``.

        This is how the empirical chunk-service-time measurements of
        Table IV / Table V are converted into a samplable distribution.
        """
        if mean <= 0:
            raise ModelError(f"mean must be positive, got {mean}")
        if variance < 0:
            raise ModelError(f"variance must be non-negative, got {variance}")
        if variance == 0:
            return cls(log_mean=math.log(mean), log_sigma=0.0)
        sigma_squared = math.log(1.0 + variance / mean**2)
        log_mean = math.log(mean) - 0.5 * sigma_squared
        return cls(log_mean=log_mean, log_sigma=math.sqrt(sigma_squared))


class EmpiricalMomentsService(ServiceDistribution):
    """A distribution defined by measured moments, sampled via a fitted model.

    The analytical bound uses the measured mean / variance (and a third
    moment either measured or derived from the log-normal fit); samples are
    drawn from the fitted log-normal so that simulation and analysis share
    the same first two moments.
    """

    def __init__(
        self,
        mean: float,
        variance: float,
        third_moment: Optional[float] = None,
    ):
        self._fitted = LogNormalService.from_mean_variance(mean, variance)
        self._mean = float(mean)
        self._variance = float(variance)
        if third_moment is None:
            third_moment = self._fitted.third_moment
        self._third_moment = float(third_moment)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def second_moment(self) -> float:
        return self._variance + self._mean**2

    @property
    def third_moment(self) -> float:
        return self._third_moment

    @property
    def fitted(self) -> LogNormalService:
        """The log-normal used for sampling."""
        return self._fitted

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        return self._fitted.sample(rng, size=size)

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "EmpiricalMomentsService":
        """Build a distribution from raw measurements (e.g. testbed traces)."""
        data = np.asarray(list(samples), dtype=float)
        if data.size == 0:
            raise ModelError("cannot build a distribution from zero samples")
        if np.any(data <= 0):
            raise ModelError("service-time samples must be positive")
        mean = float(np.mean(data))
        variance = float(np.var(data))
        third = float(np.mean(data**3))
        return cls(mean=mean, variance=variance, third_moment=third)
