"""Queueing substrate: service-time distributions, M/G/1 waiting-time
moments (Pollaczek-Khinchine), and the order-statistics latency bound of
Lemma 1 in the Sprout paper.
"""

from repro.queueing.distributions import (
    DeterministicService,
    EmpiricalMomentsService,
    ExponentialService,
    LogNormalService,
    ParetoService,
    ServiceDistribution,
    ShiftedExponentialService,
)
from repro.queueing.mg1 import MG1Queue, queue_moments
from repro.queueing.order_stats import (
    latency_upper_bound,
    optimal_z,
    weighted_latency_objective,
)
from repro.queueing.stability import check_stability, utilization

__all__ = [
    "ServiceDistribution",
    "ExponentialService",
    "DeterministicService",
    "ShiftedExponentialService",
    "ParetoService",
    "LogNormalService",
    "EmpiricalMomentsService",
    "MG1Queue",
    "queue_moments",
    "latency_upper_bound",
    "optimal_z",
    "weighted_latency_objective",
    "check_stability",
    "utilization",
]
