"""Order-statistics latency bound (Lemma 1 of the Sprout paper).

A file-``i`` read under functional caching forks ``k_i - d_i`` chunk requests
to storage nodes selected with probabilities ``pi_{i,j}`` and joins when the
slowest one completes.  Lemma 1 bounds the mean of that maximum:

    U_i = min_{z_i >= 0}  z_i
          + sum_j (pi_{i,j} / 2) * (E[Q_j] - z_i)
          + sum_j (pi_{i,j} / 2) * sqrt((E[Q_j] - z_i)^2 + Var[Q_j])

This module evaluates the inner expression for a fixed ``z``, finds the
optimal ``z`` for fixed scheduling probabilities, and computes the weighted
multi-file objective of Eq. (6).  Gradients with respect to ``z`` are also
provided for the alternating-minimization algorithm.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.exceptions import OptimizationError
from repro.queueing.mg1 import QueueMoments


def latency_bound_at_z(
    z: float,
    probabilities: Mapping[int, float] | Sequence[float],
    moments: Mapping[int, QueueMoments] | Sequence[QueueMoments],
) -> float:
    """Evaluate the Lemma-1 expression for a fixed auxiliary variable ``z``.

    Parameters
    ----------
    z:
        The auxiliary variable ``z_i`` (must be finite).
    probabilities:
        Scheduling probabilities ``pi_{i,j}`` for the nodes the file can use,
        keyed by node id (or given as an aligned sequence).
    moments:
        Sojourn-time moments ``(E[Q_j], Var[Q_j])`` keyed consistently with
        ``probabilities``.
    """
    prob_items = _aligned_items(probabilities, moments)
    total = z
    for pi_j, moment in prob_items:
        if pi_j == 0.0:
            continue
        diff = moment.mean - z
        total += 0.5 * pi_j * diff
        total += 0.5 * pi_j * math.sqrt(diff * diff + moment.variance)
    return total


def latency_bound_gradient_z(
    z: float,
    probabilities: Mapping[int, float] | Sequence[float],
    moments: Mapping[int, QueueMoments] | Sequence[QueueMoments],
) -> float:
    """Derivative of :func:`latency_bound_at_z` with respect to ``z``."""
    prob_items = _aligned_items(probabilities, moments)
    gradient = 1.0
    for pi_j, moment in prob_items:
        if pi_j == 0.0:
            continue
        diff = moment.mean - z
        denominator = math.sqrt(diff * diff + moment.variance)
        gradient -= 0.5 * pi_j
        if denominator > 0:
            gradient -= 0.5 * pi_j * diff / denominator
        # If Var == 0 and diff == 0 the sub-gradient interval is [-pi, 0];
        # taking 0 keeps the iteration stable.
    return gradient


def optimal_z(
    probabilities: Mapping[int, float] | Sequence[float],
    moments: Mapping[int, QueueMoments] | Sequence[QueueMoments],
    non_negative: bool = True,
    tolerance: float = 1e-9,
    max_iterations: int = 200,
) -> float:
    """Find the ``z`` minimising the Lemma-1 expression.

    The expression is convex in ``z``; its derivative is monotonically
    non-decreasing, so a bisection on the derivative (bracketing the root
    between 0 and the largest ``E[Q_j] + sqrt(Var[Q_j])``) converges quickly
    and is robust.  When ``non_negative`` is set (the paper's constraint
    ``z_i >= 0``), a negative unconstrained minimiser is clamped to 0.
    """
    prob_items = _aligned_items(probabilities, moments)
    if not prob_items or all(pi_j == 0.0 for pi_j, _ in prob_items):
        # No storage chunks requested (file entirely in cache): the bound
        # reduces to z, minimised at the boundary.
        return 0.0 if non_negative else 0.0

    upper = max(
        moment.mean + math.sqrt(max(moment.variance, 0.0))
        for pi_j, moment in prob_items
        if pi_j > 0.0
    )
    upper = max(upper, 1e-12)
    lower = 0.0
    gradient_lower = latency_bound_gradient_z(lower, probabilities, moments)
    if gradient_lower >= 0.0:
        # Objective is non-decreasing on [0, inf): minimiser at the boundary.
        if non_negative:
            return 0.0
        lower = -upper
        gradient_lower = latency_bound_gradient_z(lower, probabilities, moments)
        if gradient_lower >= 0.0:
            return lower
    gradient_upper = latency_bound_gradient_z(upper, probabilities, moments)
    iterations = 0
    while gradient_upper < 0.0 and iterations < max_iterations:
        upper *= 2.0
        gradient_upper = latency_bound_gradient_z(upper, probabilities, moments)
        iterations += 1
    if gradient_upper < 0.0:
        raise OptimizationError(
            "failed to bracket the optimal z; the bound appears unbounded"
        )
    for _ in range(max_iterations):
        midpoint = 0.5 * (lower + upper)
        gradient_mid = latency_bound_gradient_z(midpoint, probabilities, moments)
        if abs(upper - lower) < tolerance:
            break
        if gradient_mid < 0.0:
            lower = midpoint
        else:
            upper = midpoint
    z_star = 0.5 * (lower + upper)
    if non_negative and z_star < 0.0:
        z_star = 0.0
    return z_star


def latency_upper_bound(
    probabilities: Mapping[int, float] | Sequence[float],
    moments: Mapping[int, QueueMoments] | Sequence[QueueMoments],
    non_negative_z: bool = True,
) -> float:
    """Return ``U_i``: the Lemma-1 bound minimised over ``z``."""
    z_star = optimal_z(probabilities, moments, non_negative=non_negative_z)
    return latency_bound_at_z(z_star, probabilities, moments)


def weighted_latency_objective(
    file_probabilities: Sequence[Mapping[int, float]],
    arrival_rates: Sequence[float],
    moments: Mapping[int, QueueMoments],
    z_values: Sequence[float] | None = None,
) -> float:
    """Evaluate the multi-file objective of Eq. (6).

    Parameters
    ----------
    file_probabilities:
        For each file, a mapping from node id to ``pi_{i,j}``.
    arrival_rates:
        Per-file arrival rates ``lambda_i`` (weights).
    moments:
        Per-node sojourn-time moments (shared across files, as the node load
        already reflects all files' traffic).
    z_values:
        Optional per-file auxiliary variables; when omitted the per-file
        optimal ``z_i`` is used, i.e. the tightest bound.
    """
    if len(file_probabilities) != len(arrival_rates):
        raise OptimizationError(
            "file_probabilities and arrival_rates must have equal length"
        )
    total_rate = float(sum(arrival_rates))
    if total_rate <= 0:
        raise OptimizationError("total arrival rate must be positive")
    objective = 0.0
    for index, (probabilities, rate) in enumerate(
        zip(file_probabilities, arrival_rates)
    ):
        if z_values is None:
            bound = latency_upper_bound(probabilities, moments)
        else:
            bound = latency_bound_at_z(z_values[index], probabilities, moments)
        objective += (rate / total_rate) * bound
    return objective


def _aligned_items(
    probabilities: Mapping[int, float] | Sequence[float],
    moments: Mapping[int, QueueMoments] | Sequence[QueueMoments],
) -> list[tuple[float, QueueMoments]]:
    """Pair each probability with the corresponding node moments."""
    if isinstance(probabilities, Mapping):
        if not isinstance(moments, Mapping):
            raise OptimizationError(
                "when probabilities is a mapping, moments must also be a mapping"
            )
        items: list[tuple[float, QueueMoments]] = []
        for node_id, pi_j in probabilities.items():
            if pi_j < -1e-12 or pi_j > 1.0 + 1e-9:
                raise OptimizationError(
                    f"probability pi={pi_j} for node {node_id} outside [0, 1]"
                )
            if node_id not in moments:
                raise OptimizationError(f"missing moments for node {node_id}")
            items.append((max(float(pi_j), 0.0), moments[node_id]))
        return items
    probabilities = list(probabilities)
    moments_list = list(moments.values()) if isinstance(moments, Mapping) else list(moments)
    if len(probabilities) != len(moments_list):
        raise OptimizationError(
            "probabilities and moments sequences must have equal length"
        )
    for pi_j in probabilities:
        if pi_j < -1e-12 or pi_j > 1.0 + 1e-9:
            raise OptimizationError(f"probability {pi_j} outside [0, 1]")
    return [
        (max(float(pi_j), 0.0), moment)
        for pi_j, moment in zip(probabilities, moments_list)
    ]
