"""Stability checks for the per-node M/G/1 queues.

The probabilistic-scheduling analysis is only valid while every local queue
is stable, i.e. the aggregate chunk arrival rate at each node stays below the
node's service rate.  These helpers centralise that check for the optimizer,
the simulator, and the cluster emulation.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.exceptions import StabilityError
from repro.queueing.distributions import ServiceDistribution


def utilization(arrival_rate: float, service: ServiceDistribution) -> float:
    """Return the utilisation ``rho = Lambda / mu`` of a node."""
    if arrival_rate < 0:
        raise StabilityError(f"arrival rate must be non-negative, got {arrival_rate}")
    return arrival_rate / service.rate


def check_stability(
    arrival_rates: Sequence[float] | Mapping[int, float],
    services: Sequence[ServiceDistribution] | Mapping[int, ServiceDistribution],
    margin: float = 0.0,
) -> dict[int, float]:
    """Verify ``rho_j < 1 - margin`` for every node.

    Parameters
    ----------
    arrival_rates:
        Per-node aggregate arrival rates, either as a sequence indexed by
        node position or a mapping from node id to rate.
    services:
        Per-node service distributions aligned with ``arrival_rates``.
    margin:
        Required headroom; nodes must satisfy ``rho < 1 - margin``.

    Returns
    -------
    dict
        Mapping from node index to utilisation.

    Raises
    ------
    StabilityError
        If any node violates the stability condition.
    """
    if isinstance(arrival_rates, Mapping):
        rate_items = sorted(arrival_rates.items())
    else:
        rate_items = list(enumerate(arrival_rates))
    if isinstance(services, Mapping):
        service_lookup = dict(services)
    else:
        service_lookup = dict(enumerate(services))

    utilizations: dict[int, float] = {}
    violations: list[str] = []
    for node_id, rate in rate_items:
        if node_id not in service_lookup:
            raise StabilityError(f"no service distribution for node {node_id}")
        rho = utilization(rate, service_lookup[node_id])
        utilizations[node_id] = rho
        if rho >= 1.0 - margin:
            violations.append(f"node {node_id}: rho={rho:.4f}")
    if violations:
        raise StabilityError(
            "unstable (or insufficient-margin) nodes: " + ", ".join(violations)
        )
    return utilizations


def max_supportable_rate(service: ServiceDistribution, margin: float = 0.0) -> float:
    """Largest aggregate arrival rate a node supports with the given margin."""
    if not 0.0 <= margin < 1.0:
        raise StabilityError(f"margin must lie in [0, 1), got {margin}")
    return service.rate * (1.0 - margin)
