"""M/G/1 waiting-time moments via the Pollaczek-Khinchine transform.

Under probabilistic scheduling each storage node sees a Poisson stream of
chunk requests (a superposition of thinned per-file Poisson processes) and
serves them FIFO from a single queue -- an M/G/1 queue.  Equations (3) and
(4) of the Sprout paper give the mean and variance of the *sojourn time*
(queueing delay plus service) at node ``j``:

    E[Q_j]   = 1/mu_j + Lambda_j * Gamma_j^2 / (2 (1 - rho_j))
    Var[Q_j] = sigma_j^2 + Lambda_j * hatGamma_j^3 / (3 (1 - rho_j))
               + Lambda_j^2 * Gamma_j^4 / (4 (1 - rho_j)^2)

with ``rho_j = Lambda_j / mu_j``.  This module evaluates those expressions
(and their derivatives with respect to ``Lambda_j``, needed by the gradient
solvers in :mod:`repro.core`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import StabilityError
from repro.queueing.distributions import ServiceDistribution


@dataclass(frozen=True)
class QueueMoments:
    """Mean and variance of the sojourn time at one storage node."""

    mean: float
    variance: float
    utilization: float

    @property
    def second_moment(self) -> float:
        """Second moment ``E[Q^2] = Var[Q] + E[Q]^2``."""
        return self.variance + self.mean**2


def queue_moments(
    arrival_rate: float,
    service: ServiceDistribution,
    strict: bool = True,
) -> QueueMoments:
    """Evaluate Eqs. (3)-(4) for one node.

    Parameters
    ----------
    arrival_rate:
        Aggregate chunk-request arrival rate ``Lambda_j`` at the node.
    service:
        The node's chunk service-time distribution (supplies ``mu_j``,
        ``Gamma_j^2``, ``hatGamma_j^3`` and ``sigma_j^2``).
    strict:
        When ``True`` (default) an unstable load ``rho >= 1`` raises
        :class:`StabilityError`; when ``False`` the utilisation is clamped
        just below 1 so optimization line-searches can evaluate slightly
        infeasible points without crashing.

    Returns
    -------
    QueueMoments
        Mean, variance and utilisation of the sojourn time.
    """
    if arrival_rate < 0:
        raise StabilityError(f"arrival rate must be non-negative, got {arrival_rate}")
    mu = service.rate
    gamma2 = service.second_moment
    gamma3 = service.third_moment
    sigma2 = service.variance
    rho = arrival_rate / mu
    if rho >= 1.0:
        if strict:
            raise StabilityError(
                f"node utilisation rho={rho:.4f} >= 1; the M/G/1 queue is unstable"
            )
        rho = min(rho, 1.0 - 1e-9)
        arrival_rate = rho * mu
    one_minus_rho = 1.0 - rho
    mean = 1.0 / mu + arrival_rate * gamma2 / (2.0 * one_minus_rho)
    variance = (
        sigma2
        + arrival_rate * gamma3 / (3.0 * one_minus_rho)
        + arrival_rate**2 * gamma2**2 / (4.0 * one_minus_rho**2)
    )
    return QueueMoments(mean=mean, variance=variance, utilization=rho)


def queue_moment_derivatives(
    arrival_rate: float,
    service: ServiceDistribution,
) -> tuple[float, float]:
    """Return ``(dE[Q]/dLambda, dVar[Q]/dLambda)`` at the given arrival rate.

    These derivatives feed the gradient of the latency bound with respect to
    the scheduling probabilities (each ``pi_{i,j}`` contributes ``lambda_i``
    to ``Lambda_j``).
    """
    mu = service.rate
    gamma2 = service.second_moment
    gamma3 = service.third_moment
    rho = arrival_rate / mu
    if rho >= 1.0:
        rho = 1.0 - 1e-9
        arrival_rate = rho * mu
    one_minus_rho = 1.0 - rho
    # d/dLambda [ Lambda / (1 - Lambda/mu) ] = 1/(1-rho)^2
    dmean = gamma2 / (2.0 * one_minus_rho**2)
    dvar = (
        gamma3 / (3.0 * one_minus_rho**2)
        + arrival_rate * gamma2**2 / (2.0 * one_minus_rho**2)
        + arrival_rate**2 * gamma2**2 / (2.0 * mu * one_minus_rho**3)
    )
    return dmean, dvar


class MG1Queue:
    """Convenience wrapper pairing a service distribution with an arrival rate."""

    def __init__(self, service: ServiceDistribution, arrival_rate: float = 0.0):
        self._service = service
        self._arrival_rate = float(arrival_rate)

    @property
    def service(self) -> ServiceDistribution:
        """The node's service-time distribution."""
        return self._service

    @property
    def arrival_rate(self) -> float:
        """Current aggregate arrival rate ``Lambda_j``."""
        return self._arrival_rate

    @arrival_rate.setter
    def arrival_rate(self, value: float) -> None:
        if value < 0:
            raise StabilityError(f"arrival rate must be non-negative, got {value}")
        self._arrival_rate = float(value)

    @property
    def utilization(self) -> float:
        """Utilisation ``rho = Lambda / mu``."""
        return self._arrival_rate / self._service.rate

    @property
    def is_stable(self) -> bool:
        """Whether the queue is stable (``rho < 1``)."""
        return self.utilization < 1.0

    def moments(self, strict: bool = True) -> QueueMoments:
        """Sojourn-time moments at the current arrival rate."""
        return queue_moments(self._arrival_rate, self._service, strict=strict)

    def mean_waiting_time(self, strict: bool = True) -> float:
        """Mean sojourn time ``E[Q]``."""
        return self.moments(strict=strict).mean

    def waiting_time_variance(self, strict: bool = True) -> float:
        """Sojourn-time variance ``Var[Q]``."""
        return self.moments(strict=strict).variance

    def __repr__(self) -> str:
        return (
            f"MG1Queue(service={self._service!r}, "
            f"arrival_rate={self._arrival_rate:.6g}, rho={self.utilization:.4f})"
        )
