"""Fault schedules: failures and degradation as first-class replay events.

See :mod:`repro.faults.base` for the schedule/timeline abstractions and
:mod:`repro.faults.generators` for the built-in seeded generators
(``osd_crash``, ``degraded_read``, ``straggler``, ``repair_traffic``).
"""

from repro.faults.base import (
    CompositeFaultSchedule,
    FaultSchedule,
    FaultTimeline,
    FaultWindow,
    GeneratedFaultSchedule,
    as_fault_schedule,
    compile_fault_schedule,
    merge_timelines,
    timeline_from_windows,
)

__all__ = [
    "CompositeFaultSchedule",
    "FaultSchedule",
    "FaultTimeline",
    "FaultWindow",
    "GeneratedFaultSchedule",
    "as_fault_schedule",
    "compile_fault_schedule",
    "merge_timelines",
    "timeline_from_windows",
]
