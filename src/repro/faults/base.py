"""The fault-schedule layer: failures as first-class epoch boundaries.

A *fault schedule* describes how the emulated cluster degrades over a
replay horizon: OSDs crash and come back, whole failure domains go dark,
stragglers serve chunks several times slower, and background repair
traffic competes with foreground reads for the same FIFO queues.  The
replay engines consume a schedule in compiled form -- a
:class:`FaultTimeline` -- which is deliberately shaped like the epoch
mechanism that already drives the vectorised replay:

* ``boundaries_ms`` is a sorted stream of instants at which the cluster
  state changes.  The unified boundary classifier in
  :mod:`repro.cluster.replay` merges these with the miss/TTL boundaries,
  so a fault event is just another epoch boundary.
* Between two boundaries the cluster state is frozen: ``down[i, osd]``
  says whether an OSD is unavailable during interval ``i`` and
  ``slow[i, osd]`` scales its service times (the straggler lane).
* ``repair_times_ms``/``repair_osds``/``repair_services_ms`` describe
  background repair jobs spliced into the per-OSD queues as competing
  constant-service work.

Schedules themselves are lazy: a :class:`FaultSchedule` compiles into a
timeline once the replay knows the cluster width and trace horizon.  The
seeded generators (``osd_crash``, ``degraded_read``, ``straggler``,
``repair_traffic``; see :mod:`repro.faults.generators`) register in the
``FAULTS`` registry via :func:`repro.api.register_fault` and are selected
by name through ``Scenario(faults=..., fault_params=...)`` or the
``--fault``/``--fault-param`` CLI flags; schedules compose with
:class:`CompositeFaultSchedule` (availability masks AND together, slow
factors multiply, repair streams merge).

An *empty* schedule (no windows, no repair jobs) compiles to a trivial
timeline and is guaranteed to reproduce the healthy replay bit-for-bit --
the seeded equivalence tests in ``tests/faults`` hold the engines to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import FaultError

__all__ = [
    "FaultWindow",
    "FaultTimeline",
    "FaultSchedule",
    "GeneratedFaultSchedule",
    "CompositeFaultSchedule",
    "as_fault_schedule",
    "compile_fault_schedule",
    "timeline_from_windows",
    "merge_timelines",
]


@dataclass(frozen=True)
class FaultWindow:
    """One time-bounded effect on one OSD.

    ``kind`` is ``"down"`` (the OSD is unavailable for reads) or
    ``"slow"`` (its service times are scaled by ``factor``).  The window
    spans ``[start_ms, end_ms)``; windows are clipped to the replay
    horizon at compile time, so a window entirely outside the horizon is
    simply dropped.
    """

    kind: str
    osd: int
    start_ms: float
    end_ms: float
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ("down", "slow"):
            raise FaultError(f"unknown fault window kind {self.kind!r}")
        if self.osd < 0:
            raise FaultError(f"osd must be non-negative, got {self.osd}")
        if not self.start_ms < self.end_ms:
            raise FaultError(
                f"window must satisfy start < end, got [{self.start_ms}, {self.end_ms})"
            )
        if self.kind == "slow" and self.factor <= 0:
            raise FaultError(f"slow factor must be positive, got {self.factor}")


@dataclass(frozen=True)
class FaultTimeline:
    """A compiled fault schedule: piecewise-constant cluster state.

    Attributes
    ----------
    num_osds:
        Width of the cluster the timeline was compiled for.
    boundaries_ms:
        Strictly increasing instants at which the state changes; interval
        ``i`` spans ``[boundaries_ms[i-1], boundaries_ms[i])`` (interval 0
        starts at ``-inf``, the last interval runs to ``+inf``), so there
        are ``len(boundaries_ms) + 1`` state rows.
    down:
        ``(num_intervals, num_osds)`` availability mask (``True`` = the
        OSD is unavailable during that interval).
    slow:
        ``(num_intervals, num_osds)`` service-time multipliers (1.0 =
        nominal speed).
    repair_times_ms, repair_osds, repair_services_ms:
        Background repair jobs, sorted by arrival time: each occupies its
        OSD's FIFO queue for the given constant service time.
    """

    num_osds: int
    boundaries_ms: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=float))
    down: Optional[np.ndarray] = None
    slow: Optional[np.ndarray] = None
    repair_times_ms: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=float))
    repair_osds: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    repair_services_ms: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=float))
    label: str = "faults"

    def __post_init__(self) -> None:
        if self.num_osds < 1:
            raise FaultError(f"num_osds must be positive, got {self.num_osds}")
        boundaries = np.asarray(self.boundaries_ms, dtype=float)
        if boundaries.ndim != 1:
            raise FaultError("boundaries_ms must be one-dimensional")
        if boundaries.size and np.any(np.diff(boundaries) <= 0):
            raise FaultError("boundaries_ms must be strictly increasing")
        intervals = boundaries.size + 1
        down = self.down
        if down is None:
            down = np.zeros((intervals, self.num_osds), dtype=bool)
        else:
            down = np.asarray(down, dtype=bool)
        slow = self.slow
        if slow is None:
            slow = np.ones((intervals, self.num_osds), dtype=float)
        else:
            slow = np.asarray(slow, dtype=float)
        for name, state in (("down", down), ("slow", slow)):
            if state.shape != (intervals, self.num_osds):
                raise FaultError(
                    f"{name} must have shape ({intervals}, {self.num_osds}), "
                    f"got {state.shape}"
                )
        if np.any(slow <= 0):
            raise FaultError("slow multipliers must be positive")
        times = np.asarray(self.repair_times_ms, dtype=float)
        osds = np.asarray(self.repair_osds, dtype=np.int64)
        services = np.asarray(self.repair_services_ms, dtype=float)
        if not (times.shape == osds.shape == services.shape) or times.ndim != 1:
            raise FaultError("repair job arrays must be 1-D and aligned")
        if times.size:
            if np.any(np.diff(times) < 0):
                raise FaultError("repair job times must be sorted ascending")
            if np.any(osds < 0) or np.any(osds >= self.num_osds):
                raise FaultError("repair job OSD ids out of range")
            if np.any(services <= 0):
                raise FaultError("repair job service times must be positive")
        object.__setattr__(self, "boundaries_ms", boundaries)
        object.__setattr__(self, "down", down)
        object.__setattr__(self, "slow", slow)
        object.__setattr__(self, "repair_times_ms", times)
        object.__setattr__(self, "repair_osds", osds)
        object.__setattr__(self, "repair_services_ms", services)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def num_intervals(self) -> int:
        """Number of constant-state intervals (boundaries + 1)."""
        return int(self.boundaries_ms.size) + 1

    @property
    def trivial(self) -> bool:
        """Whether the timeline encodes no faults at all."""
        return (
            not bool(self.down.any())
            and bool(np.all(self.slow == 1.0))
            and self.repair_times_ms.size == 0
        )

    def interval_of(self, times_ms: np.ndarray) -> np.ndarray:
        """Map instants to their constant-state interval indices."""
        return np.searchsorted(self.boundaries_ms, np.asarray(times_ms, dtype=float), side="right")

    def down_at(self, time_ms: float) -> np.ndarray:
        """Availability mask row active at ``time_ms``."""
        return self.down[int(self.interval_of(np.asarray([time_ms]))[0])]

    def slow_at(self, time_ms: float) -> np.ndarray:
        """Service-multiplier row active at ``time_ms``."""
        return self.slow[int(self.interval_of(np.asarray([time_ms]))[0])]

    # A compiled timeline is itself a degenerate schedule, so every replay
    # entry point accepts either form.
    def compile(
        self,
        num_osds: int,
        horizon_ms: float,
        seed: Any = None,
        service_ms: Optional[float] = None,
    ) -> "FaultTimeline":
        """Return the timeline itself (it is already compiled)."""
        if num_osds != self.num_osds:
            raise FaultError(
                f"timeline was compiled for {self.num_osds} OSDs, "
                f"replay has {num_osds}"
            )
        return self


def timeline_from_windows(
    windows: Iterable[FaultWindow],
    num_osds: int,
    horizon_ms: float,
    repair: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None,
    label: str = "faults",
) -> FaultTimeline:
    """Compile fault windows into a piecewise-constant :class:`FaultTimeline`.

    Windows are clipped to ``[0, horizon_ms)``; windows entirely outside
    the horizon (or on OSDs outside the cluster) are rejected for bad OSD
    ids but silently dropped when they simply never overlap the horizon.
    """
    horizon_ms = float(horizon_ms)
    clipped = []
    for window in windows:
        if window.osd >= num_osds:
            raise FaultError(
                f"window names OSD {window.osd}, cluster has {num_osds}"
            )
        start = max(float(window.start_ms), 0.0)
        end = min(float(window.end_ms), horizon_ms) if horizon_ms > 0 else 0.0
        if start >= end:
            continue
        clipped.append((window.kind, window.osd, start, end, float(window.factor)))

    edges = set()
    for _, _, start, end, _ in clipped:
        if start > 0.0:
            edges.add(start)
        if end < horizon_ms:
            edges.add(end)
    boundaries = np.asarray(sorted(edges), dtype=float)
    intervals = boundaries.size + 1
    down = np.zeros((intervals, num_osds), dtype=bool)
    slow = np.ones((intervals, num_osds), dtype=float)
    for kind, osd, start, end, factor in clipped:
        first = int(np.searchsorted(boundaries, start, side="right"))
        last = int(np.searchsorted(boundaries, end, side="left")) + 1
        if end >= horizon_ms:
            last = intervals
        if kind == "down":
            down[first:last, osd] = True
        else:
            slow[first:last, osd] *= factor
    if repair is None:
        times = osds = services = None
    else:
        times, osds, services = repair
    return FaultTimeline(
        num_osds=num_osds,
        boundaries_ms=boundaries,
        down=down,
        slow=slow,
        repair_times_ms=np.empty(0) if times is None else times,
        repair_osds=np.empty(0, np.int64) if osds is None else osds,
        repair_services_ms=np.empty(0) if services is None else services,
        label=label,
    )


def merge_timelines(timelines: Sequence[FaultTimeline]) -> FaultTimeline:
    """Compose timelines: masks OR, slow factors multiply, repairs merge."""
    if not timelines:
        raise FaultError("merge_timelines needs at least one timeline")
    num_osds = timelines[0].num_osds
    for timeline in timelines[1:]:
        if timeline.num_osds != num_osds:
            raise FaultError("cannot merge timelines of different cluster widths")
    if len(timelines) == 1:
        return timelines[0]
    boundaries = np.unique(np.concatenate([t.boundaries_ms for t in timelines]))
    # Sample every source timeline once per merged interval; any instant
    # inside the interval works because the state is constant there.
    if boundaries.size == 0:
        representatives = np.zeros(1, dtype=float)
    else:
        representatives = np.concatenate(
            (
                [boundaries[0] - 1.0],
                (boundaries[:-1] + boundaries[1:]) / 2.0,
                [boundaries[-1] + 1.0],
            )
        )
    intervals = boundaries.size + 1
    down = np.zeros((intervals, num_osds), dtype=bool)
    slow = np.ones((intervals, num_osds), dtype=float)
    for timeline in timelines:
        rows = timeline.interval_of(representatives)
        down |= timeline.down[rows]
        slow *= timeline.slow[rows]
    repair_times = np.concatenate([t.repair_times_ms for t in timelines])
    repair_osds = np.concatenate([t.repair_osds for t in timelines])
    repair_services = np.concatenate([t.repair_services_ms for t in timelines])
    order = np.argsort(repair_times, kind="stable")
    return FaultTimeline(
        num_osds=num_osds,
        boundaries_ms=boundaries,
        down=down,
        slow=slow,
        repair_times_ms=repair_times[order],
        repair_osds=repair_osds[order],
        repair_services_ms=repair_services[order],
        label="+".join(t.label for t in timelines),
    )


# ----------------------------------------------------------------------
# Lazy schedules
# ----------------------------------------------------------------------


class FaultSchedule:
    """Protocol of a lazy fault schedule.

    ``compile(num_osds, horizon_ms, seed, service_ms)`` must return a
    :class:`FaultTimeline` for the given cluster width and horizon; the
    same seed must always yield the same timeline.  ``service_ms`` is the
    replay's nominal chunk service time, the default sizing for repair
    jobs.  :class:`FaultTimeline` satisfies the protocol trivially.
    """

    label: str = "faults"

    def compile(
        self,
        num_osds: int,
        horizon_ms: float,
        seed: Any = None,
        service_ms: Optional[float] = None,
    ) -> FaultTimeline:
        raise NotImplementedError


@dataclass(frozen=True)
class GeneratedFaultSchedule(FaultSchedule):
    """A registered seeded generator plus its parameters."""

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Validate eagerly: an unknown generator or parameter fails at
        # construction time, with the registry's known-names message.
        self._spec().validate_params(self.params)
        object.__setattr__(self, "params", dict(self.params))

    def _spec(self):
        from repro.api.registry import FAULTS

        return FAULTS.get(self.name)

    @property
    def label(self) -> str:  # type: ignore[override]
        return self.name

    def compile(
        self,
        num_osds: int,
        horizon_ms: float,
        seed: Any = None,
        service_ms: Optional[float] = None,
    ) -> FaultTimeline:
        rng = np.random.default_rng(seed)
        return self._spec().build(
            num_osds=num_osds,
            horizon_ms=float(horizon_ms),
            rng=rng,
            service_ms=service_ms,
            **dict(self.params),
        )


@dataclass(frozen=True)
class CompositeFaultSchedule(FaultSchedule):
    """Several schedules active at once (an outage *and* repair traffic).

    Each part compiles with its own child of the composite's seed, so the
    parts stay independent and the whole composition is reproducible.
    """

    parts: Tuple[FaultSchedule, ...]

    def __post_init__(self) -> None:
        if not self.parts:
            raise FaultError("CompositeFaultSchedule needs at least one part")
        object.__setattr__(
            self, "parts", tuple(as_fault_schedule(part) for part in self.parts)
        )

    @property
    def label(self) -> str:  # type: ignore[override]
        return "+".join(part.label for part in self.parts)

    def compile(
        self,
        num_osds: int,
        horizon_ms: float,
        seed: Any = None,
        service_ms: Optional[float] = None,
    ) -> FaultTimeline:
        root = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        children = root.spawn(len(self.parts))
        return merge_timelines(
            [
                part.compile(num_osds, horizon_ms, seed=child, service_ms=service_ms)
                for part, child in zip(self.parts, children)
            ]
        )


FaultLike = Union[str, FaultSchedule, FaultTimeline, Sequence[Any], None]


def as_fault_schedule(
    faults: FaultLike, params: Optional[Mapping[str, Any]] = None
) -> Optional[FaultSchedule]:
    """Coerce a fault reference into a :class:`FaultSchedule`.

    Accepts a registered generator name (with optional ``params``), a
    schedule or compiled timeline, or a sequence of any of these (composed
    with :class:`CompositeFaultSchedule`); ``None`` stays ``None``.
    """
    if faults is None:
        if params:
            raise FaultError("fault_params were given without a fault schedule")
        return None
    if isinstance(faults, str):
        return GeneratedFaultSchedule(faults, dict(params or {}))
    if params:
        raise FaultError(
            "fault_params only apply to a registered generator name, "
            f"not {type(faults).__name__}"
        )
    if isinstance(faults, (FaultSchedule, FaultTimeline)):
        return faults
    if isinstance(faults, Sequence):
        return CompositeFaultSchedule(tuple(faults))
    raise FaultError(f"cannot interpret {faults!r} as a fault schedule")


def compile_fault_schedule(
    faults: FaultLike,
    params: Optional[Mapping[str, Any]] = None,
    *,
    num_osds: int,
    horizon_ms: float,
    seed: Any = None,
    service_ms: Optional[float] = None,
) -> Optional[FaultTimeline]:
    """One-step coercion + compilation (``None`` stays ``None``)."""
    schedule = as_fault_schedule(faults, params)
    if schedule is None:
        return None
    return schedule.compile(num_osds, horizon_ms, seed=seed, service_ms=service_ms)
