"""Built-in seeded fault-schedule generators.

Each generator is a callable
``(num_osds, horizon_ms, rng, service_ms, *, param=..., ...)`` returning a
compiled :class:`~repro.faults.base.FaultTimeline`, registered in the
``FAULTS`` registry via :func:`repro.api.register_fault` so it can be
selected by name through ``Scenario(faults=..., fault_params=...)`` or the
``--fault``/``--fault-param`` CLI flags.  All randomness flows through the
seeded ``rng`` the caller provides; the same seed always reproduces the
same timeline, which is what lets the seeded engine-equivalence tests in
``tests/faults`` pin the epoch and request engines to each other under
failure.

Rates are per **second** (trace times are milliseconds); a schedule with
``crash_rate * downtime_ms / 1000 == 0.01`` keeps each OSD down for ~1% of
the horizon in expectation -- the "1%-crash schedule" the
``BENCH_degraded_replay.json`` gate runs under.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.api.registry import register_fault
from repro.exceptions import FaultError
from repro.faults.base import FaultTimeline, FaultWindow, timeline_from_windows

__all__ = [
    "build_osd_crash",
    "build_degraded_read",
    "build_straggler",
    "build_repair_traffic",
]

#: Fallback constant service time (ms) for repair jobs when the caller does
#: not provide the replay's nominal chunk service time: the Table-IV mean
#: for 16 MB chunks (the default 64 MB object under a (7, 4) code).
DEFAULT_REPAIR_SERVICE_MS = 147.8462


def _resolve_osds(
    osds: Optional[Sequence[int]],
    fraction: Optional[float],
    num_osds: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """The OSD subset a fault applies to: explicit list, else seeded draw."""
    if osds is not None:
        chosen = np.asarray(list(osds), dtype=np.int64)
        if chosen.size and (chosen.min() < 0 or chosen.max() >= num_osds):
            raise FaultError(
                f"osds must lie in [0, {num_osds}), got {sorted(set(chosen.tolist()))}"
            )
        if np.unique(chosen).size != chosen.size:
            raise FaultError("osds must not repeat")
        return chosen
    if fraction is None:
        return np.arange(num_osds, dtype=np.int64)
    if not 0.0 <= fraction <= 1.0:
        raise FaultError(f"fraction must lie in [0, 1], got {fraction}")
    count = int(round(fraction * num_osds))
    return np.sort(rng.choice(num_osds, size=count, replace=False).astype(np.int64))


def _poisson_times(
    rng: np.random.Generator, rate_per_s: float, horizon_ms: float
) -> np.ndarray:
    """Sorted arrival instants of a Poisson process over ``[0, horizon_ms)``."""
    if rate_per_s < 0:
        raise FaultError(f"rate must be non-negative, got {rate_per_s}")
    expected = rate_per_s * horizon_ms / 1000.0
    if expected <= 0:
        return np.empty(0, dtype=float)
    count = int(rng.poisson(expected))
    return np.sort(rng.uniform(0.0, horizon_ms, size=count))


@register_fault(
    "osd_crash",
    description="Poisson OSD crashes, each followed by a fixed downtime window",
)
def build_osd_crash(
    num_osds: int,
    horizon_ms: float,
    rng: np.random.Generator,
    service_ms: Optional[float] = None,
    *,
    crash_rate: float = 1e-5,
    downtime_ms: float = 60_000.0,
    osds: Optional[Sequence[int]] = None,
) -> FaultTimeline:
    """Independent Poisson crash processes per OSD.

    Each affected OSD crashes at rate ``crash_rate`` (crashes per second)
    and stays down for ``downtime_ms`` after every crash; overlapping
    windows simply merge.  Expected unavailability per OSD is
    ``crash_rate * downtime_ms / 1000`` (so ``1e-5`` with a 1000 s
    downtime is a 1% duty cycle).
    """
    if downtime_ms <= 0:
        raise FaultError(f"downtime_ms must be positive, got {downtime_ms}")
    targets = _resolve_osds(osds, None, num_osds, rng)
    windows = []
    for osd in targets.tolist():
        for start in _poisson_times(rng, crash_rate, horizon_ms):
            windows.append(FaultWindow("down", osd, start, start + downtime_ms))
    return timeline_from_windows(windows, num_osds, horizon_ms, label="osd_crash")


@register_fault(
    "degraded_read",
    description="an outage window (AZ / failure-domain) forcing k-of-n repair reads",
)
def build_degraded_read(
    num_osds: int,
    horizon_ms: float,
    rng: np.random.Generator,
    service_ms: Optional[float] = None,
    *,
    fraction: float = 0.25,
    osds: Optional[Sequence[int]] = None,
    start_ms: float = 0.0,
    duration_ms: Optional[float] = None,
) -> FaultTimeline:
    """A correlated outage: a set of OSDs goes dark for one window.

    ``fraction`` of the cluster (or the explicit ``osds`` list, e.g. one
    availability zone's worth) is down during
    ``[start_ms, start_ms + duration_ms)`` (``duration_ms=None`` runs to
    the end of the horizon).  Reads whose preferred chunks lived there
    degrade to k-of-n repair reads against the surviving placement OSDs.
    """
    if duration_ms is not None and duration_ms <= 0:
        raise FaultError(f"duration_ms must be positive, got {duration_ms}")
    targets = _resolve_osds(osds, fraction, num_osds, rng)
    end_ms = horizon_ms if duration_ms is None else start_ms + duration_ms
    windows = [
        FaultWindow("down", osd, start_ms, end_ms)
        for osd in targets.tolist()
        if start_ms < end_ms
    ]
    return timeline_from_windows(windows, num_osds, horizon_ms, label="degraded_read")


@register_fault(
    "straggler",
    description="slow OSDs whose chunk service times are scaled by a multiplier",
)
def build_straggler(
    num_osds: int,
    horizon_ms: float,
    rng: np.random.Generator,
    service_ms: Optional[float] = None,
    *,
    fraction: float = 0.25,
    slowdown: float = 4.0,
    osds: Optional[Sequence[int]] = None,
    start_ms: float = 0.0,
    duration_ms: Optional[float] = None,
) -> FaultTimeline:
    """Stragglers: a subset of OSDs serves chunks ``slowdown`` times slower.

    The multiplier rides the per-OSD straggler lane of the grouped Lindley
    kernels, so a single slow OSD inflates exactly the fork-join legs that
    touch it.  ``fraction``/``osds`` select the subset; the window defaults
    to the whole horizon.
    """
    if slowdown <= 0:
        raise FaultError(f"slowdown must be positive, got {slowdown}")
    if duration_ms is not None and duration_ms <= 0:
        raise FaultError(f"duration_ms must be positive, got {duration_ms}")
    targets = _resolve_osds(osds, fraction, num_osds, rng)
    end_ms = horizon_ms if duration_ms is None else start_ms + duration_ms
    windows = [
        FaultWindow("slow", osd, start_ms, end_ms, factor=slowdown)
        for osd in targets.tolist()
        if start_ms < end_ms
    ]
    return timeline_from_windows(windows, num_osds, horizon_ms, label="straggler")


@register_fault(
    "repair_traffic",
    description="background repair reads competing with foreground chunk fetches",
)
def build_repair_traffic(
    num_osds: int,
    horizon_ms: float,
    rng: np.random.Generator,
    service_ms: Optional[float] = None,
    *,
    rate: float = 1.0,
    service_scale: float = 1.0,
    osds: Optional[Sequence[int]] = None,
) -> FaultTimeline:
    """A Poisson stream of background repair jobs across the cluster.

    ``rate`` is the aggregate arrival rate (jobs per second), spread
    uniformly over the affected OSDs; each job occupies its OSD's FIFO
    queue for a constant ``service_scale`` times the nominal chunk service
    time (the replay passes its HDD mean as ``service_ms``), delaying any
    foreground chunk fetch queued behind it.
    """
    if service_scale <= 0:
        raise FaultError(f"service_scale must be positive, got {service_scale}")
    targets = _resolve_osds(osds, None, num_osds, rng)
    if targets.size == 0:
        raise FaultError("repair_traffic needs at least one OSD")
    times = _poisson_times(rng, rate, horizon_ms)
    job_osds = targets[rng.integers(0, targets.size, size=times.size)]
    base_service = DEFAULT_REPAIR_SERVICE_MS if service_ms is None else float(service_ms)
    services = np.full(times.size, base_service * service_scale, dtype=float)
    return FaultTimeline(
        num_osds=num_osds,
        repair_times_ms=times,
        repair_osds=job_osds,
        repair_services_ms=services,
        label="repair_traffic",
    )
