"""Exception hierarchy for the Sprout reproduction library.

All library-specific errors derive from :class:`SproutError` so that callers
can catch a single base class when they want to distinguish library failures
from programming errors.
"""

from __future__ import annotations


class SproutError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ErasureCodeError(SproutError):
    """Raised for invalid erasure-code parameters or decode failures."""


class InsufficientChunksError(ErasureCodeError):
    """Raised when fewer than ``k`` chunks are available for decoding."""


class GaloisFieldError(SproutError):
    """Raised for invalid Galois-field operations (e.g. division by zero)."""


class ModelError(SproutError):
    """Raised for inconsistent storage-system model specifications."""


class StabilityError(ModelError):
    """Raised when a queueing system is driven beyond its stability region."""


class OptimizationError(SproutError):
    """Raised when an optimization sub-problem cannot be solved."""


class InfeasibleError(OptimizationError):
    """Raised when the cache-placement problem has no feasible point."""


class SimulationError(SproutError):
    """Raised for invalid simulator configurations or runtime faults."""


class ClusterError(SproutError):
    """Raised for invalid cluster-emulation operations."""


class PoolNotFoundError(ClusterError):
    """Raised when an object pool does not exist in the emulated cluster."""


class ObjectNotFoundError(ClusterError):
    """Raised when a requested object is not present in a pool."""


class CacheError(SproutError):
    """Raised for invalid cache operations (capacity overflow, bad keys)."""


class WorkloadError(SproutError):
    """Raised for invalid workload specifications."""


class TraceError(WorkloadError):
    """Raised for invalid trace schemas, formats or ingestion requests."""


class TraceValidationError(TraceError):
    """Raised when a trace fails schema validation.

    Carries the :class:`~repro.workloads.ingest.validate.ValidationReport`
    as ``report`` so callers can inspect the per-column violations.
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


class FaultError(ClusterError):
    """Raised for invalid fault schedules, windows or generator parameters."""


class ControlError(SproutError):
    """Raised for invalid online-controller configurations or operations."""


class RegistryError(SproutError):
    """Raised for invalid registry operations (unknown or duplicate names)."""


class ScenarioError(SproutError):
    """Raised when a :class:`repro.api.Scenario` fails validation."""
