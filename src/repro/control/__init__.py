"""Online re-optimization: streaming drift detection, warm solves, churn.

The seventh layer of the stack.  ``repro.control`` turns the per-bin
re-optimization the paper assumes (Section III time-scale separation,
Section VI future work) into a long-running component:

* :mod:`repro.control.estimator` -- vectorized streaming rate estimation
  over request-stream chunks with a sliding-window relative-change drift
  trigger (:class:`StreamingRateEstimator`, :class:`DriftEvent`);
* :mod:`repro.control.resolve` -- warm-started re-solves that rebind the
  compiled system to new rates and re-converge from the previous bin's
  iterate over a reduced active set (:class:`OnlineResolver`,
  :class:`ResolveReport`, :class:`ActiveSetProjection`);
* :mod:`repro.control.controller` -- the loop tying them together with a
  bounded-churn lazy swap planner (:class:`OnlineController`,
  :class:`SwapPlanner`, :class:`ChurnPlan`, :class:`ControlResult`).

Registered controllers (``Scenario(controller=...)``, CLI
``--controller``) live in the :data:`repro.api.registry.CONTROLLERS`
registry; the builtins are declared in :mod:`repro.control.builtins`.
"""

from repro.control.controller import (
    BinRecord,
    ChurnPlan,
    ControlResult,
    OnlineController,
    SwapPlanner,
)
from repro.control.estimator import DriftEvent, StreamingRateEstimator
from repro.control.resolve import (
    ActiveSetProjection,
    OnlineResolver,
    ResolveReport,
    round_allocation,
)

__all__ = [
    "ActiveSetProjection",
    "BinRecord",
    "ChurnPlan",
    "ControlResult",
    "DriftEvent",
    "OnlineController",
    "OnlineResolver",
    "ResolveReport",
    "StreamingRateEstimator",
    "SwapPlanner",
    "round_allocation",
]
