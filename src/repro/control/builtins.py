"""Built-in registered controllers (``Scenario(controller=...)``).

Imported lazily by the :data:`repro.api.registry.CONTROLLERS` populate
hook, mirroring how :mod:`repro.faults.generators` populates the fault
registry.  Each builder takes ``(model, **controller_params)`` and returns
a ready :class:`~repro.control.controller.OnlineController`; the keyword
names after ``model`` become the accepted ``controller_params``, validated
eagerly at :class:`~repro.api.scenario.Scenario` construction.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.api.registry import register_controller
from repro.control.controller import OnlineController
from repro.core.model import StorageSystemModel

#: A relative-change threshold no measured rate swing can reach, used to
#: disable the drift trigger when bins are opened on a clock instead.
_NEVER_TRIGGER = 1e18


class PeriodicController(OnlineController):
    """Re-solves on a fixed clock instead of on drift events.

    The estimator still runs (its windowed rates feed every re-solve) but
    its drift trigger is disabled; a new bin opens whenever ``interval``
    seconds have elapsed since the last one.
    """

    def __init__(
        self,
        model: StorageSystemModel,
        interval: float = 600.0,
        **kwargs,
    ):
        from repro.exceptions import ControlError

        if interval <= 0:
            raise ControlError("interval must be positive")
        kwargs.setdefault("change_threshold", _NEVER_TRIGGER)
        super().__init__(model, **kwargs)
        self._interval = float(interval)
        self._last_opened = 0.0

    @property
    def interval(self) -> float:
        """Seconds between scheduled re-solves."""
        return self._interval

    def observe(self, times: np.ndarray, positions: np.ndarray):
        """Feed one stream chunk; re-solve when the interval has elapsed."""
        if not self.resolver.bootstrapped:
            self.bootstrap()
        self.estimator.observe(times, positions)
        times = np.asarray(times, dtype=float)
        if times.size == 0:
            return None
        now = float(times[-1])
        if now - self._last_opened < self._interval:
            return None
        self._last_opened = now
        rates = self.estimator.freeze_bin_rates(floor=self._rate_floor)
        return self._open_bin(rates, opened_at=now, event=None, warm=True)


@register_controller(
    "online", description="drift-triggered warm re-solves with bounded churn"
)
def build_online(
    model: StorageSystemModel,
    *,
    window: float = 600.0,
    change_threshold: float = 0.5,
    min_observations: int = 5,
    churn_budget: Optional[float] = None,
    rate_floor: float = 0.0,
    parity_rtol: float = 1e-6,
) -> OnlineController:
    """The full online loop: drift detection, warm re-solve, bounded churn."""
    return OnlineController(
        model,
        window=window,
        change_threshold=change_threshold,
        min_observations=min_observations,
        churn_budget=churn_budget,
        rate_floor=rate_floor,
        warm=True,
        parity_rtol=parity_rtol,
    )


@register_controller(
    "cold", description="drift-triggered per-bin cold re-solve (baseline)"
)
def build_cold(
    model: StorageSystemModel,
    *,
    window: float = 600.0,
    change_threshold: float = 0.5,
    min_observations: int = 5,
    churn_budget: Optional[float] = None,
    rate_floor: float = 0.0,
) -> OnlineController:
    """Same trigger as ``online`` but every re-solve starts from scratch."""
    return OnlineController(
        model,
        window=window,
        change_threshold=change_threshold,
        min_observations=min_observations,
        churn_budget=churn_budget,
        rate_floor=rate_floor,
        warm=False,
    )


@register_controller(
    "periodic", description="fixed-interval warm re-solves from measured rates"
)
def build_periodic(
    model: StorageSystemModel,
    *,
    interval: float = 600.0,
    window: float = 600.0,
    min_observations: int = 5,
    churn_budget: Optional[float] = None,
    rate_floor: float = 0.0,
) -> OnlineController:
    """Clock-driven re-solves: a bin every ``interval`` seconds, no trigger."""
    return PeriodicController(
        model,
        interval=interval,
        window=window,
        min_observations=min_observations,
        churn_budget=churn_budget,
        rate_floor=rate_floor,
        warm=True,
    )
