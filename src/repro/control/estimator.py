"""Vectorized streaming arrival-rate estimation and drift detection.

The controller's front end: a :class:`StreamingRateEstimator` consumes a
request stream in *chunks* (``times``/``positions`` array pairs) instead of
one arrival at a time.  Each chunk is folded through the kernel layer
(:func:`repro.kernels.last_access_fold` deduplicates positions and counts
repeats in one pass), scatter-added into a running per-file count vector,
and expired at chunk granularity from a deque of chunk summaries -- there
is no per-arrival Python loop anywhere, which is what lets the controller
watch paper-scale (10^5-file) streams in real time.

This generalizes the scalar, per-arrival
:class:`repro.workloads.rates.SlidingWindowRateEstimator`: same sliding
window, same relative-change trigger against the rates frozen at the start
of the current bin, but the estimate divides by the *effective* window
``min(window, now - first_arrival)`` so rates are unbiased during the
start-up transient (before a full window has been observed) and
well-defined at every degenerate point (empty window, zero elapsed time).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ControlError
from repro.kernels import last_access_fold


@dataclass
class DriftEvent:
    """A detected rate drift that opens a new time bin.

    Attributes
    ----------
    time:
        Stream time (seconds) at which the drift was detected -- the end of
        the chunk that triggered it.
    bin_index:
        Index of the *new* bin opened by this event (the first bin is 1, so
        the first event opens bin 2).
    file_position, file_id:
        The file with the largest relative rate change.
    previous_rate, new_rate:
        That file's reference rate (frozen at the current bin's start) and
        its current windowed estimate.
    relative_change:
        ``|new - previous| / previous`` for the triggering file.
    num_changed:
        How many files crossed the threshold in the same chunk (a shifted
        Zipf head moves many files at once).
    """

    time: float
    bin_index: int
    file_position: int
    file_id: Optional[str]
    previous_rate: float
    new_rate: float
    relative_change: float
    num_changed: int = 1


class StreamingRateEstimator:
    """Sliding-window per-file rate estimates over a chunked request stream.

    Parameters
    ----------
    num_files:
        Number of files (the position space of the stream).
    window:
        Sliding-window length in seconds.  Expiry happens at chunk
        granularity: a chunk's counts leave the window only once its *last*
        arrival falls behind ``now - window``, so chunks should be short
        relative to the window.
    change_threshold:
        Relative change versus the frozen bin reference that triggers a
        :class:`DriftEvent`.
    min_observations:
        Minimum in-window arrivals before a file's estimate participates in
        the trigger (files below it neither adopt references nor fire).
    file_ids:
        Optional file-id table used to label events.
    """

    def __init__(
        self,
        num_files: int,
        window: float,
        change_threshold: float = 0.5,
        min_observations: int = 5,
        file_ids: Optional[Sequence[str]] = None,
    ):
        if num_files < 1:
            raise ControlError("num_files must be positive")
        if window <= 0:
            raise ControlError("window must be positive")
        if change_threshold <= 0:
            raise ControlError("change_threshold must be positive")
        if min_observations < 1:
            raise ControlError("min_observations must be at least 1")
        if file_ids is not None and len(file_ids) != num_files:
            raise ControlError(
                f"file_ids has {len(file_ids)} entries for {num_files} files"
            )
        self._num_files = int(num_files)
        self._window = float(window)
        self._change_threshold = float(change_threshold)
        self._min_observations = int(min_observations)
        self._file_ids = tuple(file_ids) if file_ids is not None else None
        self._counts = np.zeros(num_files, dtype=np.float64)
        self._chunks: Deque[Tuple[float, np.ndarray, np.ndarray]] = deque()
        self._reference = np.zeros(num_files, dtype=np.float64)
        self._first_time: Optional[float] = None
        self._last_time: Optional[float] = None
        self._current_bin = 1
        self._events: List[DriftEvent] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_files(self) -> int:
        """Number of files tracked."""
        return self._num_files

    @property
    def window(self) -> float:
        """Sliding-window length in seconds."""
        return self._window

    @property
    def current_bin(self) -> int:
        """Index of the current time bin (starts at 1)."""
        return self._current_bin

    @property
    def events(self) -> List[DriftEvent]:
        """All drift events fired so far (copied)."""
        return list(self._events)

    @property
    def reference_rates(self) -> np.ndarray:
        """The per-file rates frozen at the current bin's start (copied)."""
        return self._reference.copy()

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def observe(
        self, times: np.ndarray, positions: np.ndarray
    ) -> Optional[DriftEvent]:
        """Fold one stream chunk into the window; fire at most one event.

        ``times`` must be sorted ascending and non-decreasing across
        chunks; ``positions`` are file indices aligned with ``times``.
        """
        times = np.ascontiguousarray(times, dtype=np.float64)
        positions = np.ascontiguousarray(positions, dtype=np.int64)
        if times.ndim != 1 or positions.ndim != 1 or times.size != positions.size:
            raise ControlError("times and positions must be 1-D arrays of equal size")
        if times.size == 0:
            return None
        if times[0] < 0:
            raise ControlError("arrival times must be non-negative")
        if times.size > 1 and np.any(np.diff(times) < 0):
            raise ControlError("arrival times must be sorted ascending")
        if self._last_time is not None and times[0] < self._last_time:
            raise ControlError("chunks must be observed in non-decreasing time order")
        if positions.min() < 0 or positions.max() >= self._num_files:
            raise ControlError(
                f"positions must lie in [0, {self._num_files})"
            )
        now = float(times[-1])
        if self._first_time is None:
            self._first_time = float(times[0])
        self._last_time = now
        unique_positions, counts, _ = last_access_fold(positions)
        self._counts[unique_positions] += counts
        self._chunks.append((now, unique_positions, counts.astype(np.float64)))
        self._expire(now)
        return self._maybe_trigger(now)

    def _expire(self, now: float) -> None:
        cutoff = now - self._window
        while self._chunks and self._chunks[0][0] < cutoff:
            _, unique_positions, counts = self._chunks.popleft()
            self._counts[unique_positions] -= counts

    def rates(self, now: Optional[float] = None) -> np.ndarray:
        """Current windowed per-file rate estimates (requests/second).

        Divides the in-window counts by the *effective* window
        ``min(window, now - first_arrival)``; when no time has elapsed the
        full window is used as the divisor, so the result is always finite
        (zero for unobserved files).
        """
        if self._last_time is None:
            return np.zeros(self._num_files, dtype=np.float64)
        if now is None:
            now = self._last_time
        else:
            self._expire(float(now))
        effective = min(self._window, float(now) - float(self._first_time))
        if effective <= 0.0:
            effective = self._window
        return self._counts / effective

    # ------------------------------------------------------------------
    # Time-bin logic
    # ------------------------------------------------------------------

    def freeze_bin_rates(
        self, rates: Optional[np.ndarray] = None, floor: float = 0.0
    ) -> np.ndarray:
        """Freeze the current bin's reference rates and return them.

        The controller calls this right before re-solving: the returned
        (floored) vector is both the drift reference for the next trigger
        and the rate input of the re-solve, so the two always agree.
        """
        if rates is None:
            rates = self.rates()
        frozen = np.maximum(np.asarray(rates, dtype=np.float64), float(floor))
        if frozen.shape != (self._num_files,):
            raise ControlError(
                f"expected {self._num_files} rates, got shape {frozen.shape}"
            )
        self._reference = frozen.copy()
        return frozen

    def _maybe_trigger(self, now: float) -> Optional[DriftEvent]:
        eligible = self._counts >= self._min_observations
        if not np.any(eligible):
            return None
        rates = self.rates(now)
        # Files without a reference adopt the current estimate silently
        # (same semantics as SlidingWindowRateEstimator).
        adopt = eligible & (self._reference <= 0.0)
        if np.any(adopt):
            self._reference[adopt] = rates[adopt]
        consider = eligible & (self._reference > 0.0) & ~adopt
        if not np.any(consider):
            return None
        relative = np.zeros(self._num_files, dtype=np.float64)
        np.divide(
            np.abs(rates - self._reference),
            self._reference,
            out=relative,
            where=consider,
        )
        worst = int(np.argmax(relative))
        if relative[worst] <= self._change_threshold:
            return None
        self._current_bin += 1
        event = DriftEvent(
            time=now,
            bin_index=self._current_bin,
            file_position=worst,
            file_id=self._file_ids[worst] if self._file_ids is not None else None,
            previous_rate=float(self._reference[worst]),
            new_rate=float(rates[worst]),
            relative_change=float(relative[worst]),
            num_changed=int(np.count_nonzero(relative > self._change_threshold)),
        )
        self._events.append(event)
        # The new bin's provisional reference is the current snapshot; the
        # controller typically overwrites it via freeze_bin_rates() with the
        # (floored) rates it actually re-solved with.
        self._reference = rates.copy()
        return event
