"""The online controller: drift-triggered re-solves with bounded churn.

:class:`OnlineController` closes the loop the paper sketches in Section III:
watch the request stream, open a new time bin when the measured rates drift,
re-solve the placement warm (:class:`~repro.control.resolve.OnlineResolver`)
and apply it through the lazy cache-update rule -- drops are immediate and
free, adds materialize on the next access.  On top of the paper's rule the
controller adds a *churn budget*: at most ``churn_budget`` chunks may be
scheduled for (lazy) addition per bin, highest-rate files first, with the
remainder deferred to later bins.  This bounds the extra work the cache
does re-encoding functional chunks after a drift spike.

Two driving modes:

* **stream mode** (:meth:`run` / :meth:`observe`): consume a
  :class:`~repro.workloads.base.RequestStream` in chunks through the
  vectorized :class:`~repro.control.estimator.StreamingRateEstimator`,
  opening bins on :class:`~repro.control.estimator.DriftEvent`.
* **explicit-bin mode** (:meth:`process_bin`): the caller supplies per-bin
  rates directly (the Fig. 5 Table-I replay, the legacy
  :class:`~repro.core.timebins.TimeBinScheduler` shim).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.control.estimator import DriftEvent, StreamingRateEstimator
from repro.control.resolve import OnlineResolver, ResolveReport
from repro.core.model import StorageSystemModel
from repro.core.placement import CachePlacement
from repro.core.vectorized import VectorizedSystem
from repro.exceptions import ControlError
from repro.workloads.base import RequestStream


@dataclass
class ChurnPlan:
    """Bounded-churn swap plan between two consecutive placements.

    ``desired`` is the re-solve's integral allocation; ``applied`` is what
    the cache actually commits to this bin: all drops (free), plus the
    highest-priority adds up to the churn budget.  Deferred adds are *not*
    carried as debt -- the next re-solve recomputes ``desired`` from fresh
    rates, so deferral converges naturally once the rates settle.
    """

    bin_index: Optional[int]
    desired: np.ndarray
    applied: np.ndarray
    dropped_chunks: int
    added_chunks: int
    deferred_chunks: int
    budget: Optional[int]


class SwapPlanner:
    """Plans lazy drop-now/add-on-access deltas under a per-bin budget.

    Parameters
    ----------
    churn_budget:
        Maximum chunks scheduled for addition per bin; ``None`` (or
        ``inf``) disables the bound, recovering the paper's unbounded lazy
        update.
    """

    def __init__(self, churn_budget: Optional[float] = None):
        if churn_budget is not None:
            if math.isinf(churn_budget):
                churn_budget = None
            elif churn_budget < 0:
                raise ControlError("churn_budget must be non-negative")
        self._budget = int(churn_budget) if churn_budget is not None else None

    @property
    def churn_budget(self) -> Optional[int]:
        """The per-bin addition budget in chunks (``None`` = unbounded)."""
        return self._budget

    def plan(
        self,
        current: Optional[np.ndarray],
        desired: np.ndarray,
        priorities: Optional[np.ndarray] = None,
        bin_index: Optional[int] = None,
    ) -> ChurnPlan:
        """Plan the transition from ``current`` to ``desired`` allocations.

        ``priorities`` ranks which files' adds are granted first (higher
        wins; typically the measured arrival rates).  ``current=None``
        means an empty cache.
        """
        desired = np.asarray(desired, dtype=np.int64)
        if current is None:
            current = np.zeros_like(desired)
        else:
            current = np.asarray(current, dtype=np.int64)
        if current.shape != desired.shape:
            raise ControlError("current and desired allocations must align")
        drops = np.maximum(current - desired, 0)
        adds = np.maximum(desired - current, 0)
        total_adds = int(adds.sum())
        budget = self._budget
        if budget is None or total_adds <= budget:
            granted = adds
        else:
            if priorities is None:
                priorities = np.zeros(desired.size)
            priorities = np.asarray(priorities, dtype=float)
            granted = np.zeros_like(adds)
            # Highest-priority files first; stable order breaks ties by
            # file position so plans are deterministic.
            candidates = np.flatnonzero(adds > 0)
            order = candidates[
                np.argsort(-priorities[candidates], kind="stable")
            ]
            remaining = budget
            cumulative = np.cumsum(adds[order])
            full = cumulative <= remaining
            granted[order[full]] = adds[order[full]]
            used = int(cumulative[full][-1]) if np.any(full) else 0
            remaining -= used
            partial = order[np.count_nonzero(full):][:1]
            if partial.size and remaining > 0:
                granted[partial] = min(int(adds[partial[0]]), remaining)
        applied = np.minimum(current, desired) + granted
        return ChurnPlan(
            bin_index=bin_index,
            desired=desired,
            applied=applied,
            dropped_chunks=int(drops.sum()),
            added_chunks=int(granted.sum()),
            deferred_chunks=total_adds - int(granted.sum()),
            budget=budget,
        )


@dataclass
class BinRecord:
    """Everything the controller did for one time bin."""

    index: int
    opened_at: float
    event: Optional[DriftEvent]
    rates: np.ndarray
    report: ResolveReport
    churn: ChurnPlan
    placement: Optional[CachePlacement] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable summary (no per-file arrays)."""
        return {
            "index": self.index,
            "opened_at": self.opened_at,
            "trigger_file": self.event.file_id if self.event else None,
            "relative_change": (
                self.event.relative_change if self.event else None
            ),
            "num_changed": self.event.num_changed if self.event else None,
            "kind": self.report.kind,
            "warm": self.report.warm,
            "fallback": self.report.fallback,
            "fraction_frozen": self.report.fraction_frozen,
            "relaxed_objective": self.report.relaxed_objective,
            "objective": self.report.objective,
            "solve_seconds": self.report.seconds,
            "iterations": self.report.iterations,
            "sweeps": self.report.sweeps,
            "dropped_chunks": self.churn.dropped_chunks,
            "added_chunks": self.churn.added_chunks,
            "deferred_chunks": self.churn.deferred_chunks,
        }


@dataclass
class ControlResult:
    """Outcome of an :meth:`OnlineController.run` over a stream."""

    bins: List[BinRecord] = field(default_factory=list)
    num_requests: int = 0
    duration: float = 0.0
    churn_budget: Optional[int] = None
    warm: bool = True

    @property
    def num_bins(self) -> int:
        """Number of bins opened (including the bootstrap bin)."""
        return len(self.bins)

    @property
    def num_drift_events(self) -> int:
        """Number of bins opened by a drift event."""
        return sum(1 for record in self.bins if record.event is not None)

    @property
    def total_dropped_chunks(self) -> int:
        """Chunks dropped at bin boundaries across the run."""
        return sum(record.churn.dropped_chunks for record in self.bins)

    @property
    def total_added_chunks(self) -> int:
        """Chunks scheduled for lazy addition across the run."""
        return sum(record.churn.added_chunks for record in self.bins)

    @property
    def total_deferred_chunks(self) -> int:
        """Adds deferred past their bin by the churn budget."""
        return sum(record.churn.deferred_chunks for record in self.bins)

    def solve_seconds(self) -> List[float]:
        """Per-bin re-solve wall-clock seconds."""
        return [record.report.seconds for record in self.bins]

    def summary(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"ControlResult({self.num_bins} bins, "
            f"{self.num_drift_events} drift events, "
            f"{self.num_requests} requests over {self.duration:.0f} s)"
        ]
        for record in self.bins:
            trigger = (
                f"drift on {record.event.file_id or record.event.file_position} "
                f"({record.event.relative_change:+.0%})"
                if record.event
                else record.report.kind
            )
            lines.append(
                f"  bin {record.index} @ {record.opened_at:8.1f}s [{trigger}]: "
                f"{record.report.kind} solve {record.report.seconds * 1000.0:7.1f} ms, "
                f"objective {record.report.objective:.4f}, "
                f"-{record.churn.dropped_chunks}/+{record.churn.added_chunks} chunks"
                + (
                    f" ({record.churn.deferred_chunks} deferred)"
                    if record.churn.deferred_chunks
                    else ""
                )
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable view of the run."""
        return {
            "num_bins": self.num_bins,
            "num_drift_events": self.num_drift_events,
            "num_requests": self.num_requests,
            "duration": self.duration,
            "churn_budget": self.churn_budget,
            "warm": self.warm,
            "total_dropped_chunks": self.total_dropped_chunks,
            "total_added_chunks": self.total_added_chunks,
            "total_deferred_chunks": self.total_deferred_chunks,
            "bins": [record.to_dict() for record in self.bins],
        }


class OnlineController:
    """Watches a workload stream and re-optimizes the cache on drift.

    Parameters
    ----------
    model:
        The storage-system model (structure, services, capacity).  Its own
        arrival rates seed the bootstrap solve.
    window, change_threshold, min_observations:
        Estimator knobs (see :class:`StreamingRateEstimator`).
    churn_budget:
        Per-bin cap on chunks scheduled for lazy addition (``None`` =
        unbounded, the paper's rule).
    rate_floor:
        Per-file floor applied when freezing measured rates for a
        re-solve, keeping never-observed files from degenerating to
        exactly-zero weight.
    warm:
        Whether drift re-solves run warm; ``False`` turns the controller
        into the per-bin cold re-solve baseline the fig14 race compares
        against.
    system:
        Optional precompiled :class:`VectorizedSystem` to reuse.
    build_placements:
        Whether per-bin :class:`CachePlacement` objects are assembled
        (disable at paper scale).
    resolver_params:
        Extra keyword arguments for :class:`OnlineResolver`.
    """

    def __init__(
        self,
        model: StorageSystemModel,
        window: float = 600.0,
        change_threshold: float = 0.5,
        min_observations: int = 5,
        churn_budget: Optional[float] = None,
        rate_floor: float = 0.0,
        warm: bool = True,
        system: Optional[VectorizedSystem] = None,
        build_placements: bool = True,
        **resolver_params: Any,
    ):
        self._model = model
        self._file_ids = [spec.file_id for spec in model.files]
        self._file_positions = {
            file_id: position for position, file_id in enumerate(self._file_ids)
        }
        self._resolver = OnlineResolver(
            model,
            system=system,
            build_placements=build_placements,
            **resolver_params,
        )
        self._estimator = StreamingRateEstimator(
            num_files=model.num_files,
            window=window,
            change_threshold=change_threshold,
            min_observations=min_observations,
            file_ids=self._file_ids,
        )
        self._planner = SwapPlanner(churn_budget)
        self._rate_floor = float(rate_floor)
        self._warm = bool(warm)
        self._applied: Optional[np.ndarray] = None
        self._records: List[BinRecord] = []
        self._bin_counter = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def model(self) -> StorageSystemModel:
        """The storage-system model."""
        return self._model

    @property
    def resolver(self) -> OnlineResolver:
        """The warm-started re-solver."""
        return self._resolver

    @property
    def estimator(self) -> StreamingRateEstimator:
        """The streaming rate estimator."""
        return self._estimator

    @property
    def planner(self) -> SwapPlanner:
        """The bounded-churn swap planner."""
        return self._planner

    @property
    def records(self) -> List[BinRecord]:
        """All bins opened so far (copied)."""
        return list(self._records)

    @property
    def applied_allocation(self) -> Optional[np.ndarray]:
        """The per-file allocation the cache is currently committed to."""
        return None if self._applied is None else self._applied.copy()

    @property
    def current_placement(self) -> Optional[CachePlacement]:
        """The most recent bin's placement (when placements are built)."""
        for record in reversed(self._records):
            if record.placement is not None:
                return record.placement
        return None

    # ------------------------------------------------------------------
    # Bin machinery
    # ------------------------------------------------------------------

    def _open_bin(
        self,
        rates: np.ndarray,
        opened_at: float,
        event: Optional[DriftEvent],
        warm: bool,
        index: Optional[int] = None,
    ) -> BinRecord:
        self._bin_counter += 1
        if index is None:
            index = self._bin_counter
        if not self._resolver.bootstrapped:
            report = self._resolver.bootstrap(rates, bin_index=index)
        else:
            report = self._resolver.resolve(
                rates, warm=warm and self._warm, bin_index=index
            )
        churn = self._planner.plan(
            self._applied, report.cached_chunks, priorities=rates, bin_index=index
        )
        self._applied = churn.applied
        record = BinRecord(
            index=index,
            opened_at=opened_at,
            event=event,
            rates=rates,
            report=report,
            churn=churn,
            placement=report.placement,
        )
        self._records.append(record)
        return record

    # ------------------------------------------------------------------
    # Stream mode
    # ------------------------------------------------------------------

    def bootstrap(self) -> BinRecord:
        """Open the first bin from the model's own (predicted) rates."""
        if self._resolver.bootstrapped:
            raise ControlError("controller is already bootstrapped")
        rates = np.asarray(
            [spec.arrival_rate for spec in self._model.files], dtype=float
        )
        return self._open_bin(rates, opened_at=0.0, event=None, warm=False)

    def observe(
        self, times: np.ndarray, positions: np.ndarray
    ) -> Optional[BinRecord]:
        """Feed one stream chunk; re-solve and re-plan if drift fires."""
        if not self._resolver.bootstrapped:
            self.bootstrap()
        event = self._estimator.observe(times, positions)
        if event is None:
            return None
        rates = self._estimator.freeze_bin_rates(floor=self._rate_floor)
        return self._open_bin(
            rates, opened_at=event.time, event=event, warm=True
        )

    def run(
        self,
        stream: RequestStream,
        chunk_duration: Optional[float] = None,
        num_chunks: int = 64,
    ) -> ControlResult:
        """Drive the controller over a whole request stream.

        The stream is cut into time chunks (``chunk_duration`` seconds, or
        ``duration / num_chunks`` when omitted) and each chunk is observed
        in turn; the estimator window should span several chunks.
        """
        positions = self._stream_positions(stream)
        duration = stream.duration
        if chunk_duration is None:
            if num_chunks < 1:
                raise ControlError("num_chunks must be positive")
            chunk_duration = duration / num_chunks if duration > 0 else 0.0
        if chunk_duration <= 0:
            raise ControlError("chunk_duration must be positive")
        if not self._resolver.bootstrapped:
            self.bootstrap()
        edges = np.arange(chunk_duration, duration + chunk_duration, chunk_duration)
        boundaries = np.searchsorted(stream.times, edges, side="right")
        start = 0
        for stop in boundaries:
            if stop > start:
                self.observe(stream.times[start:stop], positions[start:stop])
            start = stop
        return ControlResult(
            bins=self.records,
            num_requests=stream.num_requests,
            duration=float(duration),
            churn_budget=self._planner.churn_budget,
            warm=self._warm,
        )

    def _stream_positions(self, stream: RequestStream) -> np.ndarray:
        """Map stream object positions onto model file positions."""
        if list(stream.object_ids) == self._file_ids:
            return stream.object_positions
        try:
            mapping = np.asarray(
                [
                    self._file_positions[object_id]
                    for object_id in stream.object_ids
                ],
                dtype=np.int64,
            )
        except KeyError as error:
            raise ControlError(
                f"stream object {error.args[0]!r} is not a file of the model"
            ) from None
        return mapping[stream.object_positions]

    # ------------------------------------------------------------------
    # Explicit-bin mode
    # ------------------------------------------------------------------

    def process_bin(
        self,
        arrival_rates: Union[Mapping[str, float], Sequence[float]],
        opened_at: Optional[float] = None,
        index: Optional[int] = None,
    ) -> BinRecord:
        """Open a bin with caller-supplied rates (no drift detection).

        ``arrival_rates`` may be a per-file-id mapping (files missing from
        it keep the model's own rate) or a positional vector.  The first
        call runs cold (bootstrap); later calls re-solve warm.  ``index``
        overrides the controller's own bin numbering (used by callers that
        replay externally-numbered bins, e.g. the Table-I replay).
        """
        if isinstance(arrival_rates, Mapping):
            rates = np.asarray(
                [spec.arrival_rate for spec in self._model.files], dtype=float
            )
            for file_id, rate in arrival_rates.items():
                position = self._file_positions.get(file_id)
                if position is None:
                    raise ControlError(
                        f"unknown file {file_id!r} in arrival_rates"
                    )
                rates[position] = float(rate)
        else:
            rates = np.asarray(arrival_rates, dtype=float)
            if rates.shape != (self._model.num_files,):
                raise ControlError(
                    f"expected {self._model.num_files} rates, got {rates.shape}"
                )
        if opened_at is None:
            opened_at = float(len(self._records))
        self._estimator.freeze_bin_rates(rates)
        return self._open_bin(
            rates, opened_at=opened_at, event=None, warm=True, index=index
        )
