"""Warm-started re-solves of the cache-placement problem.

The online controller re-optimizes at every drift event.  A cold Algorithm-1
run at paper scale (10^5 files) is far too slow to fit inside a time bin, so
:class:`OnlineResolver` re-solves warm:

* the compiled :class:`~repro.core.vectorized.VectorizedSystem` is re-pointed
  at the new measured rates with :meth:`~repro.core.vectorized.VectorizedSystem.set_arrival_rates`
  (no pair-array rebuild, no model copy);
* the convex fixed-``z`` Prob-Pi solve (at the ``z`` carried from the
  previous bin) starts from the previous bin's iterate and projects over a
  **reduced active set** (:class:`ActiveSetProjection`): at a converged
  solution the vast majority of ``pi`` coordinates sit exactly on a box
  bound, and under a rate perturbation almost all of them stay there, so the
  projection -- the dominant per-iteration cost, ~40 bisection evaluations
  each touching every coordinate -- only pays for the few coordinates that
  were strictly interior;
* a short full-space verification run then confirms the frozen coordinates
  were in fact optimal; if it still finds descent beyond a small budget, the
  resolver falls back to a full-space solve from the current iterate
  (``fallback=True`` in the report) -- the parity guarantee is never
  sacrificed for speed;
* ``z`` is then refreshed and the alternation continues for a few cheap
  warm sweeps until the objective stops moving;
* the fractional allocation is rounded by largest-remainder apportionment
  and the scheduling probabilities re-solved with every file's total pinned
  to its integral target, which is exactly the "equivalent code" form the
  lazy cache update consumes.

**Convergence parity.** Warm and cold resolves share the *same* carried
``z``, so their first fixed-``z`` solves minimize the *same* convex problem;
by convexity the optimal value is unique and both solvers reach it to
solver tolerance.  ``ResolveReport.relaxed_objective`` records that value
and is the quantity the parity gate (warm vs cold agreement to <= 1e-6
relative) is asserted on; it is deliberately *not* the end-of-alternation
objective, because the ``z``-alternation is biconvex and warm/cold paths may
settle in different (equally valid) local alternation fixed points.

**Operating envelope.** The implemented fixed-``z`` objective clips each
pair's load at the queueing-stability boundary, so it is convex only on the
stable region.  The guarantee therefore assumes the cold comparator's
starting point -- ``initial_pi()``, i.e. the no-cache placement, the most
heavily loaded feasible point -- is itself queueing-stable.  At operating
points hot enough to saturate servers from that start, FISTA can jam at
spurious stationary points of the clipped surface and the cold baseline is
no longer meaningful (the paper's latency bound diverges there anyway).
Under adversarial rate jumps *within* the envelope the clipped landscape
can also expose a cluster of distinct stationary points ~1e-5 apart in
relative objective; warm and cold each converge, occasionally to different
members, so adversarial tests document that looser bound while the 1e-6
gate is enforced on steady-state perturbations (tests/control and the
``BENCH_online_resolve`` gate).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.algorithm import build_placement
from repro.core.model import StorageSystemModel
from repro.core.placement import CachePlacement
from repro.core.prob_pi import solve_fista
from repro.core.vectorized import VectorizedSystem, _piecewise_clip_sum_inverse
from repro.exceptions import ControlError, InfeasibleError
from repro.kernels import segment_sum


class ActiveSetProjection:
    """Euclidean projection onto the Prob-Pi polytope over a reduced set.

    Coordinates of the reference solution that sit on a box bound
    (``pi <= epsilon`` or ``pi >= 1 - epsilon``) are frozen at their
    rounded values; the projection then only solves for the free
    coordinates, mirroring :meth:`VectorizedSystem.project` (coupling
    constraint dualised with a bisected multiplier ``nu``, per-file shifts
    via the exact segmented breakpoint solver) over arrays that are
    typically 10-20x smaller.  Instances are callables mapping a full pair
    vector to its projection onto ``{x : x[frozen] = fixed, x[free] in the
    reduced polytope}``, which is the shape the ``projector`` hook of
    :func:`repro.core.prob_pi.solve_fista` expects.
    """

    def __init__(
        self,
        system: VectorizedSystem,
        reference_pi: np.ndarray,
        epsilon: float = 1e-7,
    ):
        reference = np.asarray(reference_pi, dtype=float)
        if reference.shape != (system.num_pairs,):
            raise ControlError(
                f"reference_pi must have {system.num_pairs} entries"
            )
        self._system = system
        frozen = (reference <= epsilon) | (reference >= 1.0 - epsilon)
        self._frozen = frozen
        self._fixed_values = np.where(reference >= 0.5, 1.0, 0.0)
        self._fixed_values[~frozen] = 0.0
        self._free_index = np.flatnonzero(~frozen)
        self.usable = 0 < self._free_index.size < system.num_pairs
        if not self.usable:
            return
        # The free pairs of each file form one contiguous segment (pair
        # arrays are file-contiguous and free_index is sorted), so the
        # reduced per-file reductions run as reduceat over these offsets.
        free_files = system.pair_file[self._free_index]
        unique_files, inverse = np.unique(free_files, return_inverse=True)
        counts = np.bincount(inverse)
        self._segment_files = unique_files
        self._inverse = inverse
        self._counts = counts
        self._offsets = np.concatenate([[0], np.cumsum(counts)[:-1]]).astype(
            np.int64
        )
        fixed_sums = system.file_sums(np.where(frozen, self._fixed_values, 0.0))
        self._lower = np.zeros(unique_files.size)
        self._upper = np.clip(
            system.k_values[unique_files] - fixed_sums[unique_files],
            0.0,
            counts.astype(float),
        )
        frozen_total = float(self._fixed_values[frozen].sum())
        self._target_total = system.required_total() - frozen_total
        # Full-size template with the frozen values baked in; __call__
        # copies it and scatters the projected free coordinates.
        template = np.zeros(system.num_pairs)
        template[frozen] = self._fixed_values[frozen]
        self._template = template

    @property
    def fraction_frozen(self) -> float:
        """Fraction of pair coordinates frozen at a box bound."""
        return 1.0 - self._free_index.size / self._system.num_pairs

    def __call__(self, point: np.ndarray) -> np.ndarray:
        free = self._project_free(point[self._free_index])
        out = self._template.copy()
        out[self._free_index] = free
        return out

    # ------------------------------------------------------------------
    # Reduced-space projection (mirrors VectorizedSystem.project)
    # ------------------------------------------------------------------

    def _segment_sums(self, values: np.ndarray) -> np.ndarray:
        return segment_sum(values, self._offsets)

    def _project_free(self, values: np.ndarray) -> np.ndarray:
        target_total = self._target_total
        work = np.empty_like(values)

        def projected_total(nu: float) -> float:
            np.add(values, nu, out=work)
            np.clip(work, 0.0, 1.0, out=work)
            sums = self._segment_sums(work)
            np.clip(sums, self._lower, self._upper, out=sums)
            return float(sums.sum())

        if target_total <= projected_total(0.0) + 1e-9:
            return self._per_file_projection(values)

        max_total = float(self._upper.sum())
        if target_total > max_total + 1e-9:
            raise InfeasibleError(
                "active-set projection cannot meet the cache-capacity "
                f"constraint: requires total {target_total:.3f} over the free "
                f"coordinates but their bounds only allow {max_total:.3f}"
            )
        nu_low, nu_high = 0.0, 2.0
        for _ in range(40):
            if projected_total(nu_high) >= target_total - 1e-9:
                break
            nu_high *= 2.0
        while nu_high - nu_low > 1e-11 * max(1.0, nu_high):
            nu_mid = 0.5 * (nu_low + nu_high)
            if projected_total(nu_mid) < target_total:
                nu_low = nu_mid
            else:
                nu_high = nu_mid
        return self._per_file_projection(values + nu_high)

    def _per_file_projection(self, values: np.ndarray) -> np.ndarray:
        projected = np.clip(values, 0.0, 1.0)
        sums = self._segment_sums(projected)
        below = sums < self._lower - 1e-12
        above = sums > self._upper + 1e-12
        needs_shift = below | above
        if not np.any(needs_shift):
            return projected
        targets = np.where(below, self._lower, self._upper)
        member = needs_shift[self._inverse]
        violating = np.flatnonzero(needs_shift)
        segment_counts = self._counts[violating]
        segment_targets = np.clip(
            targets[violating], 0.0, segment_counts.astype(float)
        )
        theta = _piecewise_clip_sum_inverse(
            values[member], segment_counts, segment_targets
        )
        shift = np.zeros(needs_shift.size)
        shift[violating] = theta
        return np.clip(values + shift[self._inverse], 0.0, 1.0)


def round_allocation(system: VectorizedSystem, pi: np.ndarray) -> np.ndarray:
    """Largest-remainder apportionment of the fractional cache allocation.

    Floors every file's fractional allocation ``d_i = k_i - sum_j pi_{i,j}``
    and hands the remaining integral budget to the largest fractional parts
    (capped per file at ``k_i``), so the rounded total never exceeds either
    the cache capacity or the fractional total the solver chose.
    """
    allocation = np.clip(
        system.k_values - system.file_sums(pi), 0.0, system.k_values
    )
    base = np.floor(allocation + 1e-9)
    fractions = allocation - base
    budget = min(
        int(system.cache_capacity), int(np.floor(allocation.sum() + 1e-9))
    ) - int(base.sum())
    rounded = base.astype(np.int64)
    if budget > 0:
        can_grow = rounded < system.k_values.astype(np.int64)
        order = np.argsort(np.where(can_grow, fractions, -1.0))[::-1][:budget]
        rounded[order] += 1
    return rounded


@dataclass
class ResolveReport:
    """Outcome of one online re-solve."""

    bin_index: Optional[int]
    kind: str  # "bootstrap", "warm" or "cold"
    relaxed_objective: float  # fixed-z convex objective at the carried z
    objective: float  # objective of the final (integral) placement
    cached_chunks: np.ndarray  # integer per-file cache allocation
    iterations: int  # total FISTA iterations across all stages
    sweeps: int  # z-alternation sweeps after the first fixed-z solve
    seconds: float  # wall-clock of the whole resolve (excl. placement build)
    warm: bool
    fallback: bool = False  # warm active set rejected by verification
    fraction_frozen: float = 0.0
    placement: Optional[CachePlacement] = None
    pinned_pi: Optional[np.ndarray] = None  # scheduling probs at the rounding


class OnlineResolver:
    """Re-solves the placement for new rates, warm-started from the last bin.

    Parameters
    ----------
    model:
        The storage-system model (structure, service moments, capacity).
        Per-bin rates are applied to the compiled system directly; the
        model's own rates are only used by the bootstrap default.
    system:
        Optional precompiled system to reuse (rebound to ``model``).
    parity_rtol:
        Relative agreement required between the warm fixed-``z`` solve and
        a cold one; drives the verification fallback threshold.
    alternation_tolerance:
        Relative objective improvement below which the ``z``-alternation
        stops.
    max_sweeps:
        Cap on alternation sweeps per resolve.
    fista_iterations, fista_tolerance, check_window:
        Iteration cap and windowed-improvement stopping rule handed to
        :func:`~repro.core.prob_pi.solve_fista`.
    verify_iterations:
        Full-space FISTA iterations run after a reduced warm solve to
        certify the frozen active set.
    freeze_epsilon:
        Distance from a box bound below which a coordinate of the previous
        solution is frozen by :class:`ActiveSetProjection`.
    build_placements:
        Whether :meth:`resolve` assembles a full :class:`CachePlacement`
        (a per-file Python loop -- disable at paper scale and consume
        ``cached_chunks`` directly).
    """

    def __init__(
        self,
        model: StorageSystemModel,
        system: Optional[VectorizedSystem] = None,
        parity_rtol: float = 1e-6,
        alternation_tolerance: float = 1e-7,
        max_sweeps: int = 6,
        fista_iterations: int = 2000,
        fista_tolerance: float = 1e-10,
        check_window: int = 20,
        verify_iterations: int = 40,
        freeze_epsilon: float = 1e-7,
        build_placements: bool = True,
    ):
        if parity_rtol <= 0:
            raise ControlError("parity_rtol must be positive")
        if max_sweeps < 0:
            raise ControlError("max_sweeps must be non-negative")
        self._model = model
        self._system = (
            system.rebind(model) if system is not None else VectorizedSystem(model)
        )
        self._parity_rtol = float(parity_rtol)
        self._alternation_tolerance = float(alternation_tolerance)
        self._max_sweeps = int(max_sweeps)
        self._fista_iterations = int(fista_iterations)
        self._fista_tolerance = float(fista_tolerance)
        self._check_window = int(check_window)
        self._verify_iterations = int(verify_iterations)
        self._freeze_epsilon = float(freeze_epsilon)
        self._build_placements = bool(build_placements)
        # Carried state: the previous bin's relaxed iterate, its auxiliary
        # variables and the backtracked Lipschitz estimate.
        self._pi: Optional[np.ndarray] = None
        self._z: Optional[np.ndarray] = None
        self._lipschitz: float = 1.0

    @property
    def model(self) -> StorageSystemModel:
        """The underlying storage-system model."""
        return self._model

    @property
    def system(self) -> VectorizedSystem:
        """The compiled vectorised system (shared, mutated per resolve)."""
        return self._system

    @property
    def bootstrapped(self) -> bool:
        """Whether a first solve has produced carried state."""
        return self._pi is not None

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def bootstrap(
        self,
        arrival_rates: Optional[Sequence[float]] = None,
        bin_index: Optional[int] = None,
        build_placement: Optional[bool] = None,
    ) -> ResolveReport:
        """Full cold solve establishing the carried state.

        Defaults to the model's own (predicted) rates when none are given.
        """
        if arrival_rates is None:
            arrival_rates = [spec.arrival_rate for spec in self._model.files]
        report = self.resolve(
            arrival_rates,
            warm=False,
            commit=True,
            bin_index=bin_index,
            build_placement=build_placement,
        )
        report.kind = "bootstrap"
        return report

    def resolve(
        self,
        arrival_rates: Sequence[float],
        warm: bool = True,
        commit: bool = True,
        bin_index: Optional[int] = None,
        build_placement: Optional[bool] = None,
    ) -> ResolveReport:
        """Re-solve the placement for ``arrival_rates``.

        Parameters
        ----------
        warm:
            Start from the carried iterate over the reduced active set
            (falls back to cold when no state is carried yet).
        commit:
            Update the carried state with this solve's outcome.  Pass
            ``False`` to run a comparator (e.g. the cold arm of the parity
            gate) against the same carried state without perturbing it.
        """
        start = time.perf_counter()
        system = self._system
        system.set_arrival_rates(arrival_rates)
        lower = np.zeros(system.num_files)
        upper = system.k_values.copy()
        warm = bool(warm) and self._pi is not None

        if self._z is not None:
            z = self._z
        else:
            z = system.optimal_z(
                system.project(system.initial_pi(), lower, upper)
            )

        iterations = 0
        fallback = False
        fraction_frozen = 0.0
        lipschitz = self._lipschitz if warm else 1.0

        # ---- Stage 1: the convex fixed-z solve at the carried z.  This is
        # the problem warm and cold arms share; its optimal value is unique.
        if warm:
            projection = ActiveSetProjection(
                system, self._pi, epsilon=self._freeze_epsilon
            )
            if projection.usable:
                fraction_frozen = projection.fraction_frozen
                reduced = solve_fista(
                    system,
                    z,
                    lower,
                    upper,
                    warm_start=self._pi,
                    projector=projection,
                    max_iterations=self._fista_iterations,
                    tolerance=self._fista_tolerance,
                    check_window=self._check_window,
                    initial_lipschitz=lipschitz,
                )
                iterations += reduced.iterations
                # Full-space verification: certify the frozen coordinates.
                verified = solve_fista(
                    system,
                    z,
                    lower,
                    upper,
                    warm_start=reduced.pi,
                    max_iterations=self._verify_iterations,
                    tolerance=self._fista_tolerance,
                    check_window=self._check_window,
                    initial_lipschitz=reduced.lipschitz,
                )
                iterations += verified.iterations
                descent = reduced.objective - verified.objective
                budget = 0.01 * self._parity_rtol * max(
                    abs(verified.objective), 1.0
                )
                if descent > budget:
                    # The active set was wrong for the new rates: keep
                    # descending in full space until converged.
                    fallback = True
                    full = solve_fista(
                        system,
                        z,
                        lower,
                        upper,
                        warm_start=verified.pi,
                        max_iterations=self._fista_iterations,
                        tolerance=self._fista_tolerance,
                        check_window=self._check_window,
                        initial_lipschitz=verified.lipschitz,
                    )
                    iterations += full.iterations
                    result = full
                else:
                    result = verified
            else:
                warm = False
        if not warm:
            result = solve_fista(
                system,
                z,
                lower,
                upper,
                warm_start=system.initial_pi(),
                max_iterations=self._fista_iterations,
                tolerance=self._fista_tolerance,
                check_window=self._check_window,
                initial_lipschitz=1.0,
            )
            iterations += result.iterations

        pi = result.pi
        relaxed_objective = result.objective
        lipschitz = result.lipschitz

        # ---- Stage 2: alternation sweeps (refresh z, re-solve pi warm)
        # until the objective stops moving.
        previous = relaxed_objective
        sweeps = 0
        for _ in range(self._max_sweeps):
            z = system.optimal_z(pi)
            sweep = solve_fista(
                system,
                z,
                lower,
                upper,
                warm_start=pi,
                max_iterations=self._fista_iterations,
                tolerance=self._fista_tolerance,
                check_window=self._check_window,
                initial_lipschitz=lipschitz,
            )
            sweeps += 1
            iterations += sweep.iterations
            pi = sweep.pi
            lipschitz = sweep.lipschitz
            if abs(previous - sweep.objective) <= self._alternation_tolerance * max(
                abs(sweep.objective), 1.0
            ):
                previous = sweep.objective
                break
            previous = sweep.objective

        # ---- Stage 3: integral rounding (largest-remainder apportionment)
        # and the pinned re-solve of the scheduling probabilities.
        cached_chunks = round_allocation(system, pi)
        pinned_sums = system.k_values - cached_chunks.astype(float)
        pinned = solve_fista(
            system,
            z,
            pinned_sums,
            pinned_sums,
            warm_start=pi,
            max_iterations=self._fista_iterations,
            tolerance=self._fista_tolerance,
            check_window=self._check_window,
            initial_lipschitz=lipschitz,
        )
        iterations += pinned.iterations
        final_z = system.optimal_z(pinned.pi)
        objective = system.objective(pinned.pi, final_z)
        seconds = time.perf_counter() - start

        if commit:
            self._pi = pi
            self._z = z
            self._lipschitz = lipschitz

        report = ResolveReport(
            bin_index=bin_index,
            kind="warm" if warm else "cold",
            relaxed_objective=relaxed_objective,
            objective=objective,
            cached_chunks=cached_chunks,
            iterations=iterations,
            sweeps=sweeps,
            seconds=seconds,
            warm=warm,
            fallback=fallback,
            fraction_frozen=fraction_frozen,
            pinned_pi=pinned.pi,
        )
        should_build = (
            self._build_placements if build_placement is None else build_placement
        )
        if should_build:
            report.placement = build_placement_from_report(
                system, self._model, pinned.pi, final_z, report, bin_index
            )
        return report


def build_placement_from_report(
    system: VectorizedSystem,
    model: StorageSystemModel,
    pi: np.ndarray,
    z: np.ndarray,
    report: ResolveReport,
    bin_index: Optional[int],
) -> CachePlacement:
    """Assemble the :class:`CachePlacement` for a resolve's pinned iterate."""
    return build_placement(
        system,
        model,
        pi,
        z,
        time_bin=bin_index,
        cached_chunks=report.cached_chunks,
    )
