"""MDS property verification and code extension utilities.

Functional caching rests on a single structural claim: the ``d`` chunks
placed in the cache, together with the ``n`` chunks on the storage nodes,
form an ``(n + d, k)`` MDS code, so *any* ``k`` of the ``n + d`` chunks
recover the file.  This module provides the checks used by the test-suite
and by :class:`repro.erasure.functional.FunctionalCacheCoder` to validate
that claim for concrete codes and concrete chunk sets.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Sequence

from repro.erasure.matrix import GFMatrix
from repro.erasure.reed_solomon import CodedChunk, ReedSolomonCode
from repro.exceptions import ErasureCodeError


def is_mds(generator: GFMatrix, k: int) -> bool:
    """Return ``True`` when ``generator`` defines an MDS code of dimension ``k``.

    A generator matrix with ``k`` columns defines an MDS (maximum distance
    separable) code exactly when every ``k`` x ``k`` sub-matrix built from
    ``k`` of its rows is invertible.
    """
    if generator.cols != k:
        raise ErasureCodeError(
            f"generator has {generator.cols} columns, expected k={k}"
        )
    if generator.rows < k:
        return False
    return generator.every_k_rows_invertible(k)


def code_is_mds(code: ReedSolomonCode, extension: int = 0) -> bool:
    """Check the MDS property for a Reed-Solomon code plus ``extension`` rows.

    Parameters
    ----------
    code:
        The base ``(n, k)`` code.
    extension:
        Number of functional-cache rows to include beyond the ``n`` stored
        chunks; the check then covers the ``(n + extension, k)`` code.
    """
    if extension < 0 or extension > code.max_extension:
        raise ErasureCodeError(
            f"extension must lie in [0, {code.max_extension}], got {extension}"
        )
    rows = list(range(code.n + extension))
    sub_generator = code.generator.submatrix(rows)
    return is_mds(sub_generator, code.k)


def recoverable_subsets(code: ReedSolomonCode, extension: int = 0) -> Iterable[tuple[int, ...]]:
    """Iterate over all ``k``-subsets of chunk indices of the extended code."""
    total = code.n + extension
    return combinations(range(total), code.k)


def verify_recoverability(
    code: ReedSolomonCode,
    payload: bytes,
    chunks: Sequence[CodedChunk],
    subset_size: int | None = None,
) -> bool:
    """Verify that every ``k``-subset of ``chunks`` decodes back to ``payload``.

    This is the operational (data-level) counterpart of :func:`is_mds`: it
    actually decodes from every combination and compares bytes.

    Parameters
    ----------
    code:
        The code the chunks were produced with.
    payload:
        The original file contents.
    chunks:
        Candidate chunks (storage chunks and/or cached functional chunks).
    subset_size:
        Size of the subsets to test; defaults to ``code.k``.
    """
    subset_size = code.k if subset_size is None else subset_size
    if subset_size < code.k:
        raise ErasureCodeError(
            f"subsets of size {subset_size} can never decode a k={code.k} code"
        )
    if len(chunks) < subset_size:
        return False
    for subset in combinations(chunks, subset_size):
        decoded = code.decode(subset, original_size=len(payload))
        if decoded != payload:
            return False
    return True


def minimum_distance(generator: GFMatrix, k: int) -> int:
    """Return the minimum Hamming distance of the code defined by ``generator``.

    For an MDS code of length ``n`` and dimension ``k`` the Singleton bound
    is met with equality: ``d_min = n - k + 1``.  The computation here uses
    the rank characterisation -- the minimum distance equals ``n - r + 1``
    where ``r`` is the largest number such that every ``n - r + 1`` rows have
    full column rank... in practice we simply search for the largest set of
    rows whose removal keeps the code decodable.
    """
    n = generator.rows
    if generator.cols != k:
        raise ErasureCodeError(
            f"generator has {generator.cols} columns, expected k={k}"
        )
    # The code can tolerate e erasures iff every (n - e)-subset of rows has
    # rank k.  d_min = max tolerable erasures + 1.
    max_erasures = 0
    for erasures in range(0, n - k + 1):
        tolerable = True
        for kept in combinations(range(n), n - erasures):
            if generator.submatrix(kept).rank() != k:
                tolerable = False
                break
        if tolerable:
            max_erasures = erasures
        else:
            break
    return max_erasures + 1


def singleton_bound(n: int, k: int) -> int:
    """Return the Singleton bound ``n - k + 1`` on minimum distance."""
    if k <= 0 or n < k:
        raise ErasureCodeError(f"invalid code parameters ({n}, {k})")
    return n - k + 1
