"""Functional cache chunk construction.

This module implements the core coding idea of the Sprout paper: for a file
stored with an ``(n, k)`` MDS code, construct ``d`` *new* coded chunks to
place in the cache so that the combined set of ``n + d`` chunks is itself an
``(n + d, k)`` MDS code.  A read can then be served from the ``d`` cached
chunks plus *any* ``k - d`` of the ``n`` storage chunks, which is exactly the
flexibility the latency optimization exploits.

The construction follows Section III of the paper: chunks are drawn from an
``(n + k, k)`` master code whose first ``n`` rows are the chunks placed on the
storage nodes and whose remaining ``k`` rows are reserved for the cache.
Because every ``k`` rows of the master generator are linearly independent,
any prefix of the reserved rows together with the storage rows forms an MDS
code, irrespective of ``d <= k``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.erasure.mds import code_is_mds
from repro.erasure.reed_solomon import CodedChunk, ReedSolomonCode
from repro.exceptions import ErasureCodeError, InsufficientChunksError


@dataclass
class CachedFile:
    """The cache-resident state of one file under functional caching.

    Attributes
    ----------
    file_id:
        Identifier of the file.
    d:
        Number of functional chunks currently in the cache.
    chunks:
        The cached functional chunks (extension rows ``n .. n+d-1``).
    original_size:
        Size of the original payload in bytes, needed to strip padding on
        reconstruction.
    """

    file_id: str
    d: int
    chunks: List[CodedChunk] = field(default_factory=list)
    original_size: Optional[int] = None

    @property
    def cached_bytes(self) -> int:
        """Total number of payload bytes held in the cache for this file."""
        return sum(chunk.size for chunk in self.chunks)


class FunctionalCacheCoder:
    """Builds and serves functional cache chunks for a single file.

    Parameters
    ----------
    code:
        The ``(n, k)`` Reed-Solomon code the file is stored with.  Its
        ``max_extension`` must be at least the largest ``d`` that will ever
        be cached (the paper always uses ``max_extension = k``).
    file_id:
        Identifier used in the returned :class:`CachedFile` records.
    """

    def __init__(self, code: ReedSolomonCode, file_id: str = "file"):
        self._code = code
        self._file_id = file_id

    @property
    def code(self) -> ReedSolomonCode:
        """The underlying storage code."""
        return self._code

    @property
    def file_id(self) -> str:
        """Identifier of the file this coder serves."""
        return self._file_id

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def storage_chunks(self, payload: bytes) -> List[CodedChunk]:
        """Encode ``payload`` into the ``n`` chunks kept on storage nodes."""
        return self._code.encode(payload)

    def build_cache_chunks(self, payload: bytes, d: int) -> CachedFile:
        """Construct ``d`` functional chunks for the cache.

        The chunks are rows ``n .. n+d-1`` of the master ``(n + k, k)`` code,
        so together with the storage chunks they form an ``(n + d, k)`` MDS
        code.
        """
        if d < 0 or d > self._code.max_extension:
            raise ErasureCodeError(
                f"d must lie in [0, {self._code.max_extension}], got {d}"
            )
        chunks = self._code.extension_chunks(payload, d)
        return CachedFile(
            file_id=self._file_id,
            d=d,
            chunks=chunks,
            original_size=len(payload),
        )

    def build_cache_chunks_from_chunks(
        self, available: Sequence[CodedChunk], d: int, original_size: Optional[int] = None
    ) -> CachedFile:
        """Construct cache chunks when only coded chunks (not the payload) exist.

        This mirrors the update path described in Section III: when a file's
        cache allocation grows in a new time bin, the file is reconstructed
        on its next access and the new functional chunks are generated from
        the decoded content.
        """
        payload = self._code.decode(available, original_size=original_size)
        cached = self.build_cache_chunks(payload, d)
        if original_size is not None:
            cached.original_size = original_size
        return cached

    def resize_cache_allocation(
        self, cached: CachedFile, new_d: int, payload: Optional[bytes] = None
    ) -> CachedFile:
        """Shrink or grow a file's cache allocation to ``new_d`` chunks.

        Shrinking simply drops the highest-index chunks (no network traffic,
        as the paper notes).  Growing requires the payload (or is deferred
        until the next access, which callers model by passing ``payload``
        when it becomes available).
        """
        if new_d < 0 or new_d > self._code.max_extension:
            raise ErasureCodeError(
                f"new_d must lie in [0, {self._code.max_extension}], got {new_d}"
            )
        if new_d <= cached.d:
            return CachedFile(
                file_id=cached.file_id,
                d=new_d,
                chunks=list(cached.chunks[:new_d]),
                original_size=cached.original_size,
            )
        if payload is None:
            raise ErasureCodeError(
                "growing a cache allocation requires the file payload "
                "(functional chunks are generated on the next access)"
            )
        return self.build_cache_chunks(payload, new_d)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def required_storage_chunks(self, d: int) -> int:
        """Number of storage chunks needed to serve a read with ``d`` cached."""
        if d < 0:
            raise ErasureCodeError("d must be non-negative")
        return max(self._code.k - d, 0)

    def reconstruct(
        self,
        cached: CachedFile,
        storage_chunks: Sequence[CodedChunk],
        original_size: Optional[int] = None,
    ) -> bytes:
        """Reconstruct the file from cached chunks plus storage chunks.

        Parameters
        ----------
        cached:
            The cache-resident functional chunks.
        storage_chunks:
            Any ``k - d`` (or more) distinct chunks fetched from storage
            nodes.
        original_size:
            Payload size; defaults to the size recorded in ``cached``.
        """
        needed = self.required_storage_chunks(cached.d)
        distinct_storage = {chunk.index: chunk for chunk in storage_chunks}
        if len(distinct_storage) < needed:
            raise InsufficientChunksError(
                f"need at least {needed} distinct storage chunks, "
                f"got {len(distinct_storage)}"
            )
        size = original_size if original_size is not None else cached.original_size
        combined = list(cached.chunks) + list(distinct_storage.values())
        return self._code.decode(combined, original_size=size)

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def verify_extended_code_is_mds(self, d: int) -> bool:
        """Check that the ``(n + d, k)`` extended code is MDS."""
        return code_is_mds(self._code, extension=d)


def exact_cache_chunks(
    storage_chunks: Sequence[CodedChunk], d: int
) -> List[CodedChunk]:
    """Return the ``d`` chunks an *exact* caching policy would cache.

    Exact caching (the strawman Sprout improves upon) copies the first ``d``
    storage chunks verbatim into the cache; the corresponding storage nodes
    can then no longer contribute towards the remaining ``k - d`` chunks of a
    read.  This helper is used by the baselines and by tests comparing the
    two policies.
    """
    if d < 0 or d > len(storage_chunks):
        raise ErasureCodeError(
            f"d must lie in [0, {len(storage_chunks)}], got {d}"
        )
    return list(storage_chunks[:d])


def functional_vs_exact_candidate_nodes(n: int, k: int, d: int) -> Dict[str, int]:
    """Count candidate storage nodes for a read under both caching policies.

    Under functional caching any ``k - d`` of the ``n`` storage nodes may be
    used; under exact caching the ``d`` nodes whose chunks were copied are
    useless, leaving ``n - d`` candidates.  The returned dictionary records
    both counts -- the scheduling-flexibility advantage the paper's example in
    Section III illustrates.
    """
    if d < 0 or d > k or k > n:
        raise ErasureCodeError(f"invalid parameters n={n}, k={k}, d={d}")
    return {
        "required": k - d,
        "functional_candidates": n,
        "exact_candidates": n - d,
    }
