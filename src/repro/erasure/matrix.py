"""Dense matrices over GF(2^8).

The Reed-Solomon codec and the MDS verification utilities need a small
linear-algebra toolbox over GF(2^8): matrix multiplication, Gauss-Jordan
inversion, rank computation, and construction of Vandermonde / Cauchy
generator matrices.  Matrices are stored as ``numpy.uint8`` arrays.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.erasure.galois import GF256
from repro.exceptions import GaloisFieldError


class GFMatrix:
    """A matrix with entries in GF(2^8).

    Parameters
    ----------
    data:
        A 2-D array-like of integers in ``[0, 255]``.
    """

    def __init__(self, data: Sequence[Sequence[int]] | np.ndarray):
        array = np.asarray(data, dtype=np.int64)
        if array.ndim != 2:
            raise GaloisFieldError("GFMatrix requires a 2-D array")
        if array.size and (array.min() < 0 or array.max() > 255):
            raise GaloisFieldError("GFMatrix entries must lie in [0, 255]")
        self._data = array.astype(np.uint8)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def data(self) -> np.ndarray:
        """Return the underlying ``uint8`` array (a copy)."""
        return self._data.copy()

    @property
    def shape(self) -> tuple[int, int]:
        """Return the matrix shape ``(rows, cols)``."""
        return tuple(self._data.shape)  # type: ignore[return-value]

    @property
    def rows(self) -> int:
        """Number of rows."""
        return self._data.shape[0]

    @property
    def cols(self) -> int:
        """Number of columns."""
        return self._data.shape[1]

    def __getitem__(self, index) -> int | np.ndarray:
        return self._data[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GFMatrix):
            return NotImplemented
        return self.shape == other.shape and bool(np.all(self._data == other._data))

    def __hash__(self) -> int:  # pragma: no cover - matrices used as values
        return hash(self._data.tobytes())

    def __repr__(self) -> str:
        return f"GFMatrix({self._data.tolist()!r})"

    def copy(self) -> "GFMatrix":
        """Return a deep copy of this matrix."""
        return GFMatrix(self._data.copy())

    def row(self, index: int) -> List[int]:
        """Return row ``index`` as a list of ints."""
        return [int(value) for value in self._data[index]]

    def submatrix(self, row_indices: Sequence[int]) -> "GFMatrix":
        """Return the matrix restricted to the given rows (in order)."""
        return GFMatrix(self._data[list(row_indices), :])

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def identity(cls, size: int) -> "GFMatrix":
        """Return the ``size`` x ``size`` identity matrix."""
        return cls(np.eye(size, dtype=np.uint8))

    @classmethod
    def zeros(cls, rows: int, cols: int) -> "GFMatrix":
        """Return a ``rows`` x ``cols`` zero matrix."""
        return cls(np.zeros((rows, cols), dtype=np.uint8))

    @classmethod
    def vandermonde(cls, rows: int, cols: int) -> "GFMatrix":
        """Return a ``rows`` x ``cols`` Vandermonde matrix over GF(2^8).

        Row ``i`` is ``[1, x_i, x_i^2, ...]`` with ``x_i = i + 1`` so that all
        evaluation points are distinct and non-zero.  Any ``cols`` rows of
        such a matrix are linearly independent provided ``rows <= 255``.
        """
        if rows > 255:
            raise GaloisFieldError(
                "a GF(2^8) Vandermonde matrix supports at most 255 rows"
            )
        matrix = np.zeros((rows, cols), dtype=np.uint8)
        for row_index in range(rows):
            point = row_index + 1
            for col_index in range(cols):
                matrix[row_index, col_index] = GF256.power(point, col_index)
        return cls(matrix)

    @classmethod
    def cauchy(cls, rows: int, cols: int) -> "GFMatrix":
        """Return a ``rows`` x ``cols`` Cauchy matrix over GF(2^8).

        Entry ``(i, j)`` is ``1 / (x_i + y_j)`` with disjoint point sets
        ``x_i = i`` and ``y_j = rows + j``.  Every square sub-matrix of a
        Cauchy matrix is invertible, which makes it a convenient generator
        for MDS codes.
        """
        if rows + cols > 256:
            raise GaloisFieldError(
                "a GF(2^8) Cauchy matrix requires rows + cols <= 256"
            )
        matrix = np.zeros((rows, cols), dtype=np.uint8)
        for row_index in range(rows):
            for col_index in range(cols):
                denominator = GF256.add(row_index, rows + col_index)
                matrix[row_index, col_index] = GF256.inverse(denominator)
        return cls(matrix)

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------

    def multiply(self, other: "GFMatrix") -> "GFMatrix":
        """Return the matrix product ``self @ other`` over GF(2^8)."""
        if self.cols != other.rows:
            raise GaloisFieldError(
                f"cannot multiply {self.shape} by {other.shape}"
            )
        result = np.zeros((self.rows, other.cols), dtype=np.uint8)
        for i in range(self.rows):
            for j in range(other.cols):
                accumulator = 0
                for idx in range(self.cols):
                    accumulator ^= GF256.multiply(
                        int(self._data[i, idx]), int(other._data[idx, j])
                    )
                result[i, j] = accumulator
        return GFMatrix(result)

    def multiply_vector(self, vector: Sequence[int]) -> List[int]:
        """Return ``self @ vector`` where ``vector`` has ``cols`` entries."""
        if len(vector) != self.cols:
            raise GaloisFieldError(
                f"vector of length {len(vector)} incompatible with {self.shape}"
            )
        return [GF256.dot(self.row(i), vector) for i in range(self.rows)]

    def inverse(self) -> "GFMatrix":
        """Return the matrix inverse using Gauss-Jordan elimination.

        Raises
        ------
        GaloisFieldError
            If the matrix is not square or is singular.
        """
        if self.rows != self.cols:
            raise GaloisFieldError("only square matrices can be inverted")
        size = self.rows
        augmented = np.concatenate(
            [self._data.astype(np.int64), np.eye(size, dtype=np.int64)], axis=1
        )
        for pivot_col in range(size):
            pivot_row = None
            for candidate in range(pivot_col, size):
                if augmented[candidate, pivot_col] != 0:
                    pivot_row = candidate
                    break
            if pivot_row is None:
                raise GaloisFieldError("matrix is singular and cannot be inverted")
            if pivot_row != pivot_col:
                augmented[[pivot_col, pivot_row]] = augmented[[pivot_row, pivot_col]]
            pivot_value = int(augmented[pivot_col, pivot_col])
            pivot_inverse = GF256.inverse(pivot_value)
            for col in range(2 * size):
                augmented[pivot_col, col] = GF256.multiply(
                    int(augmented[pivot_col, col]), pivot_inverse
                )
            for row in range(size):
                if row == pivot_col:
                    continue
                factor = int(augmented[row, pivot_col])
                if factor == 0:
                    continue
                for col in range(2 * size):
                    augmented[row, col] ^= GF256.multiply(
                        factor, int(augmented[pivot_col, col])
                    )
        return GFMatrix(augmented[:, size:])

    def rank(self) -> int:
        """Return the rank of the matrix over GF(2^8)."""
        working = self._data.astype(np.int64).copy()
        rank = 0
        pivot_row = 0
        for col in range(self.cols):
            pivot = None
            for row in range(pivot_row, self.rows):
                if working[row, col] != 0:
                    pivot = row
                    break
            if pivot is None:
                continue
            if pivot != pivot_row:
                working[[pivot_row, pivot]] = working[[pivot, pivot_row]]
            pivot_inverse = GF256.inverse(int(working[pivot_row, col]))
            for c in range(self.cols):
                working[pivot_row, c] = GF256.multiply(
                    int(working[pivot_row, c]), pivot_inverse
                )
            for row in range(self.rows):
                if row == pivot_row:
                    continue
                factor = int(working[row, col])
                if factor == 0:
                    continue
                for c in range(self.cols):
                    working[row, c] ^= GF256.multiply(
                        factor, int(working[pivot_row, c])
                    )
            pivot_row += 1
            rank += 1
            if pivot_row == self.rows:
                break
        return rank

    def is_invertible(self) -> bool:
        """Return ``True`` when the matrix is square and full-rank."""
        return self.rows == self.cols and self.rank() == self.rows

    def every_k_rows_invertible(self, k: int) -> bool:
        """Check that every choice of ``k`` rows forms an invertible matrix.

        This is the defining property of the generator matrix of an MDS
        code.  The check is combinatorial and intended for the small code
        parameters used throughout the paper (n + k well below 20).
        """
        from itertools import combinations

        if self.cols != k:
            raise GaloisFieldError(
                f"matrix has {self.cols} columns; expected exactly k={k}"
            )
        for rows in combinations(range(self.rows), k):
            if self.submatrix(rows).rank() != k:
                return False
        return True
