"""Systematic Reed-Solomon codes over GF(2^8).

The Sprout paper stores every file with an ``(n_i, k_i)`` maximum-distance-
separable (MDS) code and constructs functional cache chunks by drawing extra
rows from an ``(n_i + k_i, k_i)`` *master* code (Section III).  This module
provides the codec used for both purposes:

* split a file into ``k`` equal-size data chunks,
* encode them into ``n`` coded chunks using a systematic generator matrix
  whose every ``k`` x ``k`` sub-matrix is invertible (Cauchy construction,
  with Vandermonde available as an alternative),
* decode the original file from *any* ``k`` of the coded chunks,
* produce additional coded chunks ("extension rows") on demand, which is
  exactly what functional caching needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.erasure.galois import GF256
from repro.erasure.matrix import GFMatrix
from repro.exceptions import ErasureCodeError, InsufficientChunksError


@dataclass(frozen=True)
class CodedChunk:
    """A single coded chunk of a file.

    Attributes
    ----------
    index:
        Global row index of the chunk in the (extended) generator matrix.
        Indices ``0..k-1`` are the systematic (data) chunks, ``k..n-1`` the
        parity chunks stored on the remaining storage nodes, and indices
        ``>= n`` are extension chunks (used as functional cache content).
    data:
        The chunk payload as a ``numpy.uint8`` array.
    """

    index: int
    data: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "data", np.asarray(self.data, dtype=np.uint8))

    @property
    def size(self) -> int:
        """Chunk payload size in bytes."""
        return int(self.data.size)


class ReedSolomonCode:
    """A systematic ``(n, k)`` Reed-Solomon code over GF(2^8).

    Parameters
    ----------
    n:
        Total number of stored coded chunks.
    k:
        Number of data chunks; any ``k`` coded chunks reconstruct the file.
    max_extension:
        Number of additional rows kept in the master generator beyond ``n``.
        The paper constructs an ``(n + k, k)`` master code so that up to
        ``k`` functional chunks can live in the cache; ``max_extension``
        therefore defaults to ``k``.
    construction:
        Either ``"cauchy"`` (default) or ``"vandermonde"``.
    """

    def __init__(
        self,
        n: int,
        k: int,
        max_extension: Optional[int] = None,
        construction: str = "cauchy",
    ):
        if k <= 0:
            raise ErasureCodeError(f"k must be positive, got {k}")
        if n < k:
            raise ErasureCodeError(f"n ({n}) must be at least k ({k})")
        if max_extension is None:
            max_extension = k
        if max_extension < 0:
            raise ErasureCodeError("max_extension must be non-negative")
        total_rows = n + max_extension
        if construction == "cauchy":
            if total_rows + k > 256:
                raise ErasureCodeError(
                    "Cauchy construction requires n + max_extension + k <= 256"
                )
        elif construction == "vandermonde":
            if total_rows > 255:
                raise ErasureCodeError(
                    "Vandermonde construction requires n + max_extension <= 255"
                )
        else:
            raise ErasureCodeError(
                f"unknown construction {construction!r}; "
                "expected 'cauchy' or 'vandermonde'"
            )
        self._n = n
        self._k = k
        self._max_extension = max_extension
        self._construction = construction
        self._generator = self._build_systematic_generator(total_rows)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build_systematic_generator(self, total_rows: int) -> GFMatrix:
        """Build a systematic generator whose top ``k`` rows are identity."""
        k = self._k
        if self._construction == "cauchy":
            # A Cauchy matrix has every square sub-matrix invertible, so the
            # stacked [I; C] matrix has every k x k sub-matrix invertible as
            # long as the Cauchy block rows are pairwise independent with any
            # identity rows -- which holds because any mixed selection forms a
            # (generalised) Cauchy sub-matrix.
            parity_rows = total_rows - k
            if parity_rows > 0:
                cauchy_block = GFMatrix.cauchy(parity_rows, k).data
            else:
                cauchy_block = np.zeros((0, k), dtype=np.uint8)
            generator = np.concatenate(
                [np.eye(k, dtype=np.uint8), cauchy_block], axis=0
            )
            return GFMatrix(generator)
        # Vandermonde: build a (total_rows x k) Vandermonde matrix, then apply
        # column operations so that the top k x k block becomes the identity.
        # Column operations preserve the "every k rows invertible" property.
        vandermonde = GFMatrix.vandermonde(total_rows, k)
        top_block = GFMatrix(vandermonde.data[:k, :])
        transform = top_block.inverse()
        return vandermonde.multiply(transform)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of coded chunks stored on storage nodes."""
        return self._n

    @property
    def k(self) -> int:
        """Number of data chunks required for reconstruction."""
        return self._k

    @property
    def max_extension(self) -> int:
        """Maximum number of extension (cache) rows available."""
        return self._max_extension

    @property
    def construction(self) -> str:
        """Name of the generator construction used."""
        return self._construction

    @property
    def generator(self) -> GFMatrix:
        """The full ``(n + max_extension) x k`` systematic generator matrix."""
        return self._generator.copy()

    def generator_row(self, index: int) -> List[int]:
        """Return the generator row for chunk ``index``."""
        if not 0 <= index < self._n + self._max_extension:
            raise ErasureCodeError(
                f"chunk index {index} outside [0, {self._n + self._max_extension})"
            )
        return self._generator.row(index)

    @property
    def redundancy_factor(self) -> float:
        """Storage overhead ``n / k`` of the base code."""
        return self._n / self._k

    def __repr__(self) -> str:
        return (
            f"ReedSolomonCode(n={self._n}, k={self._k}, "
            f"max_extension={self._max_extension}, "
            f"construction={self._construction!r})"
        )

    # ------------------------------------------------------------------
    # Encoding / decoding
    # ------------------------------------------------------------------

    def split_file(self, payload: bytes) -> np.ndarray:
        """Split ``payload`` into a ``k`` x ``chunk_size`` byte matrix.

        The payload is zero-padded so that its length is a multiple of ``k``.
        """
        data = np.frombuffer(payload, dtype=np.uint8)
        chunk_size = -(-data.size // self._k) if data.size else 1
        padded = np.zeros(self._k * chunk_size, dtype=np.uint8)
        padded[: data.size] = data
        return padded.reshape(self._k, chunk_size)

    def encode(self, payload: bytes, indices: Optional[Sequence[int]] = None) -> List[CodedChunk]:
        """Encode ``payload`` into coded chunks.

        Parameters
        ----------
        payload:
            Raw file contents.
        indices:
            Which chunk indices to produce.  Defaults to ``range(n)`` (the
            chunks stored on the storage nodes).
        """
        data_matrix = self.split_file(payload)
        return self.encode_matrix(data_matrix, indices)

    def encode_matrix(
        self, data_matrix: np.ndarray, indices: Optional[Sequence[int]] = None
    ) -> List[CodedChunk]:
        """Encode a pre-split ``k`` x ``chunk_size`` data matrix."""
        data_matrix = np.asarray(data_matrix, dtype=np.uint8)
        if data_matrix.ndim != 2 or data_matrix.shape[0] != self._k:
            raise ErasureCodeError(
                f"data matrix must have exactly k={self._k} rows, "
                f"got shape {data_matrix.shape}"
            )
        if indices is None:
            indices = range(self._n)
        chunks: List[CodedChunk] = []
        for index in indices:
            row = np.asarray(self.generator_row(index), dtype=np.uint8).reshape(1, -1)
            coded = GF256.matmul(row, data_matrix)[0]
            chunks.append(CodedChunk(index=index, data=coded))
        return chunks

    def extension_chunks(self, payload: bytes, count: int) -> List[CodedChunk]:
        """Return ``count`` extension chunks (indices ``n .. n+count-1``).

        These are the functional cache chunks: together with the ``n`` stored
        chunks they form an ``(n + count, k)`` MDS code.
        """
        if count < 0 or count > self._max_extension:
            raise ErasureCodeError(
                f"count must lie in [0, {self._max_extension}], got {count}"
            )
        return self.encode(payload, indices=range(self._n, self._n + count))

    def decode(self, chunks: Sequence[CodedChunk], original_size: Optional[int] = None) -> bytes:
        """Reconstruct the file payload from any ``k`` distinct coded chunks.

        Parameters
        ----------
        chunks:
            At least ``k`` coded chunks with distinct indices.  Extra chunks
            are ignored (the first ``k`` distinct ones are used).
        original_size:
            If given, the returned payload is truncated to this many bytes
            (removing the zero padding added by :meth:`split_file`).
        """
        distinct: Dict[int, CodedChunk] = {}
        for chunk in chunks:
            distinct.setdefault(chunk.index, chunk)
        if len(distinct) < self._k:
            raise InsufficientChunksError(
                f"need at least k={self._k} distinct chunks, got {len(distinct)}"
            )
        selected = sorted(distinct.values(), key=lambda c: c.index)[: self._k]
        indices = [chunk.index for chunk in selected]
        for index in indices:
            if index >= self._n + self._max_extension:
                raise ErasureCodeError(f"chunk index {index} is not part of this code")
        widths = {chunk.size for chunk in selected}
        if len(widths) != 1:
            raise ErasureCodeError(
                f"chunks have inconsistent sizes: {sorted(widths)}"
            )
        sub_generator = self._generator.submatrix(indices)
        decode_matrix = sub_generator.inverse()
        stacked = np.stack([chunk.data for chunk in selected], axis=0)
        data_matrix = GF256.matmul(decode_matrix.data, stacked)
        payload = data_matrix.reshape(-1).tobytes()
        if original_size is not None:
            payload = payload[:original_size]
        return payload

    def repair_chunk(self, chunks: Sequence[CodedChunk], target_index: int) -> CodedChunk:
        """Regenerate the chunk at ``target_index`` from any ``k`` chunks.

        This mirrors functional repair: the regenerated chunk is bit-exact
        with the chunk originally produced for that index.
        """
        payload = self.decode(chunks)
        regenerated = self.encode(payload, indices=[target_index])
        return regenerated[0]
