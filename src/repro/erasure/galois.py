"""Arithmetic in the Galois field GF(2^8).

Reed-Solomon codes used by Sprout operate over GF(2^8), the field with 256
elements represented as bytes.  Addition is XOR; multiplication is polynomial
multiplication modulo the primitive polynomial ``x^8 + x^4 + x^3 + x^2 + 1``
(0x11D), the same polynomial used by the jerasure library that backs Ceph's
erasure-coded pools.

The implementation precomputes logarithm / anti-logarithm tables once at
import time, so every operation is a table lookup.  Vectorised helpers based
on numpy are provided for bulk chunk encoding.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro.exceptions import GaloisFieldError

#: Primitive polynomial for GF(2^8): x^8 + x^4 + x^3 + x^2 + 1.
PRIMITIVE_POLYNOMIAL = 0x11D

#: Order of the field (number of elements).
FIELD_SIZE = 256

#: Multiplicative generator used to build the log/exp tables.
GENERATOR = 2


def _build_tables() -> tuple[np.ndarray, np.ndarray]:
    """Build exponentiation and logarithm tables for GF(2^8).

    Returns
    -------
    tuple of numpy.ndarray
        ``(exp_table, log_table)`` where ``exp_table`` has 512 entries (the
        second half duplicates the first so that products of logs never need
        an explicit modulo) and ``log_table`` has 256 entries with
        ``log_table[0]`` unused.
    """
    exp_table = np.zeros(2 * FIELD_SIZE, dtype=np.uint8)
    log_table = np.zeros(FIELD_SIZE, dtype=np.int32)
    value = 1
    for power in range(FIELD_SIZE - 1):
        exp_table[power] = value
        log_table[value] = power
        value <<= 1
        if value & 0x100:
            value ^= PRIMITIVE_POLYNOMIAL
    for power in range(FIELD_SIZE - 1, 2 * FIELD_SIZE):
        exp_table[power] = exp_table[power - (FIELD_SIZE - 1)]
    return exp_table, log_table


_EXP_TABLE, _LOG_TABLE = _build_tables()


class GF256:
    """Static helpers implementing arithmetic in GF(2^8).

    All methods are classmethods / staticmethods; the class exists purely as
    a namespace so that callers write ``GF256.multiply(a, b)``.
    """

    #: Exponentiation table (generator powers), exposed for vectorised code.
    EXP_TABLE = _EXP_TABLE

    #: Logarithm table, exposed for vectorised code.
    LOG_TABLE = _LOG_TABLE

    order = FIELD_SIZE

    @staticmethod
    def _check_element(value: int) -> int:
        if not 0 <= value < FIELD_SIZE:
            raise GaloisFieldError(
                f"value {value!r} is not an element of GF(256)"
            )
        return int(value)

    @staticmethod
    def add(a: int, b: int) -> int:
        """Return ``a + b`` in GF(2^8) (bitwise XOR)."""
        return GF256._check_element(a) ^ GF256._check_element(b)

    @staticmethod
    def subtract(a: int, b: int) -> int:
        """Return ``a - b``; identical to addition in characteristic 2."""
        return GF256.add(a, b)

    @staticmethod
    def multiply(a: int, b: int) -> int:
        """Return the product ``a * b`` in GF(2^8)."""
        a = GF256._check_element(a)
        b = GF256._check_element(b)
        if a == 0 or b == 0:
            return 0
        return int(_EXP_TABLE[int(_LOG_TABLE[a]) + int(_LOG_TABLE[b])])

    @staticmethod
    def divide(a: int, b: int) -> int:
        """Return ``a / b`` in GF(2^8).

        Raises
        ------
        GaloisFieldError
            If ``b`` is zero.
        """
        a = GF256._check_element(a)
        b = GF256._check_element(b)
        if b == 0:
            raise GaloisFieldError("division by zero in GF(256)")
        if a == 0:
            return 0
        log_diff = int(_LOG_TABLE[a]) - int(_LOG_TABLE[b])
        return int(_EXP_TABLE[log_diff % (FIELD_SIZE - 1)])

    @staticmethod
    def inverse(a: int) -> int:
        """Return the multiplicative inverse of ``a``.

        Raises
        ------
        GaloisFieldError
            If ``a`` is zero (zero has no inverse).
        """
        a = GF256._check_element(a)
        if a == 0:
            raise GaloisFieldError("zero has no multiplicative inverse")
        return int(_EXP_TABLE[(FIELD_SIZE - 1) - int(_LOG_TABLE[a])])

    @staticmethod
    def power(base: int, exponent: int) -> int:
        """Return ``base ** exponent`` in GF(2^8).

        Negative exponents are supported for non-zero bases.
        """
        base = GF256._check_element(base)
        if base == 0:
            if exponent == 0:
                return 1
            if exponent < 0:
                raise GaloisFieldError("zero cannot be raised to a negative power")
            return 0
        log_value = (int(_LOG_TABLE[base]) * exponent) % (FIELD_SIZE - 1)
        return int(_EXP_TABLE[log_value])

    @staticmethod
    def dot(coefficients: Sequence[int], values: Sequence[int]) -> int:
        """Return the GF(2^8) inner product of two equal-length sequences."""
        if len(coefficients) != len(values):
            raise GaloisFieldError(
                "dot product requires sequences of equal length, got "
                f"{len(coefficients)} and {len(values)}"
            )
        accumulator = 0
        for coefficient, value in zip(coefficients, values):
            accumulator ^= GF256.multiply(coefficient, value)
        return accumulator

    # ------------------------------------------------------------------
    # Vectorised helpers operating on numpy uint8 arrays
    # ------------------------------------------------------------------

    @staticmethod
    def multiply_scalar_vector(scalar: int, vector: np.ndarray) -> np.ndarray:
        """Multiply every byte of ``vector`` by ``scalar`` in GF(2^8)."""
        scalar = GF256._check_element(scalar)
        vector = np.asarray(vector, dtype=np.uint8)
        if scalar == 0:
            return np.zeros_like(vector)
        if scalar == 1:
            return vector.copy()
        result = np.zeros_like(vector)
        nonzero = vector != 0
        logs = _LOG_TABLE[vector[nonzero].astype(np.int32)] + int(_LOG_TABLE[scalar])
        result[nonzero] = _EXP_TABLE[logs]
        return result

    @staticmethod
    def add_vectors(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Return the element-wise GF(2^8) sum (XOR) of two byte arrays."""
        a = np.asarray(a, dtype=np.uint8)
        b = np.asarray(b, dtype=np.uint8)
        if a.shape != b.shape:
            raise GaloisFieldError(
                f"cannot add vectors of shapes {a.shape} and {b.shape}"
            )
        return np.bitwise_xor(a, b)

    @staticmethod
    def matmul(matrix: np.ndarray, data: np.ndarray) -> np.ndarray:
        """Multiply a GF(2^8) ``matrix`` (rows x cols) by ``data`` (cols x width).

        Parameters
        ----------
        matrix:
            Coefficient matrix with entries in GF(2^8), shape ``(rows, cols)``.
        data:
            Byte matrix whose rows are data chunks, shape ``(cols, width)``.

        Returns
        -------
        numpy.ndarray
            Byte matrix of shape ``(rows, width)`` holding the coded chunks.
        """
        matrix = np.asarray(matrix, dtype=np.uint8)
        data = np.asarray(data, dtype=np.uint8)
        if matrix.ndim != 2 or data.ndim != 2:
            raise GaloisFieldError("matmul expects two 2-D arrays")
        if matrix.shape[1] != data.shape[0]:
            raise GaloisFieldError(
                f"dimension mismatch: matrix is {matrix.shape}, data is {data.shape}"
            )
        rows, _ = matrix.shape
        width = data.shape[1]
        result = np.zeros((rows, width), dtype=np.uint8)
        for row_index in range(rows):
            accumulator = np.zeros(width, dtype=np.uint8)
            for col_index, coefficient in enumerate(matrix[row_index]):
                if coefficient == 0:
                    continue
                accumulator = np.bitwise_xor(
                    accumulator,
                    GF256.multiply_scalar_vector(int(coefficient), data[col_index]),
                )
            result[row_index] = accumulator
        return result

    @staticmethod
    def elements() -> Iterable[int]:
        """Iterate over all 256 field elements."""
        return range(FIELD_SIZE)


def polynomial_evaluate(coefficients: Sequence[int], x: int) -> int:
    """Evaluate a polynomial with GF(2^8) ``coefficients`` at point ``x``.

    Coefficients are ordered from the constant term upwards, i.e.
    ``coefficients[i]`` multiplies ``x ** i``.  Horner's rule is used.
    """
    result = 0
    for coefficient in reversed(list(coefficients)):
        result = GF256.add(GF256.multiply(result, x), coefficient)
    return result


def vandermonde_row(x: int, length: int) -> List[int]:
    """Return the Vandermonde row ``[1, x, x^2, ..., x^(length-1)]``."""
    return [GF256.power(x, exponent) for exponent in range(length)]
