"""Erasure-coding substrate: GF(2^8) arithmetic, Reed-Solomon codes, and
functional cache chunk construction.

This package implements everything the Sprout paper needs from an erasure
coding layer:

* :mod:`repro.erasure.galois` -- arithmetic in GF(2^8).
* :mod:`repro.erasure.matrix` -- matrices over GF(2^8) (inverse, rank,
  sub-matrix invertibility).
* :mod:`repro.erasure.reed_solomon` -- a systematic (n, k) Reed-Solomon
  codec with encode / decode-from-any-k / chunk repair.
* :mod:`repro.erasure.mds` -- verification of the MDS property and code
  extension utilities.
* :mod:`repro.erasure.functional` -- construction of functional cache
  chunks: ``d`` new coded chunks that, together with the ``n`` storage
  chunks, form an (n + d, k) MDS code.
"""

from repro.erasure.galois import GF256
from repro.erasure.matrix import GFMatrix
from repro.erasure.reed_solomon import ReedSolomonCode
from repro.erasure.mds import is_mds, verify_recoverability
from repro.erasure.functional import FunctionalCacheCoder, CachedFile

__all__ = [
    "GF256",
    "GFMatrix",
    "ReedSolomonCode",
    "is_mds",
    "verify_recoverability",
    "FunctionalCacheCoder",
    "CachedFile",
]
