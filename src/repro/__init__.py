"""Sprout: functional caching for erasure-coded storage (ICDCS 2016 reproduction).

The package is organised as:

* :mod:`repro.api` -- **the public facade**: declarative scenarios,
  pluggable component registries and the experiment registry.
* :mod:`repro.erasure` -- GF(2^8) / Reed-Solomon substrate and functional
  cache chunk construction.
* :mod:`repro.queueing` -- service-time distributions, M/G/1 moments and the
  order-statistics latency bound (Lemma 1).
* :mod:`repro.core` -- the system model, the latency objective and
  Algorithm 1 (alternating minimization with integer rounding).
* :mod:`repro.scheduling` -- probabilistic request scheduling.
* :mod:`repro.simulation` -- the event and batch simulation engines.
* :mod:`repro.policies` -- the pluggable cache-policy layer (LRU, LFU,
  ARC, TTL, static functional) behind one protocol.
* :mod:`repro.baselines` -- LRU, exact-caching and static baselines.
* :mod:`repro.cluster` -- Ceph-like cluster emulation (equivalent-code pools,
  LRU cache tier, measured device latencies).
* :mod:`repro.workloads` -- the paper's workload tables and generators.
* :mod:`repro.exec` -- parallel sweep execution (``sweep_map`` over a
  process pool with deterministic per-point seeds) and the
  content-addressed scenario result cache.
* :mod:`repro.experiments` -- one registered experiment per table/figure.

Quickstart::

    from repro import Scenario, run_scenario

    result = run_scenario(Scenario(num_files=100, cache_capacity=50))
    print(result.summary())

Every figure/table of the paper is a registered experiment::

    from repro.api import run_experiment

    fig4 = run_experiment("fig4", scale="fast")
"""

from repro.core.algorithm import CacheOptimizer, optimize_cache_placement
from repro.core.model import FileSpec, StorageSystemModel
from repro.core.placement import CachePlacement
from repro.erasure.functional import FunctionalCacheCoder
from repro.erasure.reed_solomon import ReedSolomonCode
from repro.api.scenario import Scenario
from repro.api.session import RunResult, Session, run_scenario
from repro.api.experiments import get_experiment, register_experiment, run_experiment
from repro.api.registry import (
    register_baseline,
    register_engine,
    register_policy,
    register_solver,
    register_workload,
)
from repro.exec import ResultCache, sweep_map, sweep_scan
from repro.policies import ChunkCachingPolicy

__version__ = "1.5.0"

__all__ = [
    # facade
    "Scenario",
    "Session",
    "RunResult",
    "run_scenario",
    "run_experiment",
    "get_experiment",
    "register_solver",
    "register_engine",
    "register_baseline",
    "register_workload",
    "register_policy",
    "register_experiment",
    "ChunkCachingPolicy",
    # parallel execution + result cache
    "sweep_map",
    "sweep_scan",
    "ResultCache",
    # core building blocks
    "CacheOptimizer",
    "optimize_cache_placement",
    "StorageSystemModel",
    "FileSpec",
    "CachePlacement",
    "ReedSolomonCode",
    "FunctionalCacheCoder",
    "__version__",
]
