"""Sprout: functional caching for erasure-coded storage (ICDCS 2016 reproduction).

The package is organised as:

* :mod:`repro.erasure` -- GF(2^8) / Reed-Solomon substrate and functional
  cache chunk construction.
* :mod:`repro.queueing` -- service-time distributions, M/G/1 moments and the
  order-statistics latency bound (Lemma 1).
* :mod:`repro.core` -- the system model, the latency objective and
  Algorithm 1 (alternating minimization with integer rounding).
* :mod:`repro.scheduling` -- probabilistic request scheduling.
* :mod:`repro.simulation` -- discrete-event simulation of the storage system.
* :mod:`repro.baselines` -- LRU, exact-caching and static baselines.
* :mod:`repro.cluster` -- Ceph-like cluster emulation (equivalent-code pools,
  LRU cache tier, measured device latencies).
* :mod:`repro.workloads` -- the paper's workload tables and generators.
* :mod:`repro.experiments` -- one module per table/figure of the evaluation.

Quickstart::

    from repro.workloads import paper_default_model
    from repro.core import CacheOptimizer

    model = paper_default_model(num_files=100, cache_capacity=50)
    placement = CacheOptimizer(model).optimize().placement
    print(placement.summary())
"""

from repro.core.algorithm import CacheOptimizer, optimize_cache_placement
from repro.core.model import FileSpec, StorageSystemModel
from repro.core.placement import CachePlacement
from repro.erasure.functional import FunctionalCacheCoder
from repro.erasure.reed_solomon import ReedSolomonCode

__version__ = "1.0.0"

__all__ = [
    "CacheOptimizer",
    "optimize_cache_placement",
    "StorageSystemModel",
    "FileSpec",
    "CachePlacement",
    "ReedSolomonCode",
    "FunctionalCacheCoder",
    "__version__",
]
