"""``sweep_map`` / ``sweep_scan``: the one way experiments iterate points.

:func:`sweep_map` fans a pure per-point function out over a
``ProcessPoolExecutor`` (``fork`` start method) with chunked dispatch,
optional per-point result caching, and centralized ``completed/total``
progress reporting.  ``jobs=1`` — and any platform without ``fork`` —
runs serially in-process through the *same* code path, which is what
makes the bit-equality guarantee testable: each point is computed only
from ``(point, index, per-point seed)``, and ``ordered=True`` reassembles
results in point order regardless of completion order.

:func:`sweep_scan` is the sequential sibling for warm-started chains
(Figs. 3/4/5) where each point consumes state carried from the previous
one; it exists so those experiments share the progress/labeling plumbing
without pretending to be parallelizable.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.exec.cache import CacheLike, ResultCache, resolve_cache

ProgressCallback = Callable[[int, int, Any], None]
ProgressLike = Union[None, bool, ProgressCallback]


def available_cpus() -> int:
    """CPUs this process may use (affinity-aware, never below 1)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:
        return max(1, os.cpu_count() or 1)


def fork_available() -> bool:
    """Whether the ``fork`` start method exists on this platform.

    Worker warm-up relies on inheriting the parent's module state cheaply
    and the determinism tests rely on workers not re-running import-time
    code differently, so the pool is only used where ``fork`` is
    available; everywhere else ``sweep_map`` degrades to the serial path.
    """
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - defensive
        return False


def resolve_jobs(jobs: Optional[int], num_points: int) -> int:
    """The effective worker count: ``None`` means all cores, capped at
    the number of points, forced to 1 when ``fork`` is unavailable."""
    if num_points <= 0:
        return 1
    effective = available_cpus() if jobs is None else int(jobs)
    if effective < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs!r}")
    effective = min(effective, num_points)
    if effective > 1 and not fork_available():
        effective = 1
    return effective


def spawn_point_seeds(seed: int, num_points: int) -> List[int]:
    """One independent seed per point, keyed by point index.

    ``SeedSequence(seed).spawn(n)`` hands child ``i`` the same entropy no
    matter which worker runs it or in which order, so per-point RNGs are
    identical under ``jobs=1`` and ``jobs=N``.
    """
    children = np.random.SeedSequence(seed).spawn(num_points)
    return [int(child.generate_state(1, dtype=np.uint64)[0]) for child in children]


def default_progress(label: Optional[str]) -> ProgressCallback:
    """The built-in reporter: one ``[label] completed/total`` line per
    point on stderr, emitted only from the parent process so parallel
    runs never interleave worker output."""

    prefix = f"[{label}] " if label else ""

    def report(completed: int, total: int, point: Any) -> None:
        sys.stderr.write(f"{prefix}{completed}/{total} points done\n")
        sys.stderr.flush()

    return report


def _resolve_progress(
    progress: ProgressLike, label: Optional[str]
) -> Optional[ProgressCallback]:
    if progress is None or progress is False:
        return None
    if progress is True:
        return default_progress(label)
    return progress


def _resolve_chunk_size(
    chunk_size: Optional[int], num_points: int, jobs: int
) -> int:
    if chunk_size is not None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size!r}")
        return chunk_size
    # Aim for ~4 chunks per worker: enough slack for load balancing
    # without paying per-point pickle round-trips on large grids.
    return max(1, num_points // (jobs * 4))


def _run_chunk(
    fn: Callable[..., Any], chunk: Sequence[Tuple[int, Any]]
) -> List[Tuple[int, Any]]:
    """Execute a chunk of (index, point) pairs; runs inside the worker."""
    return [(index, fn(point)) for index, point in chunk]


@dataclass
class SweepSpec:
    """A declarative sweep: per-point function, points and execution knobs.

    ``sweep_map(fn, points, ...)`` is the functional spelling;
    ``SweepSpec(...).run()`` is the object spelling used when a sweep is
    built in one place and executed in another (CLI, benchmarks).
    """

    fn: Callable[..., Any]
    points: Sequence[Any]
    jobs: Optional[int] = None
    ordered: bool = True
    chunk_size: Optional[int] = None
    label: Optional[str] = None
    progress: ProgressLike = None
    cache: CacheLike = None
    cache_key: Optional[Callable[[ResultCache, Any, int], str]] = None
    encode: Optional[Callable[[Any], Any]] = None
    decode: Optional[Callable[[Any], Any]] = None

    def run(self) -> List[Any]:
        return sweep_map(
            self.fn,
            self.points,
            jobs=self.jobs,
            ordered=self.ordered,
            chunk_size=self.chunk_size,
            label=self.label,
            progress=self.progress,
            cache=self.cache,
            cache_key=self.cache_key,
            encode=self.encode,
            decode=self.decode,
        )


def sweep_map(
    fn: Callable[..., Any],
    points: Sequence[Any],
    *,
    jobs: Optional[int] = None,
    ordered: bool = True,
    chunk_size: Optional[int] = None,
    label: Optional[str] = None,
    progress: ProgressLike = None,
    cache: CacheLike = None,
    cache_key: Optional[Callable[[ResultCache, Any, int], str]] = None,
    encode: Optional[Callable[[Any], Any]] = None,
    decode: Optional[Callable[[Any], Any]] = None,
) -> List[Any]:
    """Map ``fn`` over independent sweep points, possibly in parallel.

    Parameters
    ----------
    fn:
        Pure per-point function ``fn(point) -> result``.  Must be
        picklable for ``jobs > 1`` (module-level function or
        ``functools.partial`` of one); must derive any randomness from
        the point itself, never from shared mutable state.
    points:
        The sweep points, in result order.
    jobs:
        Worker processes; ``None`` uses all available cores, ``1`` runs
        serially in-process.  Forced to 1 where ``fork`` is unavailable.
    ordered:
        ``True`` (default) returns results in point order; ``False``
        returns them in completion order (still deterministic content,
        only ordering differs).
    chunk_size:
        Points per pool task; default targets ~4 chunks per worker.
    label / progress:
        ``progress=True`` prints ``[label] completed/total`` lines to
        stderr from the parent process; a callable receives
        ``(completed, total, point)`` after each point.
    cache / cache_key / encode / decode:
        Optional per-point result caching.  ``cache_key(cache, point,
        index)`` must return the content-addressed key; ``encode``
        converts a computed result to a JSON-safe payload before storing
        and ``decode`` converts a stored payload back (both default to
        identity).  Cached points never reach the pool, so a fully
        cached sweep performs zero solver calls.

    Returns
    -------
    list
        One result per point (``[fn(p) for p in points]``, bit-equal
        across all ``jobs`` values when ``ordered=True``).
    """
    points = list(points)
    total = len(points)
    if total == 0:
        return []
    report = _resolve_progress(progress, label)
    cache_obj = resolve_cache(cache)
    if cache_obj is not None and cache_key is None:
        raise ValueError("cache requires cache_key to derive per-point keys")

    results: Dict[int, Any] = {}
    completed = 0

    # Cache probe: resolve hits up front so only misses are dispatched.
    pending: List[Tuple[int, Any]] = []
    keys: Dict[int, str] = {}
    for index, point in enumerate(points):
        if cache_obj is not None:
            key = cache_key(cache_obj, point, index)
            keys[index] = key
            stored = cache_obj.get(key)
            if stored is not None:
                results[index] = decode(stored) if decode is not None else stored
                completed += 1
                if report is not None:
                    report(completed, total, point)
                continue
        pending.append((index, point))

    def finish(index: int, point: Any, result: Any) -> None:
        nonlocal completed
        if cache_obj is not None:
            payload = encode(result) if encode is not None else result
            cache_obj.put(keys[index], payload)
        results[index] = result
        completed += 1
        if report is not None:
            report(completed, total, point)

    jobs_effective = resolve_jobs(jobs, len(pending))

    if jobs_effective <= 1:
        for index, point in pending:
            finish(index, point, fn(point))
    else:
        chunk = _resolve_chunk_size(chunk_size, len(pending), jobs_effective)
        chunks = [pending[i : i + chunk] for i in range(0, len(pending), chunk)]
        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(
            max_workers=jobs_effective, mp_context=context
        ) as pool:
            futures = {
                pool.submit(_run_chunk, fn, part): part for part in chunks
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    for index, result in future.result():
                        finish(index, points[index], result)

    if ordered:
        return [results[index] for index in range(total)]
    return list(results.values())


def sweep_scan(
    fn: Callable[[Any, Any], Tuple[Any, Any]],
    points: Sequence[Any],
    *,
    carry: Any = None,
    label: Optional[str] = None,
    progress: ProgressLike = None,
) -> List[Any]:
    """Sequential sweep with carried state: ``fn(point, carry) ->
    (result, carry)``.

    Warm-started chains (Fig. 3's iteration trace, Fig. 4's cache-size
    chain, Fig. 5's controller evolution) are inherently sequential —
    each point's warm start IS the previous point's solution — so they
    cannot parallelize without changing results.  ``sweep_scan`` gives
    them the same progress/labeling plumbing as :func:`sweep_map` while
    making the data dependence explicit at the call site.
    """
    points = list(points)
    total = len(points)
    report = _resolve_progress(progress, label)
    results: List[Any] = []
    for index, point in enumerate(points):
        result, carry = fn(point, carry)
        results.append(result)
        if report is not None:
            report(index + 1, total, point)
    return results
