"""Content-addressed result cache for scenario runs and sweep points.

Identical ``(Scenario, seed)`` solves used to be recomputed from scratch
across figures, examples and CI jobs.  The :class:`ResultCache` stores any
JSON-safe result payload under a SHA-256 key derived from the canonical
JSON of the inputs that determine it -- the scenario (or sweep point)
description, the seed, the package version and the active kernel backend
-- so a cache entry can never be served to a run it does not bit-exactly
describe: bumping the package version or switching backends changes the
key and misses.

Layout: one JSON file per entry under ``<cache_dir>/<key[:2]>/<key>.json``
with ``~/.cache/repro`` as the default root (override with the
``REPRO_CACHE_DIR`` environment variable).  Writes are atomic
(temp file + ``os.replace``) so concurrent sweep workers never observe a
torn entry; corrupt entries are treated as misses and removed.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from repro.api.serialize import to_jsonable

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"


def package_version() -> str:
    """The installed ``repro`` version (a cache-key component)."""
    from repro import __version__

    return __version__


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    override = os.environ.get(CACHE_DIR_ENV_VAR)
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro"


def canonical_json(payload: Any) -> str:
    """Deterministic compact JSON for hashing (sorted keys, no whitespace)."""
    return json.dumps(
        to_jsonable(payload), sort_keys=True, separators=(",", ":")
    )


@dataclass
class CacheStats:
    """Hit/miss/store counters of one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def as_dict(self) -> Dict[str, int]:
        """The counters as a plain dictionary (for reports)."""
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}


@dataclass
class ResultCache:
    """Content-addressed JSON store with hit/miss accounting.

    Parameters
    ----------
    directory:
        Cache root; ``None`` selects :func:`default_cache_dir`.  The
        directory is created lazily on the first store.
    """

    directory: Path = field(default_factory=default_cache_dir)
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.directory = Path(self.directory).expanduser()

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------

    def key_for(self, payload: Any) -> str:
        """SHA-256 hex digest of the canonical JSON of ``payload``."""
        return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()

    def path_for(self, key: str) -> Path:
        """The entry file of ``key`` (two-level fan-out keeps dirs small)."""
        return self.directory / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # Entries
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[Any]:
        """The stored payload of ``key``, or ``None`` on a miss.

        A corrupt entry (truncated write from an older crashed process,
        manual editing) counts as a miss and is removed.
        """
        path = self.path_for(key)
        try:
            text = path.read_text()
        except (FileNotFoundError, OSError):
            self.stats.misses += 1
            return None
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return payload

    def put(self, key: str, payload: Any) -> Path:
        """Store ``payload`` under ``key`` atomically and return its path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(to_jsonable(payload), sort_keys=True)
        handle, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w") as stream:
                stream.write(text)
            os.replace(temp_name, path)
        except OSError:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        return path

    def clear(self) -> int:
        """Remove every entry; return the number of files removed."""
        removed = 0
        if not self.directory.exists():
            return removed
        for entry in sorted(self.directory.glob("*/*.json")):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        if not self.directory.exists():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.json"))


#: What ``cache=`` accepts throughout the package: off, default-on, a
#: directory, or a prebuilt cache instance.
CacheLike = Union[None, bool, str, Path, ResultCache]


def default_cache() -> ResultCache:
    """A cache rooted at the default directory."""
    return ResultCache()


def resolve_cache(cache: CacheLike) -> Optional[ResultCache]:
    """Normalize a ``cache=`` argument into a cache instance (or ``None``).

    ``None``/``False`` disable caching, ``True`` selects the default
    directory, a string/path selects that directory, and a prebuilt
    :class:`ResultCache` passes through (so callers can share one
    instance, and its hit/miss stats, across sweeps).
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return default_cache()
    if isinstance(cache, ResultCache):
        return cache
    return ResultCache(Path(cache))


# ----------------------------------------------------------------------
# Key builders
# ----------------------------------------------------------------------


def _active_backend_name() -> str:
    from repro.kernels import active_kernel_backend_name

    return active_kernel_backend_name()


def scenario_key(cache: ResultCache, scenario: Any) -> str:
    """Cache key of one end-to-end scenario run.

    The scenario's ``to_dict()`` already carries the seed and the kernel
    backend; the package version keys out results computed by older code.
    """
    return cache.key_for(
        {
            "kind": "scenario",
            "scenario": scenario.to_dict(),
            "version": package_version(),
        }
    )


def experiment_point_key(
    cache: ResultCache,
    experiment: str,
    point: Any,
    params: Mapping[str, Any],
) -> str:
    """Cache key of one sweep point of a registered experiment.

    ``params`` must contain every parameter that shapes the point's result
    (including the seed); the active kernel backend and the package
    version are mixed in so backend switches and version bumps miss.
    """
    return cache.key_for(
        {
            "kind": "experiment-point",
            "experiment": experiment,
            "point": point,
            "params": dict(params),
            "version": package_version(),
            "backend": _active_backend_name(),
        }
    )
