"""Per-worker warm state for process-pool sweep execution.

Compiling a :class:`~repro.core.vectorized.VectorizedSystem` builds the
(file, node) pair arrays from scratch -- the dominant per-point cost at
paper scale.  Points of one sweep usually share the placement structure
(same files on the same nodes, only rates/capacities differ), so each
pool worker keeps ONE compiled system and ``rebind``s it to the next
point's model instead of recompiling.  ``rebind`` recomputes exactly
what a fresh compile would (it is a pure recompilation cache), so the
warm path cannot perturb results; if the next model's structure differs,
:func:`shared_system` silently falls back to a fresh compile.

The state lives in a module-level dict so it survives across the tasks a
``ProcessPoolExecutor`` worker executes, and is equally usable from the
serial ``jobs=1`` path (the parent process is then the single "worker").
"""

from __future__ import annotations

from typing import Any, Dict

from repro.core.vectorized import VectorizedSystem
from repro.exceptions import OptimizationError

_STATE: Dict[str, Any] = {}

_SYSTEM_KEY = "vectorized_system"


def worker_state() -> Dict[str, Any]:
    """The mutable per-process scratch dict (for custom warm-up hooks)."""
    return _STATE


def reset_worker_state() -> None:
    """Drop all warm state (tests use this to isolate determinism checks)."""
    _STATE.clear()


def shared_system(model: Any) -> VectorizedSystem:
    """A compiled system for ``model``, rebinding the warm one when possible.

    Bit-equality note: ``VectorizedSystem.rebind`` recomputes every array
    a fresh ``__init__`` would and raises :class:`OptimizationError` when
    the placement structure differs, so this function always returns a
    system indistinguishable from ``VectorizedSystem(model)``.
    """
    system = _STATE.get(_SYSTEM_KEY)
    if system is not None:
        try:
            return system.rebind(model)
        except OptimizationError:
            pass
    system = VectorizedSystem(model)
    _STATE[_SYSTEM_KEY] = system
    return system
