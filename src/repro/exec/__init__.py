"""Parallel sweep execution: process-pool fan-out plus a result cache.

Every experiment of the reproduction is a sweep over *independent* points
-- arrival rates, object sizes, crash rates, seeds -- and this package is
the one place that knows how to run such a sweep fast and reproducibly:

* :mod:`repro.exec.sweep` -- :func:`sweep_map` fans the per-point function
  out over a ``ProcessPoolExecutor`` (serial in-process for ``jobs=1`` and
  on platforms without ``fork``), with chunked dispatch, centralized
  ``completed/total`` progress reporting and deterministic per-point seed
  spawning; :func:`sweep_scan` is its sequential sibling for warm-started
  chains (Figs. 3/4/5) where each point depends on the previous one.
* :mod:`repro.exec.worker` -- per-worker warm state: one compiled
  :class:`~repro.core.vectorized.VectorizedSystem` is rebound across all
  points a worker executes instead of being recompiled per point.
* :mod:`repro.exec.cache` -- the content-addressed result cache: keys are
  SHA-256 digests of the canonical JSON of (scenario/point, seed, package
  version, kernel backend); values are JSON documents under
  ``~/.cache/repro`` (override with ``REPRO_CACHE_DIR``).

Determinism guarantee: ``jobs=1`` and ``jobs=N`` produce bit-identical
sweep results.  Each point is computed from its own explicit inputs (its
RNG derives from ``SeedSequence.spawn`` keyed by point index, never from
shared mutable state), ``ordered=True`` reassembles results in point
order, and the per-worker warm system is a pure recompilation cache
(``rebind`` recomputes exactly what a fresh compile would).
"""

from repro.exec.cache import (
    CACHE_DIR_ENV_VAR,
    CacheLike,
    CacheStats,
    ResultCache,
    default_cache,
    default_cache_dir,
    experiment_point_key,
    package_version,
    resolve_cache,
    scenario_key,
)
from repro.exec.sweep import (
    ProgressLike,
    SweepSpec,
    available_cpus,
    fork_available,
    resolve_jobs,
    spawn_point_seeds,
    sweep_map,
    sweep_scan,
)
from repro.exec.worker import reset_worker_state, shared_system, worker_state

__all__ = [
    # sweep execution
    "SweepSpec",
    "sweep_map",
    "sweep_scan",
    "available_cpus",
    "fork_available",
    "resolve_jobs",
    "spawn_point_seeds",
    # worker warm state
    "shared_system",
    "worker_state",
    "reset_worker_state",
    "ProgressLike",
    # result cache
    "ResultCache",
    "CacheLike",
    "CacheStats",
    "default_cache",
    "default_cache_dir",
    "resolve_cache",
    "scenario_key",
    "experiment_point_key",
    "package_version",
    "CACHE_DIR_ENV_VAR",
]
