"""Deprecated home of the trace-replay queueing primitives.

The vectorised primitives that used to live here --
``fifo_departures_grouped``, ``multi_server_departures`` and
``last_access_fold`` -- moved to the shared kernel layer
(:mod:`repro.kernels.queueing`), where they gained pluggable array-API
backends.  This module keeps thin shims so existing imports keep working;
new code should import from :mod:`repro.kernels` directly.

Each shim emits a :class:`DeprecationWarning` and delegates to the kernel,
so behaviour (and, on the default NumPy backend, the exact bit pattern of
every output) is unchanged.
"""

from __future__ import annotations

import warnings
from typing import Tuple

import numpy as np

from repro import kernels as _kernels

__all__ = [
    "fifo_departures_grouped",
    "multi_server_departures",
    "last_access_fold",
]


def _warn(name: str) -> None:
    # Local warning helper instead of repro.api.deprecation: importing the
    # api facade from here would recreate the engines -> api import cycle.
    warnings.warn(
        f"repro.simulation.replay.{name} is deprecated; "
        f"use repro.kernels.{name} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def fifo_departures_grouped(
    groups: np.ndarray,
    times: np.ndarray,
    services: np.ndarray,
    num_groups: int,
) -> np.ndarray:
    """Deprecated shim for :func:`repro.kernels.fifo_departures_grouped`."""
    _warn("fifo_departures_grouped")
    return _kernels.fifo_departures_grouped(groups, times, services, num_groups)


def multi_server_departures(
    times: np.ndarray, service: float, num_servers: int
) -> np.ndarray:
    """Deprecated shim for :func:`repro.kernels.multi_server_departures`."""
    _warn("multi_server_departures")
    return _kernels.multi_server_departures(times, service, num_servers)


def last_access_fold(positions: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Deprecated shim for :func:`repro.kernels.last_access_fold`."""
    _warn("last_access_fold")
    return _kernels.last_access_fold(positions)
