"""Vectorised queueing primitives shared by the trace-replay engines.

The epoch-batched cluster replay (:mod:`repro.cluster.replay`) decomposes a
stateful per-request benchmark into a sequential *policy* phase (cache
state, inherently serial) and a *latency assembly* phase that is a pure
function of the hit/miss classification and the pre-drawn randomness.  The
assembly phase is built from two primitives, both closed-form rewrites of
FIFO queues via the Lindley recursion already used by the batch simulation
engine (:func:`repro.simulation.batch._lindley_departures`):

* :func:`fifo_departures_grouped` -- many independent single-server FIFO
  queues (the HDD OSDs), each solved with one Lindley scan over its
  time-sorted arrivals.

* :func:`multi_server_departures` -- one FIFO queue with ``c`` identical
  servers and a *constant* service time (the SSD cache device pair).  With
  constant service, jobs depart in arrival order and the ``i``-th job
  starts exactly when the ``(i - c)``-th departs, so
  ``D_i = max(A_i, D_{i-c}) + s``: the queue splits into ``c`` interleaved
  lanes, each an independent Lindley recursion.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import SimulationError
from repro.simulation.batch import _lindley_departures


def fifo_departures_grouped(
    groups: np.ndarray,
    times: np.ndarray,
    services: np.ndarray,
    num_groups: int,
) -> np.ndarray:
    """Departure times of per-group single-server FIFO queues.

    Parameters
    ----------
    groups:
        Queue index of each entry (``0 <= groups < num_groups``).
    times:
        Arrival time of each entry (any order).
    services:
        Service time of each entry.
    num_groups:
        Number of queues.

    Entries of one queue are served in ``(time, input position)`` order;
    the returned departures are aligned with the input arrays.
    """
    if not (groups.shape == times.shape == services.shape):
        raise SimulationError("groups, times and services must align")
    order = np.lexsort((np.arange(times.size), times, groups))
    sorted_groups = groups[order]
    sorted_times = times[order]
    sorted_services = services[order]
    boundaries = np.searchsorted(sorted_groups, np.arange(num_groups + 1))
    departures_sorted = np.empty_like(sorted_times)
    for group in range(num_groups):
        low, high = int(boundaries[group]), int(boundaries[group + 1])
        if low == high:
            continue
        departures_sorted[low:high] = _lindley_departures(
            sorted_times[low:high], sorted_services[low:high]
        )
    departures = np.empty_like(departures_sorted)
    departures[order] = departures_sorted
    return departures


def multi_server_departures(
    times: np.ndarray, service: float, num_servers: int
) -> np.ndarray:
    """Departures of a FIFO queue with ``c`` servers and constant service.

    ``times`` must be sorted ascending.  Jobs are dispatched to the
    earliest-free server; with a constant service time this is equivalent
    to ``c`` interleaved single-server Lindley lanes (see module docstring),
    so the whole queue costs two vector scans per lane.
    """
    if num_servers < 1:
        raise SimulationError("num_servers must be at least 1")
    if times.size == 0:
        return np.empty(0, dtype=float)
    departures = np.empty_like(times)
    for lane in range(num_servers):
        lane_times = times[lane::num_servers]
        lane_services = np.full(lane_times.size, float(service))
        departures[lane::num_servers] = _lindley_departures(
            lane_times, lane_services
        )
    return departures


def last_access_fold(positions: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Collapse a run of accesses into its per-object summary.

    Returns ``(unique_positions, counts, last_offsets)`` where
    ``unique_positions`` are the distinct object positions of the run
    ordered by *last* access (earliest last-access first), ``counts`` are
    the per-object access multiplicities and ``last_offsets`` the offset of
    each object's final access within the run.  Feeding the result to
    :meth:`ChunkCachingPolicy.touch_epoch` reproduces the final policy
    state of per-request processing for a pure hit run.
    """
    unique, rev_first, counts = np.unique(
        positions[::-1], return_index=True, return_counts=True
    )
    last_offsets = positions.size - 1 - rev_first
    order = np.argsort(last_offsets)
    return unique[order], counts[order], last_offsets[order]
