"""Discrete-event simulation of the erasure-coded storage system with cache.

The simulator validates the analytical latency bound and regenerates the
simulation figures of the paper: it models FIFO storage-node queues with
arbitrary service-time distributions, a cache device, Poisson file request
arrivals, probabilistic chunk scheduling and fork-join completion.
"""

from repro.simulation.events import Event, EventQueue
from repro.simulation.node import CacheDevice, StorageNodeQueue
from repro.simulation.metrics import LatencyMetrics, SlotCounter
from repro.simulation.arrivals import (
    NonHomogeneousPoissonArrivals,
    PoissonArrivalProcess,
    generate_request_arrays,
    merge_arrival_streams,
)
from repro.simulation.batch import run_batch_simulation

# Re-exported from the shared kernel layer (the repro.simulation.replay
# shims remain for legacy direct imports, with a DeprecationWarning).
from repro.kernels import (
    fifo_departures_grouped,
    last_access_fold,
    multi_server_departures,
)
from repro.simulation.simulator import SimulationConfig, SimulationResult, StorageSimulator

__all__ = [
    "Event",
    "EventQueue",
    "StorageNodeQueue",
    "CacheDevice",
    "LatencyMetrics",
    "SlotCounter",
    "PoissonArrivalProcess",
    "NonHomogeneousPoissonArrivals",
    "merge_arrival_streams",
    "generate_request_arrays",
    "run_batch_simulation",
    "fifo_departures_grouped",
    "last_access_fold",
    "multi_server_departures",
    "StorageSimulator",
    "SimulationConfig",
    "SimulationResult",
]
