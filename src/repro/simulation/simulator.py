"""Discrete-event simulator of the cached, erasure-coded storage system.

The simulator drives the full request path of Section III of the paper:

1. File requests arrive as Poisson processes with per-file rates.
2. Each request is split by a :class:`~repro.scheduling.ProbabilisticScheduler`
   into ``d_i`` cache chunk reads and ``k_i - d_i`` storage chunk requests
   directed at distinct nodes sampled with probabilities ``pi_{i,j}``.
3. Storage nodes serve chunk requests FIFO with arbitrary service-time
   distributions; the cache serves its chunks with negligible (or SSD)
   latency.
4. The file request completes when its slowest chunk completes (fork-join);
   the completion time minus the arrival time is the recorded latency.

The output feeds the experiments validating the analytical bound
(Lemma 1) and regenerating Fig. 7 (cache vs storage chunk counts per slot).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.model import StorageSystemModel
from repro.core.placement import CachePlacement
from repro.exceptions import SimulationError
from repro.queueing.distributions import ServiceDistribution
from repro.scheduling.scheduler import ProbabilisticScheduler
from repro.simulation.arrivals import generate_request_stream
from repro.simulation.metrics import LatencyMetrics, SlotCounter
from repro.simulation.node import CacheDevice, StorageNodeQueue


#: Engines understood by :class:`StorageSimulator`.
ENGINES = ("event", "batch")


def _request_arrays(requests, horizon: float):
    """Normalize a request stream into ``(times, positions, object_ids)``.

    Accepts a :class:`~repro.workloads.base.RequestStream` (duck-typed, to
    keep this module import-independent from the workloads package) or a
    ``(times, positions, object_ids)`` triple.  Arrivals at or past the
    horizon are dropped, matching the ``[0, horizon)`` support of the
    engines' own Poisson sampling.
    """
    if hasattr(requests, "object_positions"):
        times = np.asarray(requests.times, dtype=np.float64)
        positions = np.asarray(requests.object_positions, dtype=np.int64)
        object_ids = tuple(requests.object_ids)
    else:
        try:
            times, positions, object_ids = requests
        except (TypeError, ValueError):
            raise SimulationError(
                "requests must be a RequestStream or a "
                "(times, positions, object_ids) triple"
            ) from None
        times = np.asarray(times, dtype=np.float64)
        positions = np.asarray(positions, dtype=np.int64)
        object_ids = tuple(object_ids)
    if times.shape != positions.shape:
        raise SimulationError(
            f"times and positions disagree: {times.shape} vs {positions.shape}"
        )
    keep = times < horizon
    if not np.all(keep):
        times = times[keep]
        positions = positions[keep]
    return times, positions, object_ids


@dataclass
class SimulationConfig:
    """Configuration of one simulation run."""

    horizon: float
    seed: Optional[int] = None
    warmup: float = 0.0
    cache_service: Optional[ServiceDistribution] = None
    slot_length: Optional[float] = None
    keep_node_records: bool = False

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise SimulationError("simulation horizon must be positive")
        if not 0.0 <= self.warmup < self.horizon:
            raise SimulationError("warmup must lie in [0, horizon)")
        if self.slot_length is not None and self.slot_length <= 0:
            raise SimulationError("slot_length must be positive")

    def spawn_streams(self) -> List[np.random.SeedSequence]:
        """Derive the run's four random streams from one root seed.

        All stochastic inputs -- arrivals, node service times, scheduler
        sampling, cache service times -- are children of a single
        ``SeedSequence``, so a seeded run is reproducible and an unseeded
        run draws every stream from the same fresh entropy root (instead of
        mixing one fresh and one derived generator, which previously made
        ``seed=None`` runs silently diverge from the seeded structure).
        """
        return np.random.SeedSequence(self.seed).spawn(4)


@dataclass
class SimulationResult:
    """Outcome of a simulation run."""

    metrics: LatencyMetrics
    slot_counter: Optional[SlotCounter]
    node_utilization: Dict[int, float]
    requests_completed: int
    chunks_from_cache: int
    chunks_from_storage: int
    horizon: float
    per_node_chunks: Dict[int, int] = field(default_factory=dict)

    def mean_latency(self) -> float:
        """Mean file-access latency over all completed requests."""
        return self.metrics.mean_latency()

    def cache_chunk_fraction(self) -> float:
        """Fraction of all chunk requests served from the cache."""
        total = self.chunks_from_cache + self.chunks_from_storage
        if total == 0:
            return 0.0
        return self.chunks_from_cache / total


class StorageSimulator:
    """Simulates the storage system under a given cache placement.

    Parameters
    ----------
    model:
        The storage-system model (nodes, files, arrival rates).
    placement:
        Cache placement and scheduling probabilities to simulate.  When
        ``None``, a no-cache uniform schedule (``pi = k/n``) is used.
    engine:
        ``"event"`` (the per-arrival discrete-event loop, supports
        ``keep_node_records``) or ``"batch"`` (the vectorised engine of
        :mod:`repro.simulation.batch`: statistically equivalent, orders of
        magnitude faster on large request streams).
    """

    def __init__(
        self,
        model: StorageSystemModel,
        placement: Optional[CachePlacement] = None,
        engine: str = "event",
    ):
        if engine not in ENGINES:
            raise SimulationError(
                f"unknown simulation engine {engine!r}; expected one of {ENGINES}"
            )
        self._model = model
        self._placement = placement
        self._engine = engine

    @property
    def engine(self) -> str:
        """The engine this simulator runs with."""
        return self._engine

    # ------------------------------------------------------------------
    # Scheduler assembly
    # ------------------------------------------------------------------

    def _build_scheduler(self, seed) -> ProbabilisticScheduler:
        if self._placement is not None:
            return ProbabilisticScheduler.from_placement(self._placement, seed=seed)
        cached = {spec.file_id: 0 for spec in self._model.files}
        probabilities = {
            spec.file_id: {node: spec.k / spec.n for node in spec.placement}
            for spec in self._model.files
        }
        k_values = {spec.file_id: spec.k for spec in self._model.files}
        return ProbabilisticScheduler(cached, probabilities, k_values, seed=seed)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self, config: SimulationConfig, requests=None) -> SimulationResult:
        """Run the simulation with the configured engine.

        ``requests`` optionally supplies the request stream as precomputed
        arrays -- a :class:`~repro.workloads.base.RequestStream` or a
        ``(times, object_positions, object_ids)`` triple -- replacing the
        engine's own homogeneous-Poisson arrival sampling.  This is how
        non-stationary workloads (diurnal, flash crowd, drift) and ingested
        traces are replayed; arrivals at or past the horizon are dropped.
        """
        arrival_seq, node_seq, scheduler_seq, cache_seq = config.spawn_streams()
        if requests is not None:
            requests = _request_arrays(requests, config.horizon)
        if self._engine == "batch":
            from repro.simulation.batch import run_batch_simulation

            return run_batch_simulation(
                self._model,
                self._build_scheduler(scheduler_seq),
                config,
                arrival_rng=np.random.default_rng(arrival_seq),
                node_rng=np.random.default_rng(node_seq),
                scheduler_rng=np.random.default_rng(scheduler_seq.spawn(1)[0]),
                cache_rng=np.random.default_rng(cache_seq),
                requests=requests,
            )
        return self._run_event(
            config,
            rng=np.random.default_rng(arrival_seq),
            node_rng=np.random.default_rng(node_seq),
            scheduler_seq=scheduler_seq,
            cache_rng=np.random.default_rng(cache_seq),
            requests=requests,
        )

    def _run_event(
        self,
        config: SimulationConfig,
        rng: np.random.Generator,
        node_rng: np.random.Generator,
        scheduler_seq: np.random.SeedSequence,
        cache_rng: np.random.Generator,
        requests=None,
    ) -> SimulationResult:
        """The per-arrival discrete-event loop."""
        scheduler = self._build_scheduler(scheduler_seq)

        nodes: Dict[int, StorageNodeQueue] = {
            node_id: StorageNodeQueue(
                node_id,
                self._model.service(node_id),
                rng=node_rng,
                keep_records=config.keep_node_records,
            )
            for node_id in self._model.node_ids
        }
        cache = CacheDevice(service=config.cache_service, rng=cache_rng)

        if requests is not None:
            times, positions, object_ids = requests
            stream = (
                (float(time), object_ids[int(position)])
                for time, position in zip(times, positions)
            )
        else:
            arrival_rates = {
                spec.file_id: spec.arrival_rate for spec in self._model.files
            }
            stream = generate_request_stream(arrival_rates, config.horizon, rng)

        slot_counter: Optional[SlotCounter] = None
        if config.slot_length is not None:
            num_slots = int(np.ceil(config.horizon / config.slot_length))
            slot_counter = SlotCounter(
                slot_length=config.slot_length, num_slots=num_slots
            )

        metrics = LatencyMetrics()
        chunks_from_cache = 0
        chunks_from_storage = 0
        per_node_chunks: Dict[int, int] = {node_id: 0 for node_id in nodes}
        requests_completed = 0

        for arrival_time, file_id in stream:
            request = scheduler.dispatch(file_id, arrival_time)
            completion_times: List[float] = []
            # Cache chunk reads.
            for _ in range(request.cache_chunks):
                completion_times.append(cache.read_chunk(arrival_time))
            chunks_from_cache += request.cache_chunks
            # Storage chunk requests (FIFO node queues).
            for node_id in request.storage_nodes:
                node = nodes.get(node_id)
                if node is None:
                    raise SimulationError(f"request targets unknown node {node_id}")
                completion_times.append(
                    node.enqueue_chunk(arrival_time, file_id, request.request_id)
                )
                per_node_chunks[node_id] += 1
            chunks_from_storage += len(request.storage_nodes)
            if slot_counter is not None:
                slot_counter.record_cache_chunks(arrival_time, request.cache_chunks)
                slot_counter.record_storage_chunks(
                    arrival_time, len(request.storage_nodes)
                )
            completion = max(completion_times) if completion_times else arrival_time
            latency = completion - arrival_time
            if arrival_time >= config.warmup:
                metrics.record(file_id, latency)
                requests_completed += 1

        utilization = {
            node_id: node.busy_fraction(config.horizon) for node_id, node in nodes.items()
        }
        return SimulationResult(
            metrics=metrics,
            slot_counter=slot_counter,
            node_utilization=utilization,
            requests_completed=requests_completed,
            chunks_from_cache=chunks_from_cache,
            chunks_from_storage=chunks_from_storage,
            horizon=config.horizon,
            per_node_chunks=per_node_chunks,
        )


def simulate_placement_latency(
    model: StorageSystemModel,
    placement: Optional[CachePlacement],
    horizon: float,
    seed: Optional[int] = None,
    warmup_fraction: float = 0.1,
    cache_service: Optional[ServiceDistribution] = None,
    engine: str = "event",
) -> float:
    """Convenience helper: run one simulation and return the mean latency."""
    config = SimulationConfig(
        horizon=horizon,
        seed=seed,
        warmup=horizon * warmup_fraction,
        cache_service=cache_service,
    )
    simulator = StorageSimulator(model, placement, engine=engine)
    result = simulator.run(config)
    return result.mean_latency()
