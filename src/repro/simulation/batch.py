"""Batched, fully vectorised simulation engine.

This module replays the same stochastic system as the event-driven
:class:`~repro.simulation.simulator.StorageSimulator` loop -- Poisson file
requests, probabilistic chunk scheduling, FIFO storage nodes, fork-join
completion -- but compiles the whole run into flat numpy arrays instead of
processing one arrival at a time.  The two engines are *statistically
equivalent* (identical distributions for every reported metric) but do not
reproduce each other's sample paths draw for draw; seeded runs of either
engine are individually reproducible.

The pipeline:

1. **Arrivals.**  The entire request stream is drawn at once: per-file
   Poisson counts followed by sorted uniforms (the order-statistics property
   of the Poisson process), via
   :func:`~repro.simulation.arrivals.generate_request_arrays`.

2. **Scheduling.**  Files are grouped by their ``(placement size, storage
   chunk count)`` signature and the systematic inclusion sampling of
   ``scheduling/sampling.py`` runs once per group over a *request axis* --
   one matrix draw selects the storage-node set of every request of every
   file in the group.

3. **FIFO queues in closed form.**  A single-server FIFO queue satisfies
   the Lindley recursion for departure times: with arrivals ``A_c`` sorted
   ascending at a node and service draws ``S_c``,

       D_c = max(A_c, D_{c-1}) + S_c.

   Unrolling the recursion, ``D_c = max_{j <= c} (A_j + sum_{l=j..c} S_l)``
   -- the last chunk to find the server idle sets the busy period's clock.
   Writing ``P_c = sum_{l < c} S_l`` (the *shifted* cumulative service,
   ``P_0 = 0``) this becomes

       D_c = cumsum(S)_c + max_{j <= c} (A_j - P_j)
           = cumsum(S)_c + maximum.accumulate(A - (cumsum(S) - S))_c,

   two O(n) vector scans per node instead of one Python-level enqueue per
   chunk.  This is exactly the departure process the event-driven
   ``StorageNodeQueue`` produces, in closed form.

4. **Fork-join reduction.**  Each request completes when its slowest chunk
   does: departures are scattered back to request order and reduced with a
   per-group segmented maximum (a reshape + ``max(axis=1)``, since every
   request in a group has the same chunk count).

The output is the same :class:`~repro.simulation.simulator.SimulationResult`
the event engine returns, so experiments can switch engines freely.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.core.model import StorageSystemModel
from repro.exceptions import SimulationError
from repro.kernels import fork_join_max, lindley_departures
from repro.scheduling.sampling import batch_systematic_inclusion_sample
from repro.scheduling.scheduler import ProbabilisticScheduler
from repro.simulation.arrivals import generate_request_arrays
from repro.simulation.metrics import LatencyMetrics, SlotCounter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.simulation.simulator import SimulationConfig, SimulationResult

#: Backwards-compatible alias: the Lindley scan now lives in repro.kernels
#: (see :func:`repro.kernels.lindley_departures` for the derivation).
_lindley_departures = lindley_departures


def run_batch_simulation(
    model: StorageSystemModel,
    scheduler: ProbabilisticScheduler,
    config: "SimulationConfig",
    arrival_rng: np.random.Generator,
    node_rng: np.random.Generator,
    scheduler_rng: np.random.Generator,
    cache_rng: np.random.Generator,
    requests: Optional[Tuple[np.ndarray, np.ndarray, Tuple[str, ...]]] = None,
) -> "SimulationResult":
    """Run one fully vectorised simulation and return collected metrics.

    Parameters mirror :meth:`StorageSimulator.run`; the four generators are
    independent streams spawned from the run's root ``SeedSequence`` so the
    engine is reproducible under a seed.  ``requests`` optionally supplies
    the arrival arrays ``(times, file_positions, file_ids)`` directly
    (non-stationary workloads, ingested traces), bypassing the homogeneous
    Poisson sampling; every id must name a file of ``model``.
    """
    from repro.simulation.simulator import SimulationResult

    if config.keep_node_records:
        raise SimulationError(
            "the batch engine does not keep per-chunk records; "
            "use engine='event' for keep_node_records runs"
        )

    node_ids: List[int] = model.node_ids
    num_nodes = len(node_ids)
    node_index: Dict[int, int] = {
        node_id: position for position, node_id in enumerate(node_ids)
    }

    if requests is not None:
        times, file_positions, file_ids = requests
        times = np.asarray(times, dtype=np.float64)
        file_positions = np.asarray(file_positions, dtype=np.int64)
        file_ids = tuple(file_ids)
        known = {spec.file_id for spec in model.files}
        unknown = [file_id for file_id in file_ids if file_id not in known]
        if unknown:
            raise SimulationError(
                f"request stream references files absent from the model: "
                f"{unknown[:5]}{'...' if len(unknown) > 5 else ''}"
            )
    else:
        arrival_rates = {spec.file_id: spec.arrival_rate for spec in model.files}
        times, file_positions, file_ids = generate_request_arrays(
            arrival_rates, config.horizon, arrival_rng
        )
    num_requests = times.size
    num_files = len(file_ids)

    # ------------------------------------------------------------------
    # Per-file scheduling tables, compiled once.
    # ------------------------------------------------------------------
    k_values = np.empty(num_files, dtype=np.int64)
    d_values = np.empty(num_files, dtype=np.int64)
    file_nodes: List[np.ndarray] = []
    file_probs: List[np.ndarray] = []
    for position, file_id in enumerate(file_ids):
        k_values[position] = scheduler.k_for(file_id)
        d_values[position] = scheduler.cached_chunks(file_id)
        raw_nodes, probs = scheduler.node_probability_arrays(file_id)
        mapped = np.empty(raw_nodes.size, dtype=np.int64)
        for column, node_id in enumerate(raw_nodes):
            if int(node_id) not in node_index:
                raise SimulationError(f"request targets unknown node {int(node_id)}")
            mapped[column] = node_index[int(node_id)]
        file_nodes.append(mapped)
        file_probs.append(probs)
    s_values = k_values - d_values

    request_d = d_values[file_positions]
    request_s = s_values[file_positions]

    # ------------------------------------------------------------------
    # Batched storage-node sampling, grouped by (placement size, set size).
    # ------------------------------------------------------------------
    signatures: Dict[Tuple[int, int], List[int]] = {}
    for position in range(num_files):
        if s_values[position] > 0:
            key = (file_nodes[position].size, int(s_values[position]))
            signatures.setdefault(key, []).append(position)

    file_group = np.full(num_files, -1, dtype=np.int64)
    file_row = np.zeros(num_files, dtype=np.int64)
    group_tables: List[Tuple[int, np.ndarray, np.ndarray]] = []
    for group_id, ((_, set_size), members) in enumerate(signatures.items()):
        member_array = np.asarray(members, dtype=np.int64)
        file_group[member_array] = group_id
        file_row[member_array] = np.arange(member_array.size)
        node_matrix = np.stack([file_nodes[f] for f in members])
        prob_matrix = np.stack([file_probs[f] for f in members])
        group_tables.append((set_size, node_matrix, prob_matrix))

    request_group = file_group[file_positions]

    chunk_req_parts: List[np.ndarray] = []
    chunk_node_parts: List[np.ndarray] = []
    group_slices: List[Tuple[int, int, np.ndarray, int]] = []
    chunk_offset = 0
    for group_id, (set_size, node_matrix, prob_matrix) in enumerate(group_tables):
        selected_requests = np.flatnonzero(request_group == group_id)
        if selected_requests.size == 0:
            continue
        rows = file_row[file_positions[selected_requests]]
        positions = batch_systematic_inclusion_sample(prob_matrix[rows], scheduler_rng)
        chunk_nodes = np.take_along_axis(node_matrix[rows], positions, axis=1)
        chunk_req_parts.append(np.repeat(selected_requests, set_size))
        chunk_node_parts.append(chunk_nodes.ravel())
        group_slices.append(
            (chunk_offset, chunk_offset + selected_requests.size * set_size,
             selected_requests, set_size)
        )
        chunk_offset += selected_requests.size * set_size

    if chunk_req_parts:
        chunk_req = np.concatenate(chunk_req_parts)
        chunk_node = np.concatenate(chunk_node_parts)
    else:
        chunk_req = np.empty(0, dtype=np.int64)
        chunk_node = np.empty(0, dtype=np.int64)
    chunk_time = times[chunk_req]

    # ------------------------------------------------------------------
    # Per-node FIFO departures via the Lindley recursion.
    # ------------------------------------------------------------------
    order = np.lexsort((chunk_time, chunk_node))
    sorted_node = chunk_node[order]
    sorted_time = chunk_time[order]
    boundaries = np.searchsorted(sorted_node, np.arange(num_nodes + 1))
    departures_sorted = np.empty_like(sorted_time)
    busy_time = np.zeros(num_nodes)
    for position in range(num_nodes):
        low, high = int(boundaries[position]), int(boundaries[position + 1])
        if low == high:
            continue
        service = model.service(node_ids[position])
        draws = np.asarray(service.sample(node_rng, size=high - low), dtype=float)
        departures_sorted[low:high] = lindley_departures(sorted_time[low:high], draws)
        busy_time[position] = float(draws.sum())
    departures = np.empty_like(departures_sorted)
    departures[order] = departures_sorted

    # ------------------------------------------------------------------
    # Fork-join: segmented max over each request's chunks, plus the cache.
    # ------------------------------------------------------------------
    completion = times.copy()
    for low, high, selected_requests, set_size in group_slices:
        per_request = fork_join_max(
            departures[low:high], selected_requests.size, set_size
        )
        completion[selected_requests] = np.maximum(
            completion[selected_requests], per_request
        )

    if config.cache_service is not None and num_requests:
        # The cache is an infinite-server device (concurrency=None in the
        # event engine's CacheDevice): every cached chunk completes at
        # arrival + an independent service draw, and the fork-join takes
        # the max over the d_i draws of the request.
        for cached_count in np.unique(request_d):
            if cached_count <= 0:
                continue
            selected = np.flatnonzero(request_d == cached_count)
            draws = np.asarray(
                config.cache_service.sample(
                    cache_rng, size=(selected.size, int(cached_count))
                ),
                dtype=float,
            )
            cache_completion = times[selected] + fork_join_max(
                draws.ravel(), selected.size, int(cached_count)
            )
            completion[selected] = np.maximum(completion[selected], cache_completion)

    # ------------------------------------------------------------------
    # Metrics assembly.
    # ------------------------------------------------------------------
    latencies = completion - times
    recorded = times >= config.warmup

    metrics = LatencyMetrics()
    if num_requests:
        recorded_files = file_positions[recorded]
        recorded_latencies = latencies[recorded]
        sort_by_file = np.argsort(recorded_files, kind="stable")
        counts = np.bincount(recorded_files, minlength=num_files)
        splits = np.cumsum(counts)[:-1]
        for position, chunk in enumerate(
            np.split(recorded_latencies[sort_by_file], splits)
        ):
            if chunk.size:
                metrics.per_file[file_ids[position]] = chunk.tolist()

    slot_counter = None
    if config.slot_length is not None:
        num_slots = int(np.ceil(config.horizon / config.slot_length))
        slot_counter = SlotCounter(slot_length=config.slot_length, num_slots=num_slots)
        if num_requests:
            slots = (times // config.slot_length).astype(np.int64)
            in_range = slots < num_slots
            slot_counter.cache_counts[:] = np.bincount(
                slots[in_range], weights=request_d[in_range], minlength=num_slots
            ).astype(int)
            slot_counter.storage_counts[:] = np.bincount(
                slots[in_range], weights=request_s[in_range], minlength=num_slots
            ).astype(int)

    utilization = {
        node_ids[position]: min(float(busy_time[position]) / config.horizon, 1.0)
        for position in range(num_nodes)
    }
    per_node_counts = np.bincount(chunk_node, minlength=num_nodes)
    per_node_chunks = {
        node_ids[position]: int(per_node_counts[position])
        for position in range(num_nodes)
    }

    return SimulationResult(
        metrics=metrics,
        slot_counter=slot_counter,
        node_utilization=utilization,
        requests_completed=int(np.count_nonzero(recorded)),
        chunks_from_cache=int(request_d.sum()),
        chunks_from_storage=int(request_s.sum()),
        horizon=config.horizon,
        per_node_chunks=per_node_chunks,
    )
