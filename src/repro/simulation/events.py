"""Minimal discrete-event engine: a time-ordered event queue.

The simulator only needs a priority queue of timestamped events with
deterministic tie-breaking (insertion order), which this module provides.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.exceptions import SimulationError


@dataclass(order=True)
class Event:
    """A scheduled event.

    Events compare by ``(time, sequence)`` so that simultaneous events fire
    in insertion order, which keeps runs reproducible.
    """

    time: float
    sequence: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)
    callback: Optional[Callable[["Event"], None]] = field(compare=False, default=None)


class EventQueue:
    """A simple binary-heap event queue with a monotonically advancing clock."""

    def __init__(self):
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulation time (time of the last popped event)."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def is_empty(self) -> bool:
        """Whether no events remain."""
        return not self._heap

    def schedule(
        self,
        time: float,
        kind: str,
        payload: Any = None,
        callback: Optional[Callable[[Event], None]] = None,
    ) -> Event:
        """Insert an event at absolute ``time``.

        Raises
        ------
        SimulationError
            If the event is scheduled in the past.
        """
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        event = Event(
            time=float(time),
            sequence=next(self._counter),
            kind=kind,
            payload=payload,
            callback=callback,
        )
        heapq.heappush(self._heap, event)
        return event

    def schedule_after(
        self,
        delay: float,
        kind: str,
        payload: Any = None,
        callback: Optional[Callable[[Event], None]] = None,
    ) -> Event:
        """Insert an event ``delay`` time units after the current time."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule(self._now + delay, kind, payload, callback)

    def pop(self) -> Event:
        """Remove and return the earliest event, advancing the clock."""
        if not self._heap:
            raise SimulationError("cannot pop from an empty event queue")
        event = heapq.heappop(self._heap)
        self._now = event.time
        return event

    def peek_time(self) -> Optional[float]:
        """Time of the next event, or ``None`` if the queue is empty."""
        if not self._heap:
            return None
        return self._heap[0].time

    def run_until(self, end_time: float) -> int:
        """Pop and dispatch events (via their callbacks) until ``end_time``.

        Returns the number of events processed.  Events without callbacks
        are simply discarded.
        """
        processed = 0
        while self._heap and self._heap[0].time <= end_time:
            event = self.pop()
            if event.callback is not None:
                event.callback(event)
            processed += 1
        self._now = max(self._now, end_time)
        return processed
