"""Arrival-process generators for the simulator.

File requests arrive according to (possibly non-homogeneous) Poisson
processes, one per file.  The generators here pre-draw arrival timelines so
the simulator can merge them into a single chronological stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.exceptions import WorkloadError


@dataclass
class PoissonArrivalProcess:
    """Homogeneous Poisson arrivals for a single file."""

    file_id: str
    rate: float

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise WorkloadError(
                f"arrival rate for {self.file_id!r} must be non-negative"
            )

    def generate(self, horizon: float, rng: np.random.Generator) -> List[float]:
        """Draw all arrival times in ``[0, horizon)``."""
        if horizon <= 0:
            raise WorkloadError("horizon must be positive")
        if self.rate == 0.0:
            return []
        times: List[float] = []
        current = 0.0
        while True:
            current += rng.exponential(1.0 / self.rate)
            if current >= horizon:
                break
            times.append(current)
        return times


@dataclass
class NonHomogeneousPoissonArrivals:
    """Piecewise-constant-rate Poisson arrivals for a single file.

    The rate function is given as a list of ``(start_time, rate)`` break
    points; each rate applies from its start time until the next one.  This
    models the paper's time-bin structure where the rate of a file changes
    between bins.
    """

    file_id: str
    breakpoints: Sequence[Tuple[float, float]]

    def __post_init__(self) -> None:
        if not self.breakpoints:
            raise WorkloadError("at least one (time, rate) breakpoint is required")
        previous = -float("inf")
        for start, rate in self.breakpoints:
            if start <= previous:
                raise WorkloadError("breakpoints must have strictly increasing times")
            if rate < 0:
                raise WorkloadError("rates must be non-negative")
            previous = start

    def rate_at(self, time: float) -> float:
        """The instantaneous rate at ``time``."""
        current = 0.0
        for start, rate in self.breakpoints:
            if time >= start:
                current = rate
            else:
                break
        return current

    def generate(self, horizon: float, rng: np.random.Generator) -> List[float]:
        """Draw arrivals in ``[0, horizon)`` by simulating each constant piece."""
        if horizon <= 0:
            raise WorkloadError("horizon must be positive")
        times: List[float] = []
        points = list(self.breakpoints) + [(horizon, 0.0)]
        for (start, rate), (next_start, _) in zip(points[:-1], points[1:]):
            segment_end = min(next_start, horizon)
            if rate == 0.0 or start >= horizon:
                continue
            current = start
            while True:
                current += rng.exponential(1.0 / rate)
                if current >= segment_end:
                    break
                times.append(current)
        return times


def merge_arrival_streams(
    streams: Dict[str, List[float]]
) -> List[Tuple[float, str]]:
    """Merge per-file arrival times into one chronological ``(time, file)`` list."""
    merged: List[Tuple[float, str]] = []
    for file_id, times in streams.items():
        merged.extend((time, file_id) for time in times)
    merged.sort(key=lambda item: item[0])
    return merged


def generate_request_stream(
    arrival_rates: Dict[str, float],
    horizon: float,
    rng: np.random.Generator,
) -> List[Tuple[float, str]]:
    """Generate a merged request stream for homogeneous per-file rates."""
    streams = {
        file_id: PoissonArrivalProcess(file_id, rate).generate(horizon, rng)
        for file_id, rate in arrival_rates.items()
    }
    return merge_arrival_streams(streams)
