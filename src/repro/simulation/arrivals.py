"""Arrival-process generators for the simulator.

File requests arrive according to (possibly non-homogeneous) Poisson
processes, one per file.  The generators here pre-draw arrival timelines so
the simulator can merge them into a single chronological stream.

All generators are vectorised: a homogeneous Poisson process on ``[0, T)``
is drawn as a Poisson-distributed count ``N ~ Poisson(rate * T)`` followed
by ``N`` sorted uniforms on ``[0, T)`` (the order-statistics property of the
Poisson process), which is exactly equivalent in distribution to summing
exponential gaps but runs as two numpy calls instead of a Python loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.exceptions import WorkloadError


def _uniform_order_statistics(
    start: float, end: float, rate: float, rng: np.random.Generator
) -> np.ndarray:
    """Draw one homogeneous Poisson path on ``[start, end)`` vectorised."""
    span = end - start
    if span <= 0 or rate == 0.0:
        return np.empty(0, dtype=float)
    count = int(rng.poisson(rate * span))
    if count == 0:
        return np.empty(0, dtype=float)
    times = start + span * rng.random(count)
    times.sort()
    return times


@dataclass
class PoissonArrivalProcess:
    """Homogeneous Poisson arrivals for a single file."""

    file_id: str
    rate: float

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise WorkloadError(
                f"arrival rate for {self.file_id!r} must be non-negative"
            )

    def generate_array(self, horizon: float, rng: np.random.Generator) -> np.ndarray:
        """Draw all arrival times in ``[0, horizon)`` as a sorted array.

        Uses the vectorised count-plus-order-statistics draw; equivalent in
        distribution to :meth:`generate` but with a different consumption of
        the random stream (two bulk draws instead of one draw per arrival).
        """
        if horizon <= 0:
            raise WorkloadError("horizon must be positive")
        return _uniform_order_statistics(0.0, horizon, self.rate, rng)

    def generate(self, horizon: float, rng: np.random.Generator) -> List[float]:
        """Draw all arrival times in ``[0, horizon)``.

        Kept as the legacy sequential exponential-gap draw because the
        cluster emulation (``CephLikeCluster.run_read_benchmark``) feeds it
        raw integer seeds and the Fig. 10/11 regression expectations pin
        those exact sample paths; new vectorised consumers should prefer
        :meth:`generate_array` or :func:`generate_request_arrays`.
        """
        if horizon <= 0:
            raise WorkloadError("horizon must be positive")
        if self.rate == 0.0:
            return []
        times: List[float] = []
        current = 0.0
        while True:
            current += rng.exponential(1.0 / self.rate)
            if current >= horizon:
                break
            times.append(current)
        return times


@dataclass
class NonHomogeneousPoissonArrivals:
    """Piecewise-constant-rate Poisson arrivals for a single file.

    The rate function is given as a list of ``(start_time, rate)`` break
    points; each rate applies from its start time until the next one.  This
    models the paper's time-bin structure where the rate of a file changes
    between bins.
    """

    file_id: str
    breakpoints: Sequence[Tuple[float, float]]

    def __post_init__(self) -> None:
        if not self.breakpoints:
            raise WorkloadError("at least one (time, rate) breakpoint is required")
        previous = -float("inf")
        for start, rate in self.breakpoints:
            if start <= previous:
                raise WorkloadError("breakpoints must have strictly increasing times")
            if rate < 0:
                raise WorkloadError("rates must be non-negative")
            previous = start

    def rate_at(self, time: float) -> float:
        """The instantaneous rate at ``time``."""
        current = 0.0
        for start, rate in self.breakpoints:
            if time >= start:
                current = rate
            else:
                break
        return current

    def generate_array(self, horizon: float, rng: np.random.Generator) -> np.ndarray:
        """Draw arrivals in ``[0, horizon)``, one vectorised draw per piece."""
        if horizon <= 0:
            raise WorkloadError("horizon must be positive")
        pieces: List[np.ndarray] = []
        points = list(self.breakpoints) + [(horizon, 0.0)]
        for (start, rate), (next_start, _) in zip(points[:-1], points[1:]):
            segment_end = min(next_start, horizon)
            if rate == 0.0 or start >= horizon:
                continue
            pieces.append(_uniform_order_statistics(start, segment_end, rate, rng))
        if not pieces:
            return np.empty(0, dtype=float)
        return np.concatenate(pieces)

    def generate(self, horizon: float, rng: np.random.Generator) -> List[float]:
        """Draw arrivals in ``[0, horizon)`` by simulating each constant piece."""
        if horizon <= 0:
            raise WorkloadError("horizon must be positive")
        times: List[float] = []
        points = list(self.breakpoints) + [(horizon, 0.0)]
        for (start, rate), (next_start, _) in zip(points[:-1], points[1:]):
            segment_end = min(next_start, horizon)
            if rate == 0.0 or start >= horizon:
                continue
            current = start
            while True:
                current += rng.exponential(1.0 / rate)
                if current >= segment_end:
                    break
                times.append(current)
        return times


def merge_arrival_streams(
    streams: Dict[str, List[float]]
) -> List[Tuple[float, str]]:
    """Merge per-file arrival times into one chronological ``(time, file)`` list."""
    merged: List[Tuple[float, str]] = []
    for file_id, times in streams.items():
        merged.extend((time, file_id) for time in times)
    merged.sort(key=lambda item: item[0])
    return merged


def generate_request_arrays(
    arrival_rates: Dict[str, float],
    horizon: float,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray, List[str]]:
    """Generate a merged request stream as flat arrays (the batch-engine path).

    Returns
    -------
    tuple
        ``(times, file_indices, file_ids)`` where ``times`` is sorted
        ascending, ``file_indices[r]`` indexes into ``file_ids``, and the
        per-file arrival counts are Poisson with the requested rates.  All
        of it is drawn in O(total requests) numpy work: one Poisson count
        vector, one uniform block, one argsort.
    """
    if horizon <= 0:
        raise WorkloadError("horizon must be positive")
    file_ids = list(arrival_rates)
    rates = np.fromiter(
        (arrival_rates[file_id] for file_id in file_ids),
        dtype=float,
        count=len(file_ids),
    )
    if np.any(rates < 0):
        raise WorkloadError("arrival rates must be non-negative")
    counts = rng.poisson(rates * horizon)
    total = int(counts.sum())
    times = horizon * rng.random(total)
    file_indices = np.repeat(np.arange(len(file_ids), dtype=np.int64), counts)
    order = np.argsort(times, kind="stable")
    return times[order], file_indices[order], file_ids


def generate_request_stream(
    arrival_rates: Dict[str, float],
    horizon: float,
    rng: np.random.Generator,
) -> List[Tuple[float, str]]:
    """Generate a merged request stream for homogeneous per-file rates.

    Keeps the legacy per-file sequential draws: the cluster emulation
    passes raw integer seeds here and the Fig. 10/11 regression tests pin
    those sample paths.  The batch engine uses
    :func:`generate_request_arrays` instead.
    """
    streams = {
        file_id: PoissonArrivalProcess(file_id, rate).generate(horizon, rng)
        for file_id, rate in arrival_rates.items()
    }
    return merge_arrival_streams(streams)
