"""Storage-node and cache-device models for the discrete-event simulator.

A storage node is a single-server FIFO queue with an arbitrary service-time
distribution (Section III of the paper: "Each storage node buffers requests
in a common queue of infinite capacity and process them in a FIFO manner").
The cache device serves chunk reads with either zero delay (the analytical
model's assumption) or a configurable fast-device distribution (the SSD
latencies of Table V).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.exceptions import SimulationError
from repro.queueing.distributions import ServiceDistribution


@dataclass
class ChunkServiceRecord:
    """Bookkeeping for one chunk request handled by a node or the cache."""

    file_id: str
    request_id: int
    arrival_time: float
    start_time: float
    completion_time: float

    @property
    def waiting_time(self) -> float:
        """Time spent waiting in the queue before service began."""
        return self.start_time - self.arrival_time

    @property
    def sojourn_time(self) -> float:
        """Total time from arrival to completion (queueing plus service)."""
        return self.completion_time - self.arrival_time


class StorageNodeQueue:
    """A single-server FIFO queue representing one storage node / OSD.

    The queue is *work-conserving*: because service is FIFO and the node has
    a single server, the completion time of a newly arriving chunk request
    equals ``max(now, last_completion) + service_sample``.  This lets the
    simulator schedule completions directly without explicit busy/idle
    events, which keeps large runs fast while producing exactly the same
    sample paths as an explicit server model.
    """

    def __init__(
        self,
        node_id: int,
        service: ServiceDistribution,
        rng: Optional[np.random.Generator] = None,
        keep_records: bool = False,
    ):
        self.node_id = node_id
        self._service = service
        self._rng = rng if rng is not None else np.random.default_rng()
        self._last_completion = 0.0
        self._busy_until = 0.0
        self._chunks_served = 0
        self._total_busy_time = 0.0
        self._keep_records = keep_records
        self._records: List[ChunkServiceRecord] = []

    @property
    def service(self) -> ServiceDistribution:
        """The node's chunk service-time distribution."""
        return self._service

    @property
    def chunks_served(self) -> int:
        """Number of chunk requests handled so far."""
        return self._chunks_served

    @property
    def records(self) -> List[ChunkServiceRecord]:
        """Per-chunk records (only populated when ``keep_records=True``)."""
        return list(self._records)

    def busy_fraction(self, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` the node spent serving chunks."""
        if horizon <= 0:
            raise SimulationError("horizon must be positive")
        return min(self._total_busy_time / horizon, 1.0)

    def enqueue_chunk(
        self, arrival_time: float, file_id: str, request_id: int
    ) -> float:
        """Accept a chunk request at ``arrival_time`` and return its completion time."""
        if arrival_time < 0:
            raise SimulationError("arrival time must be non-negative")
        start_time = max(arrival_time, self._busy_until)
        service_time = float(self._service.sample(self._rng))
        completion = start_time + service_time
        self._busy_until = completion
        self._last_completion = completion
        self._chunks_served += 1
        self._total_busy_time += service_time
        if self._keep_records:
            self._records.append(
                ChunkServiceRecord(
                    file_id=file_id,
                    request_id=request_id,
                    arrival_time=arrival_time,
                    start_time=start_time,
                    completion_time=completion,
                )
            )
        return completion

    def queue_length_proxy(self, now: float) -> float:
        """Remaining backlog (in time units) at time ``now``."""
        return max(self._busy_until - now, 0.0)

    def reset(self) -> None:
        """Clear all queue state (used between simulation runs)."""
        self._last_completion = 0.0
        self._busy_until = 0.0
        self._chunks_served = 0
        self._total_busy_time = 0.0
        self._records.clear()


class CacheDevice:
    """The compute-server cache serving functional chunks.

    Parameters
    ----------
    service:
        Optional service-time distribution of the cache device (e.g. the SSD
        read latencies of Table V).  When ``None`` cache reads complete
        instantaneously, matching the analytical model in which cached
        chunks do not contribute to latency.
    concurrency:
        Number of chunk reads the device can serve in parallel.  SSDs serve
        many requests concurrently, so the default models the cache as an
        infinite-server device; setting ``concurrency=1`` turns it into a
        FIFO queue like a storage node.
    """

    def __init__(
        self,
        service: Optional[ServiceDistribution] = None,
        rng: Optional[np.random.Generator] = None,
        concurrency: Optional[int] = None,
    ):
        self._service = service
        self._rng = rng if rng is not None else np.random.default_rng()
        self._concurrency = concurrency
        self._busy_until: List[float] = [0.0] * (concurrency or 0)
        self._chunks_served = 0

    @property
    def chunks_served(self) -> int:
        """Number of chunk reads served from the cache."""
        return self._chunks_served

    def read_chunk(self, arrival_time: float) -> float:
        """Serve one cached chunk read and return its completion time."""
        self._chunks_served += 1
        if self._service is None:
            return arrival_time
        service_time = float(self._service.sample(self._rng))
        if self._concurrency is None:
            return arrival_time + service_time
        # Finite concurrency: pick the earliest-free slot.
        slot = int(np.argmin(self._busy_until))
        start = max(arrival_time, self._busy_until[slot])
        completion = start + service_time
        self._busy_until[slot] = completion
        return completion

    def reset(self) -> None:
        """Clear device state."""
        self._busy_until = [0.0] * (self._concurrency or 0)
        self._chunks_served = 0
