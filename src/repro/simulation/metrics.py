"""Latency and throughput metrics collected by the simulator."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import SimulationError


@dataclass
class LatencyMetrics:
    """Accumulates per-request latency samples, optionally per file."""

    per_file: Dict[str, List[float]] = field(default_factory=dict)

    def record(self, file_id: str, latency: float) -> None:
        """Add one completed request's latency."""
        if latency < 0:
            raise SimulationError(f"latency must be non-negative, got {latency}")
        self.per_file.setdefault(file_id, []).append(float(latency))

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    @property
    def total_requests(self) -> int:
        """Number of recorded requests across all files."""
        return sum(len(samples) for samples in self.per_file.values())

    def all_latencies(self) -> np.ndarray:
        """All latency samples as a flat array."""
        if not self.per_file:
            return np.array([], dtype=float)
        return np.concatenate([np.asarray(v, dtype=float) for v in self.per_file.values()])

    def mean_latency(self) -> float:
        """Mean latency over all requests."""
        samples = self.all_latencies()
        if samples.size == 0:
            raise SimulationError("no latency samples recorded")
        return float(samples.mean())

    def file_mean_latency(self, file_id: str) -> float:
        """Mean latency of one file's requests."""
        samples = self.per_file.get(file_id)
        if not samples:
            raise SimulationError(f"no latency samples for file {file_id!r}")
        return float(np.mean(samples))

    def weighted_mean_latency(self, weights: Optional[Dict[str, float]] = None) -> float:
        """Mean latency weighted per file (defaults to request-count weighting)."""
        if weights is None:
            return self.mean_latency()
        numerator = 0.0
        denominator = 0.0
        for file_id, weight in weights.items():
            samples = self.per_file.get(file_id)
            if not samples:
                continue
            numerator += weight * float(np.mean(samples))
            denominator += weight
        if denominator <= 0:
            raise SimulationError("weights cover no recorded files")
        return numerator / denominator

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of all latencies."""
        samples = self.all_latencies()
        if samples.size == 0:
            raise SimulationError("no latency samples recorded")
        return float(np.percentile(samples, q))

    def standard_error(self) -> float:
        """Standard error of the overall mean latency."""
        samples = self.all_latencies()
        if samples.size < 2:
            return float("inf")
        return float(samples.std(ddof=1) / math.sqrt(samples.size))

    def summary(self) -> Dict[str, float]:
        """Dictionary summary with mean, median, p95, p99 and count."""
        samples = self.all_latencies()
        if samples.size == 0:
            raise SimulationError("no latency samples recorded")
        return {
            "count": float(samples.size),
            "mean": float(samples.mean()),
            "median": float(np.percentile(samples, 50)),
            "p95": float(np.percentile(samples, 95)),
            "p99": float(np.percentile(samples, 99)),
            "max": float(samples.max()),
        }


@dataclass
class SlotCounter:
    """Counts chunk requests served by the cache vs storage per time slot.

    Used to regenerate Fig. 7: a time bin is divided into equal slots and the
    number of chunks fetched from the cache and from the storage nodes is
    reported per slot.
    """

    slot_length: float
    num_slots: int
    cache_counts: np.ndarray = field(init=False)
    storage_counts: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if self.slot_length <= 0 or self.num_slots <= 0:
            raise SimulationError("slot_length and num_slots must be positive")
        self.cache_counts = np.zeros(self.num_slots, dtype=int)
        self.storage_counts = np.zeros(self.num_slots, dtype=int)

    def _slot_for(self, time: float) -> Optional[int]:
        slot = int(time // self.slot_length)
        if 0 <= slot < self.num_slots:
            return slot
        return None

    def record_cache_chunks(self, time: float, count: int) -> None:
        """Record ``count`` chunks served from the cache at ``time``."""
        slot = self._slot_for(time)
        if slot is not None:
            self.cache_counts[slot] += count

    def record_storage_chunks(self, time: float, count: int) -> None:
        """Record ``count`` chunks served from storage nodes at ``time``."""
        slot = self._slot_for(time)
        if slot is not None:
            self.storage_counts[slot] += count

    @property
    def total_cache_chunks(self) -> int:
        """Chunks served from the cache over the whole horizon."""
        return int(self.cache_counts.sum())

    @property
    def total_storage_chunks(self) -> int:
        """Chunks served from storage over the whole horizon."""
        return int(self.storage_counts.sum())

    def cache_fraction(self) -> float:
        """Overall fraction of chunks served from the cache."""
        total = self.total_cache_chunks + self.total_storage_chunks
        if total == 0:
            return 0.0
        return self.total_cache_chunks / total

    def as_rows(self) -> List[Dict[str, float]]:
        """One dictionary per slot (for tabular experiment output)."""
        rows = []
        for slot in range(self.num_slots):
            rows.append(
                {
                    "slot": slot,
                    "start_time": slot * self.slot_length,
                    "cache_chunks": int(self.cache_counts[slot]),
                    "storage_chunks": int(self.storage_counts[slot]),
                }
            )
        return rows
