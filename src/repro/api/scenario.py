"""The declarative :class:`Scenario` description of one end-to-end run.

A scenario names *what* to run -- workload, erasure code, cache policy,
solver, simulation engine, seed, scale -- and the
:class:`~repro.api.session.Session` facade turns it into the paper's
pipeline (model -> Algorithm-1 optimization -> probabilistic scheduling ->
simulation).  Every component reference is a registry name, so scenarios
serialize cleanly (``to_dict`` / ``from_dict``) and new backends plug in
without touching this class.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from pathlib import PurePath
from types import MappingProxyType
from typing import Any, ClassVar, Dict, Mapping, Optional, Tuple

from repro.api.registry import (
    BASELINES,
    CONTROLLERS,
    ENGINES,
    FAULTS,
    KERNEL_BACKENDS,
    POLICIES,
    SOLVERS,
    WORKLOADS,
)
from repro.exceptions import RegistryError, ScenarioError

#: Recognised experiment scales.
SCALES = ("fast", "paper")

#: The cache policy that runs Algorithm 1 (anything else is a baseline name).
OPTIMAL_POLICY = "optimal"


@dataclass(frozen=True)
class Scenario:
    """Frozen, validated description of one optimize/schedule/simulate run.

    Attributes
    ----------
    workload:
        Registered workload builder (``repro.api.list_workloads()``).
    num_files, cache_capacity:
        Number of files and cache size in chunks.
    code:
        Erasure code ``(n, k)``.
    policy:
        ``"optimal"`` (Algorithm 1), a registered baseline name, or a
        registered cache policy name (``repro.api.list_policies()``); a
        cache policy is warmed on a seeded trace and its chunk-occupancy
        snapshot becomes the placement.
    solver:
        Registered Prob-Pi solver, used when ``policy == "optimal"``.
    engine:
        Registered simulation engine (sweeps default to ``"batch"``).
    backend:
        Registered kernel backend (``repro.api.list_kernel_backends()``)
        the queueing kernels compute in; ``"numpy"`` is the bit-exact
        reference, ``"array_api_strict"``/``"cupy"``/``"jax"`` when their
        modules are importable.
    seed:
        Root seed for model construction and every simulation stream.
    scale:
        ``"fast"`` or ``"paper"``; picks the default simulation horizon.
    tolerance:
        Algorithm-1 outer-loop convergence threshold (seconds).
    rate_scale:
        Multiplier applied to every arrival rate (load sweeps).
    simulate:
        Whether to replay the placement through the simulator.
    horizon:
        Simulation horizon in model time units; ``None`` uses the scale
        default (see :attr:`DEFAULT_HORIZONS`).
    warmup_fraction:
        Fraction of the horizon discarded as simulation warm-up.
    workload_params:
        Extra keyword arguments for the workload builder.
    solver_params:
        Extra keyword arguments for the solver (e.g. ``pi_max_iterations``).
    policy_params:
        Extra keyword arguments for a registered cache policy (e.g.
        ``ttl`` for the TTL policy); only valid with a cache policy.
    faults:
        Optional registered fault-generator name
        (``repro.api.list_faults()``: ``osd_crash``, ``degraded_read``,
        ``straggler``, ``repair_traffic``, ...).  When set, cluster-replay
        runs driven by this scenario execute under the compiled fault
        schedule; ``None`` (default) replays a healthy cluster.
    fault_params:
        Keyword parameters for the fault generator (e.g. ``crash_rate``,
        ``downtime_ms`` for ``osd_crash``); validated eagerly against the
        generator's signature, only valid together with ``faults``.
    controller:
        Optional registered online-controller name
        (``repro.api.list_controllers()``: ``online``, ``cold``,
        ``periodic``, ...).  When set, the session samples the workload's
        request stream and drives it through the controller -- streaming
        drift detection, warm re-solves, bounded-churn swaps -- landing a
        :class:`~repro.control.controller.ControlResult` on the run;
        ``None`` (default) skips the control stage.
    controller_params:
        Keyword parameters for the controller builder (e.g. ``window``,
        ``change_threshold``, ``churn_budget`` for ``online``); validated
        eagerly against the builder's signature, only valid together with
        ``controller``.
    """

    workload: str = "paper_default"
    num_files: int = 100
    cache_capacity: int = 50
    code: Tuple[int, int] = (7, 4)
    policy: str = OPTIMAL_POLICY
    solver: str = "projected_gradient"
    engine: str = "batch"
    backend: str = "numpy"
    seed: int = 2016
    scale: str = "fast"
    tolerance: float = 0.01
    rate_scale: float = 1.0
    simulate: bool = True
    horizon: Optional[float] = None
    warmup_fraction: float = 0.05
    workload_params: Mapping[str, Any] = field(default_factory=dict)
    solver_params: Mapping[str, Any] = field(default_factory=dict)
    policy_params: Mapping[str, Any] = field(default_factory=dict)
    faults: Optional[str] = None
    fault_params: Mapping[str, Any] = field(default_factory=dict)
    controller: Optional[str] = None
    controller_params: Mapping[str, Any] = field(default_factory=dict)

    #: Default simulation horizons per scale (model time units).
    DEFAULT_HORIZONS: ClassVar[Dict[str, float]] = {"fast": 200_000.0, "paper": 2_000_000.0}

    def __post_init__(self) -> None:
        if isinstance(self.code, (str, bytes)) or not hasattr(self.code, "__len__") or len(self.code) != 2:
            raise ScenarioError(f"code must be a (n, k) pair, got {self.code!r}")
        try:
            object.__setattr__(self, "code", tuple(int(value) for value in self.code))
        except (TypeError, ValueError):
            raise ScenarioError(f"code must be a pair of integers, got {self.code!r}") from None
        # Path-like values (e.g. a trace file path) become strings so the
        # scenario stays JSON-serializable and round-trips via from_dict.
        workload_params = {
            key: str(value) if isinstance(value, PurePath) else value
            for key, value in dict(self.workload_params).items()
        }
        object.__setattr__(self, "workload_params", MappingProxyType(workload_params))
        object.__setattr__(self, "solver_params", MappingProxyType(dict(self.solver_params)))
        object.__setattr__(self, "policy_params", MappingProxyType(dict(self.policy_params)))
        object.__setattr__(self, "fault_params", MappingProxyType(dict(self.fault_params)))
        object.__setattr__(
            self, "controller_params", MappingProxyType(dict(self.controller_params))
        )
        self._validate()

    def __hash__(self) -> int:
        # The generated hash would choke on the MappingProxyType fields.
        # Param *values* stay out of the hash: the generated __eq__ compares
        # them by value (1 == 1.0, order-insensitive dicts), which no value
        # serialization reproduces; hashing only the keys keeps the
        # hash/eq contract, equal-keyed scenarios merely collide.
        return hash(
            (
                self.workload,
                self.num_files,
                self.cache_capacity,
                self.code,
                self.policy,
                self.solver,
                self.engine,
                self.backend,
                self.seed,
                self.scale,
                self.tolerance,
                self.rate_scale,
                self.simulate,
                self.horizon,
                self.warmup_fraction,
                tuple(sorted(self.workload_params)),
                tuple(sorted(self.solver_params)),
                tuple(sorted(self.policy_params)),
                self.faults,
                tuple(sorted(self.fault_params)),
                self.controller,
                tuple(sorted(self.controller_params)),
            )
        )

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def _validate(self) -> None:
        # Registry lookups raise RegistryError listing the known names.
        # The workload builder's signature then vets workload_params eagerly,
        # so an unknown parameter fails at construction time (listing the
        # accepted names) instead of deep inside a run.
        WORKLOADS.get(self.workload).validate_params(self.workload_params)
        ENGINES.get(self.engine)
        SOLVERS.get(self.solver)
        KERNEL_BACKENDS.get(self.backend)
        if (
            self.policy != OPTIMAL_POLICY
            and self.policy not in BASELINES
            and self.policy not in POLICIES
        ):
            baselines = ", ".join(BASELINES.names()) or "<none>"
            policies = ", ".join(POLICIES.names()) or "<none>"
            raise RegistryError(
                f"unknown baseline or cache policy {self.policy!r}; "
                f"registered baselines: {baselines}; "
                f"registered cache policies: {policies}"
            )
        if self.policy_params and not self.uses_cache_policy:
            raise ScenarioError(
                f"policy_params only apply to a registered cache policy, "
                f"not policy={self.policy!r}"
            )
        if self.faults is not None:
            if not isinstance(self.faults, str):
                raise ScenarioError(
                    f"faults must be a registered fault-generator name, got {self.faults!r}"
                )
            FAULTS.get(self.faults).validate_params(self.fault_params)
        elif self.fault_params:
            raise ScenarioError("fault_params require a faults generator name")
        if self.controller is not None:
            if not isinstance(self.controller, str):
                raise ScenarioError(
                    f"controller must be a registered controller name, got {self.controller!r}"
                )
            CONTROLLERS.get(self.controller).validate_params(self.controller_params)
        elif self.controller_params:
            raise ScenarioError("controller_params require a controller name")
        # Type checks first, so e.g. string-typed numbers from a config file
        # raise ScenarioError instead of a raw comparison TypeError.
        for name, value in (("num_files", self.num_files), ("cache_capacity", self.cache_capacity)):
            if not isinstance(value, int) or isinstance(value, bool):
                raise ScenarioError(f"{name} must be an integer, got {value!r}")
        numeric = [
            ("tolerance", self.tolerance),
            ("rate_scale", self.rate_scale),
            ("warmup_fraction", self.warmup_fraction),
        ]
        if self.horizon is not None:
            numeric.append(("horizon", self.horizon))
        for name, value in numeric:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ScenarioError(f"{name} must be a number, got {value!r}")
        n, k = self.code
        if k < 1 or n < k:
            raise ScenarioError(f"code must satisfy n >= k >= 1, got (n, k) = ({n}, {k})")
        if self.num_files < 1:
            raise ScenarioError(f"num_files must be positive, got {self.num_files}")
        if self.cache_capacity < 0:
            raise ScenarioError(f"cache_capacity must be non-negative, got {self.cache_capacity}")
        if self.scale not in SCALES:
            raise ScenarioError(f"scale must be one of {SCALES}, got {self.scale!r}")
        if self.tolerance <= 0:
            raise ScenarioError(f"tolerance must be positive, got {self.tolerance}")
        if self.rate_scale <= 0:
            raise ScenarioError(f"rate_scale must be positive, got {self.rate_scale}")
        if self.horizon is not None and self.horizon <= 0:
            raise ScenarioError(f"horizon must be positive, got {self.horizon}")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ScenarioError(
                f"warmup_fraction must lie in [0, 1), got {self.warmup_fraction}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ScenarioError(f"seed must be an integer, got {self.seed!r}")

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Erasure-code length ``n``."""
        return self.code[0]

    @property
    def k(self) -> int:
        """Erasure-code dimension ``k``."""
        return self.code[1]

    @property
    def effective_horizon(self) -> float:
        """The simulation horizon: explicit value or the scale default."""
        if self.horizon is not None:
            return self.horizon
        return self.DEFAULT_HORIZONS[self.scale]

    @property
    def uses_optimizer(self) -> bool:
        """Whether this scenario runs Algorithm 1 (vs a baseline policy)."""
        return self.policy == OPTIMAL_POLICY

    @property
    def uses_cache_policy(self) -> bool:
        """Whether ``policy`` names a registered dynamic cache policy.

        Baseline names win on collision, preserving pre-policy behaviour.
        """
        return (
            self.policy != OPTIMAL_POLICY
            and self.policy not in BASELINES
            and self.policy in POLICIES
        )

    def describe(self) -> str:
        """One-line human-readable summary."""
        policy = self.policy if not self.uses_optimizer else f"optimal/{self.solver}"
        faults = f", faults={self.faults}" if self.faults is not None else ""
        controller = (
            f", controller={self.controller}" if self.controller is not None else ""
        )
        return (
            f"Scenario({self.workload}: {self.num_files} files, "
            f"C={self.cache_capacity}, code={self.code}, policy={policy}, "
            f"engine={self.engine}, backend={self.backend}, "
            f"seed={self.seed}, scale={self.scale}{faults}{controller})"
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def replace(self, **changes: Any) -> "Scenario":
        """A new validated scenario with ``changes`` applied."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dictionary representation (round-trips via from_dict)."""
        return {
            "workload": self.workload,
            "num_files": self.num_files,
            "cache_capacity": self.cache_capacity,
            "code": list(self.code),
            "policy": self.policy,
            "solver": self.solver,
            "engine": self.engine,
            "backend": self.backend,
            "seed": self.seed,
            "scale": self.scale,
            "tolerance": self.tolerance,
            "rate_scale": self.rate_scale,
            "simulate": self.simulate,
            "horizon": self.horizon,
            "warmup_fraction": self.warmup_fraction,
            "workload_params": dict(self.workload_params),
            "solver_params": dict(self.solver_params),
            "policy_params": dict(self.policy_params),
            "faults": self.faults,
            "fault_params": dict(self.fault_params),
            "controller": self.controller,
            "controller_params": dict(self.controller_params),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        """Build a scenario from a dictionary, rejecting unknown keys."""
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ScenarioError(
                f"unknown Scenario fields {unknown}; valid fields: {sorted(known)}"
            )
        return cls(**dict(data))
