"""Uniform JSON serialization for API results and experiment outputs.

Every result type in the package is a plain dataclass tree over numpy /
python scalars; :func:`to_jsonable` converts any of them into JSON-safe
structures so the CLI's ``--json`` mode, :meth:`RunResult.to_json` and the
``BENCH_<name>.json`` writers all share one serializer.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Mapping, Union

import numpy as np


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-serializable structures.

    Dataclasses become dicts, numpy arrays become lists, numpy scalars
    become python scalars, mapping keys are stringified when needed, and
    anything else unrepresentable falls back to ``str(obj)``.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return obj if np.isfinite(obj) else str(obj)
    if isinstance(obj, np.generic):
        return to_jsonable(obj.item())
    if isinstance(obj, np.ndarray):
        return [to_jsonable(value) for value in obj.tolist()]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            field.name: to_jsonable(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
    if isinstance(obj, Mapping):
        converted = {_key(key): to_jsonable(value) for key, value in obj.items()}
        if len(converted) != len(obj):
            raise ValueError(
                f"mapping keys collide after string conversion: {sorted(map(_key, obj))}"
            )
        return converted
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(value) for value in obj]
    if isinstance(obj, (set, frozenset)):
        # key=repr keeps mixed-type sets sortable.
        return sorted((to_jsonable(value) for value in obj), key=repr)
    return str(obj)


def _key(key: Any) -> str:
    if isinstance(key, str):
        return key
    if isinstance(key, (tuple, list)):
        return ",".join(str(part) for part in key)
    return str(key)


def json_dumps(payload: Any, indent: int = 2) -> str:
    """Serialize any supported object to a JSON string."""
    return json.dumps(to_jsonable(payload), indent=indent, sort_keys=True)


def write_json(path: Union[str, Path], payload: Any, indent: int = 2) -> Path:
    """Serialize ``payload`` to ``path`` (with a trailing newline)."""
    path = Path(path)
    path.write_text(json_dumps(payload, indent=indent) + "\n")
    return path
