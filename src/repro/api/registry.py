"""Pluggable registries behind the :mod:`repro.api` facade.

Every swappable component of the pipeline -- Prob-Pi solver, simulation
engine, baseline caching policy, workload builder and experiment -- lives in
a named :class:`Registry`.  A :class:`~repro.api.scenario.Scenario` refers to
components purely by name, so new backends plug in with a decorator instead
of a code change in the facade:

    from repro.api import register_engine

    @register_engine("sharded", description="sharded multi-process engine")
    def simulate(model, placement, config):
        ...
        return SimulationResult(...)

Built-in components (the three Prob-Pi solvers, the event/batch simulation
engines, the static/exact baselines and the paper's workloads) are
registered at import time; the experiment registry is populated lazily by
importing :mod:`repro.experiments`, whose modules register themselves.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.exceptions import RegistryError

T = TypeVar("T")


class Registry(Generic[T]):
    """A named mapping from component names to registered specs.

    Parameters
    ----------
    kind:
        Human-readable component kind (``"solver"``, ``"engine"``, ...),
        used in error messages and listings.
    populate:
        Optional callable invoked once, on first lookup, to self-populate
        the registry (used by the experiment registry, whose entries live in
        the :mod:`repro.experiments` modules and register on import).
    """

    def __init__(
        self,
        kind: str,
        populate: Optional[Callable[[], None]] = None,
        plural: Optional[str] = None,
    ):
        self._kind = kind
        self._plural = plural if plural is not None else f"{kind}s"
        self._entries: Dict[str, T] = {}
        self._populate = populate
        self._populating = False

    @property
    def kind(self) -> str:
        """The component kind this registry holds."""
        return self._kind

    def _ensure_populated(self) -> None:
        if self._populate is not None and not self._populating:
            self._populating = True
            try:
                self._populate()
            finally:
                self._populating = False
            # Only drop the callback on success: a failed populate (e.g. a
            # transient ImportError) propagates and is retried next lookup
            # instead of leaving a silently empty registry.
            self._populate = None

    def register(self, name: str, entry: T, replace: bool = False) -> T:
        """Register ``entry`` under ``name``; duplicate names are an error."""
        if not name or not isinstance(name, str):
            raise RegistryError(f"{self._kind} names must be non-empty strings, got {name!r}")
        if name in self._entries and not replace:
            raise RegistryError(
                f"{self._kind} {name!r} is already registered; pass replace=True to override"
            )
        self._entries[name] = entry
        return entry

    def unregister(self, name: str) -> None:
        """Remove a registered entry (mostly for tests and plugin teardown)."""
        self._entries.pop(name, None)

    def get(self, name: str) -> T:
        """Look up a component by name, with the known names in the error."""
        self._ensure_populated()
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(sorted(self._entries)) or "<none>"
            raise RegistryError(
                f"unknown {self._kind} {name!r}; registered {self._plural}: {known}"
            ) from None

    def names(self) -> List[str]:
        """All registered names, sorted."""
        self._ensure_populated()
        return sorted(self._entries)

    def items(self) -> List[Tuple[str, T]]:
        """``(name, entry)`` pairs, sorted by name."""
        self._ensure_populated()
        return sorted(self._entries.items())

    def __contains__(self, name: object) -> bool:
        self._ensure_populated()
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self._ensure_populated()
        return len(self._entries)

    def __repr__(self) -> str:
        return f"Registry(kind={self._kind!r}, names={self.names()})"


# ----------------------------------------------------------------------
# Component specs
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SolverSpec:
    """A cache-optimization backend.

    ``optimize(model, **kwargs)`` must return an
    :class:`~repro.core.algorithm.OptimizationResult`; ``kwargs`` carry the
    scenario's ``tolerance``, optional ``warm_start`` / ``time_bin`` and any
    ``solver_params``.
    """

    name: str
    description: str
    optimize: Callable[..., Any]


@dataclass(frozen=True)
class EngineSpec:
    """A simulation backend.

    ``simulate(model, placement, config)`` must return a
    :class:`~repro.simulation.simulator.SimulationResult`.
    """

    name: str
    description: str
    simulate: Callable[..., Any]


@dataclass(frozen=True)
class BaselineSpec:
    """A baseline caching policy: ``build(model)`` returns a placement."""

    name: str
    description: str
    build: Callable[..., Any]


@dataclass(frozen=True)
class WorkloadSpec:
    """A workload builder behind the unified :class:`Workload` protocol.

    ``builder(scenario, **workload_params)`` returns a
    :class:`~repro.workloads.base.Workload` (or, for legacy builders, a
    bare :class:`~repro.core.model.StorageSystemModel`, coerced into a
    stationary workload).  Two builder styles are recognised:

    * *new-style* -- ``builder(scenario, *, param=..., ...)``: the
      scenario's ``workload_params`` are passed as keywords and validated
      eagerly against the signature at :class:`Scenario` construction.
    * *legacy* -- ``builder(scenario)`` (a single parameter): the builder
      reads ``scenario.workload_params`` itself; no eager validation.

    ``kind`` labels the workload family for listings: ``"stationary"``,
    ``"non-stationary"`` or ``"trace"``.
    """

    name: str
    description: str
    builder: Callable[..., Any]
    kind: str = "stationary"

    # ------------------------------------------------------------------
    # Signature introspection
    # ------------------------------------------------------------------

    def _parameters(self) -> Optional[List[Any]]:
        import inspect

        try:
            signature = inspect.signature(self.builder)
        except (TypeError, ValueError):  # builtins / C callables
            return None
        return list(signature.parameters.values())

    @property
    def legacy(self) -> bool:
        """Whether the builder takes only the scenario (pre-protocol style)."""
        parameters = self._parameters()
        if parameters is None:
            return True
        import inspect

        extra = parameters[1:]
        return not extra and not any(
            parameter.kind is inspect.Parameter.VAR_KEYWORD
            for parameter in parameters
        )

    def accepted_params(self) -> Optional[Tuple[str, ...]]:
        """The ``workload_params`` names the builder accepts.

        ``None`` means unconstrained: a legacy builder (which reads the
        params itself), an un-introspectable callable, or a builder with a
        ``**kwargs`` catch-all.
        """
        parameters = self._parameters()
        if parameters is None or self.legacy:
            return None
        import inspect

        if any(
            parameter.kind is inspect.Parameter.VAR_KEYWORD
            for parameter in parameters
        ):
            return None
        return tuple(
            parameter.name
            for parameter in parameters[1:]
            if parameter.kind
            in (
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
                inspect.Parameter.KEYWORD_ONLY,
            )
        )

    def validate_params(self, params: Any) -> None:
        """Fail fast on ``workload_params`` the builder does not accept."""
        if not params:
            return
        accepted = self.accepted_params()
        if accepted is None:
            return
        unknown = sorted(set(params) - set(accepted))
        if unknown:
            from repro.exceptions import ScenarioError

            raise ScenarioError(
                f"workload {self.name!r} does not accept workload_params "
                f"{unknown}; accepted parameters: {sorted(accepted) or '<none>'}"
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def create(self, scenario: Any) -> Any:
        """Build the scenario's :class:`Workload` (protocol-coerced)."""
        from repro.workloads.base import as_workload

        if self.legacy:
            built = self.builder(scenario)
        else:
            built = self.builder(scenario, **dict(scenario.workload_params))
        return as_workload(built, name=self.name)

    def build(self, scenario: Any) -> Any:
        """Backwards-compatible view: the workload's stationary model."""
        return self.create(scenario).model()


@dataclass(frozen=True)
class FaultSpec:
    """A seeded fault-schedule generator for the failure suite.

    ``build(num_osds, horizon_ms, rng, service_ms, **params)`` must return a
    :class:`~repro.faults.base.FaultTimeline`: the compiled piecewise-constant
    cluster state (availability masks, straggler multipliers, background
    repair jobs) the replay engines consume.  ``rng`` is a seeded
    ``numpy.random.Generator`` and ``service_ms`` the replay's nominal chunk
    service time (the default sizing for repair jobs).  The keyword names
    after those four become the accepted ``fault_params``, validated eagerly
    at :class:`Scenario` construction.
    """

    name: str
    description: str
    build: Callable[..., Any]

    def accepted_params(self) -> Optional[Tuple[str, ...]]:
        """The ``fault_params`` names the generator accepts (``None`` = any)."""
        import inspect

        try:
            signature = inspect.signature(self.build)
        except (TypeError, ValueError):  # builtins / C callables
            return None
        parameters = list(signature.parameters.values())
        if any(
            parameter.kind is inspect.Parameter.VAR_KEYWORD
            for parameter in parameters
        ):
            return None
        return tuple(
            parameter.name
            for parameter in parameters[4:]
            if parameter.kind
            in (
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
                inspect.Parameter.KEYWORD_ONLY,
            )
        )

    def validate_params(self, params: Any) -> None:
        """Fail fast on ``fault_params`` the generator does not accept."""
        if not params:
            return
        accepted = self.accepted_params()
        if accepted is None:
            return
        unknown = sorted(set(params) - set(accepted))
        if unknown:
            from repro.exceptions import ScenarioError

            raise ScenarioError(
                f"fault generator {self.name!r} does not accept fault_params "
                f"{unknown}; accepted parameters: {sorted(accepted) or '<none>'}"
            )


@dataclass(frozen=True)
class ControllerSpec:
    """An online re-optimization controller for the control subsystem.

    ``build(model, **params)`` must return a
    :class:`~repro.control.controller.OnlineController` (or subclass) bound
    to the given :class:`~repro.core.model.StorageSystemModel`.  The
    keyword names after ``model`` become the accepted
    ``controller_params``, validated eagerly at :class:`Scenario`
    construction.
    """

    name: str
    description: str
    build: Callable[..., Any]

    def accepted_params(self) -> Optional[Tuple[str, ...]]:
        """The ``controller_params`` names the builder accepts (``None`` = any)."""
        import inspect

        try:
            signature = inspect.signature(self.build)
        except (TypeError, ValueError):  # builtins / C callables
            return None
        parameters = list(signature.parameters.values())
        if any(
            parameter.kind is inspect.Parameter.VAR_KEYWORD
            for parameter in parameters
        ):
            return None
        return tuple(
            parameter.name
            for parameter in parameters[1:]
            if parameter.kind
            in (
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
                inspect.Parameter.KEYWORD_ONLY,
            )
        )

    def validate_params(self, params: Any) -> None:
        """Fail fast on ``controller_params`` the builder does not accept."""
        if not params:
            return
        accepted = self.accepted_params()
        if accepted is None:
            return
        unknown = sorted(set(params) - set(accepted))
        if unknown:
            from repro.exceptions import ScenarioError

            raise ScenarioError(
                f"controller {self.name!r} does not accept controller_params "
                f"{unknown}; accepted parameters: {sorted(accepted) or '<none>'}"
            )


@dataclass(frozen=True)
class KernelBackendSpec:
    """An array-API kernel backend for :mod:`repro.kernels`.

    ``load()`` must return a :class:`~repro.kernels.backends.KernelBackend`
    (resolved array namespace plus boundary converters).  Loading is lazy
    and cached by :func:`repro.kernels.resolve_kernel_backend`, so heavy
    imports (CuPy, JAX) only happen when the backend is actually selected.
    """

    name: str
    description: str
    load: Callable[[], Any]


@dataclass(frozen=True)
class PolicySpec:
    """A chunk-caching policy backend.

    ``factory(capacity_chunks, chunks_per_file=None, **params)`` must return
    a :class:`~repro.policies.base.ChunkCachingPolicy`; ``params`` carry the
    scenario's ``policy_params`` (e.g. ``ttl`` for the TTL policy).
    """

    name: str
    description: str
    factory: Callable[..., Any]


# ----------------------------------------------------------------------
# The registries
# ----------------------------------------------------------------------


def _import_experiment_modules() -> None:
    # The experiment modules register themselves on import (see
    # repro.api.experiments.register_experiment).
    importlib.import_module("repro.experiments")


def _import_fault_generators() -> None:
    # The built-in generators register themselves on import; lazy like the
    # experiment registry so repro.faults can import repro.api.registry
    # without a cycle.
    importlib.import_module("repro.faults.generators")


def _import_controllers() -> None:
    # The built-in controllers register themselves on import; lazy so
    # repro.control can import repro.api.registry without a cycle.
    importlib.import_module("repro.control.builtins")


SOLVERS: Registry[SolverSpec] = Registry("solver")
ENGINES: Registry[EngineSpec] = Registry("engine")
BASELINES: Registry[BaselineSpec] = Registry("baseline")
WORKLOADS: Registry[WorkloadSpec] = Registry("workload")
POLICIES: Registry[PolicySpec] = Registry("cache policy", plural="cache policies")
KERNEL_BACKENDS: Registry[KernelBackendSpec] = Registry("kernel backend")
FAULTS: Registry[FaultSpec] = Registry("fault generator", populate=_import_fault_generators)
CONTROLLERS: Registry[ControllerSpec] = Registry("controller", populate=_import_controllers)
EXPERIMENTS: Registry[Any] = Registry("experiment", populate=_import_experiment_modules)


# ----------------------------------------------------------------------
# Registration decorators
# ----------------------------------------------------------------------


def _first_doc_line(func: Callable[..., Any]) -> str:
    doc = (func.__doc__ or "").strip()
    return doc.splitlines()[0] if doc else ""


def register_solver(name: str, description: str = "") -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register ``optimize(model, **kwargs) -> OptimizationResult`` as a solver."""

    def decorate(func: Callable[..., Any]) -> Callable[..., Any]:
        SOLVERS.register(
            name, SolverSpec(name=name, description=description or _first_doc_line(func), optimize=func)
        )
        return func

    return decorate


def register_engine(name: str, description: str = "") -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register ``simulate(model, placement, config) -> SimulationResult`` as an engine."""

    def decorate(func: Callable[..., Any]) -> Callable[..., Any]:
        ENGINES.register(
            name, EngineSpec(name=name, description=description or _first_doc_line(func), simulate=func)
        )
        return func

    return decorate


def register_baseline(name: str, description: str = "") -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register ``build(model) -> CachePlacement`` as a baseline policy."""

    def decorate(func: Callable[..., Any]) -> Callable[..., Any]:
        BASELINES.register(
            name, BaselineSpec(name=name, description=description or _first_doc_line(func), build=func)
        )
        return func

    return decorate


def register_workload(
    name: str, description: str = "", kind: str = "stationary"
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register a workload builder under the unified protocol.

    New-style builders take ``(scenario, *, param=..., ...)`` and return a
    :class:`~repro.workloads.base.Workload`; the keyword names become the
    accepted ``workload_params``, validated eagerly at scenario
    construction.  Legacy single-parameter builders returning a bare
    :class:`~repro.core.model.StorageSystemModel` keep working unchanged
    (the model is wrapped as a stationary workload, no eager validation).
    """

    def decorate(func: Callable[..., Any]) -> Callable[..., Any]:
        WORKLOADS.register(
            name,
            WorkloadSpec(
                name=name,
                description=description or _first_doc_line(func),
                builder=func,
                kind=kind,
            ),
        )
        return func

    return decorate


def register_policy(name: str, description: str = "") -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register a :class:`ChunkCachingPolicy` factory as a cache policy.

    The decorated callable (a policy class works directly) must accept
    ``(capacity_chunks, chunks_per_file=None, **params)``.  Registered
    policies become valid ``Scenario(policy=...)`` values and are available
    to the cluster cache tier and the trace-replay engines by name.
    """

    def decorate(factory: Callable[..., Any]) -> Callable[..., Any]:
        POLICIES.register(
            name,
            PolicySpec(
                name=name,
                description=description or _first_doc_line(factory),
                factory=factory,
            ),
        )
        return factory

    return decorate


def register_fault(name: str, description: str = "") -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register a seeded fault-schedule generator for the failure suite.

    The decorated callable must accept
    ``(num_osds, horizon_ms, rng, service_ms, *, param=..., ...)`` and
    return a :class:`~repro.faults.base.FaultTimeline`.  Registered
    generators become valid ``Scenario(faults=...)`` values and ``--fault``
    choices on the experiments CLI::

        from repro.api import register_fault
        from repro.faults import FaultWindow, timeline_from_windows

        @register_fault("maintenance", description="rolling one-OSD reboots")
        def build_maintenance(num_osds, horizon_ms, rng, service_ms, *, downtime_ms=60000.0):
            windows = [
                FaultWindow("down", osd, osd * downtime_ms, (osd + 1) * downtime_ms)
                for osd in range(num_osds)
            ]
            return timeline_from_windows(windows, num_osds, horizon_ms)
    """

    def decorate(func: Callable[..., Any]) -> Callable[..., Any]:
        FAULTS.register(
            name, FaultSpec(name=name, description=description or _first_doc_line(func), build=func)
        )
        return func

    return decorate


def register_controller(name: str, description: str = "") -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register an online-controller builder for the control subsystem.

    The decorated callable must accept ``(model, *, param=..., ...)`` and
    return a :class:`~repro.control.controller.OnlineController` (or
    subclass).  Registered controllers become valid
    ``Scenario(controller=...)`` values and ``--controller`` choices on the
    experiments CLI::

        from repro.api import register_controller
        from repro.control import OnlineController

        @register_controller("eager", description="hair-trigger drift controller")
        def build_eager(model, *, window=120.0):
            return OnlineController(model, window=window, change_threshold=0.1)
    """

    def decorate(func: Callable[..., Any]) -> Callable[..., Any]:
        CONTROLLERS.register(
            name, ControllerSpec(name=name, description=description or _first_doc_line(func), build=func)
        )
        return func

    return decorate


def register_kernel_backend(name: str, description: str = "") -> Callable[[Callable[[], Any]], Callable[[], Any]]:
    """Register a kernel-backend loader for :mod:`repro.kernels`.

    The decorated zero-argument callable must return a
    :class:`~repro.kernels.backends.KernelBackend`.  Registered backends
    become valid ``Scenario(backend=...)`` values and ``--backend`` choices
    on the experiments CLI::

        from repro.api import register_kernel_backend
        from repro.kernels import KernelBackend

        @register_kernel_backend("mylib", description="my array namespace")
        def load_mylib_backend():
            import mylib.array_api as xp
            return KernelBackend(name="mylib", xp=xp)
    """

    def decorate(loader: Callable[[], Any]) -> Callable[[], Any]:
        KERNEL_BACKENDS.register(
            name,
            KernelBackendSpec(
                name=name,
                description=description or _first_doc_line(loader),
                load=loader,
            ),
        )
        return loader

    return decorate


# ----------------------------------------------------------------------
# Lookup helpers (re-exported by repro.api)
# ----------------------------------------------------------------------


def get_solver(name: str) -> SolverSpec:
    """Look up a registered solver."""
    return SOLVERS.get(name)


def get_engine(name: str) -> EngineSpec:
    """Look up a registered simulation engine."""
    return ENGINES.get(name)


def get_baseline(name: str) -> BaselineSpec:
    """Look up a registered baseline policy."""
    return BASELINES.get(name)


def get_workload(name: str) -> WorkloadSpec:
    """Look up a registered workload builder."""
    return WORKLOADS.get(name)


def get_policy(name: str) -> PolicySpec:
    """Look up a registered cache policy."""
    return POLICIES.get(name)


def list_solvers() -> List[str]:
    """Names of the registered solvers."""
    return SOLVERS.names()


def list_engines() -> List[str]:
    """Names of the registered simulation engines."""
    return ENGINES.names()


def list_baselines() -> List[str]:
    """Names of the registered baseline policies."""
    return BASELINES.names()


def list_workloads() -> List[str]:
    """Names of the registered workload builders."""
    return WORKLOADS.names()


def list_policies() -> List[str]:
    """Names of the registered cache policies."""
    return POLICIES.names()


def get_fault(name: str) -> FaultSpec:
    """Look up a registered fault generator."""
    return FAULTS.get(name)


def list_faults() -> List[str]:
    """Names of the registered fault generators."""
    return FAULTS.names()


def get_controller(name: str) -> ControllerSpec:
    """Look up a registered controller."""
    return CONTROLLERS.get(name)


def list_controllers() -> List[str]:
    """Names of the registered controllers."""
    return CONTROLLERS.names()


def get_kernel_backend_spec(name: str) -> KernelBackendSpec:
    """Look up a registered kernel backend."""
    return KERNEL_BACKENDS.get(name)


def list_kernel_backends() -> List[str]:
    """Names of the registered kernel backends."""
    return KERNEL_BACKENDS.names()


def list_experiments() -> List[str]:
    """Names of the registered experiments."""
    return EXPERIMENTS.names()


# ----------------------------------------------------------------------
# Built-in components
# ----------------------------------------------------------------------


def _register_builtin_solvers() -> None:
    from repro.core.algorithm import CacheOptimizer

    descriptions = {
        "projected_gradient": "Projected-gradient Prob-Pi solver (exact segmented projection; default)",
        "frank_wolfe": "Frank-Wolfe (conditional-gradient) Prob-Pi solver",
        "slsqp": "SciPy SLSQP Prob-Pi solver (slow reference implementation)",
    }

    def make(solver_name: str) -> Callable[..., Any]:
        def optimize(model, warm_start=None, time_bin=None, **kwargs):
            requested = kwargs.setdefault("pi_solver", solver_name)
            if requested != solver_name:
                # A conflicting pi_solver in solver_params would silently run
                # a different solver than the one all provenance reports.
                raise RegistryError(
                    f"solver {solver_name!r} cannot run with pi_solver={requested!r}; "
                    f"select the solver by name instead"
                )
            optimizer = CacheOptimizer(model, **kwargs)
            return optimizer.optimize(initial_state=warm_start, time_bin=time_bin)

        return optimize

    for solver_name, blurb in descriptions.items():
        SOLVERS.register(solver_name, SolverSpec(solver_name, blurb, make(solver_name)))


def _register_builtin_engines() -> None:
    from repro.simulation.simulator import StorageSimulator

    descriptions = {
        "event": "per-arrival discrete-event loop (reference; supports keep_node_records)",
        "batch": "fully vectorised batch engine (~70x faster; preferred for sweeps)",
    }

    def make(engine_name: str) -> Callable[..., Any]:
        def simulate(model, placement, config, requests=None):
            return StorageSimulator(model, placement, engine=engine_name).run(
                config, requests=requests
            )

        return simulate

    for engine_name, blurb in descriptions.items():
        ENGINES.register(engine_name, EngineSpec(engine_name, blurb, make(engine_name)))


def _register_builtin_baselines() -> None:
    from repro.baselines.exact import exact_caching_placement
    from repro.baselines.static import (
        no_cache_placement,
        popularity_whole_file_placement,
        proportional_placement,
    )

    BASELINES.register(
        "no_cache",
        BaselineSpec("no_cache", "no caching: every chunk is fetched from storage", no_cache_placement),
    )
    BASELINES.register(
        "whole_file",
        BaselineSpec(
            "whole_file",
            "cache the most popular files in their entirety until capacity runs out",
            popularity_whole_file_placement,
        ),
    )
    BASELINES.register(
        "proportional",
        BaselineSpec(
            "proportional",
            "spread cache space across files proportionally to arrival rates",
            proportional_placement,
        ),
    )
    BASELINES.register(
        "exact",
        BaselineSpec(
            "exact",
            "exact caching of verbatim chunks, filled greedily by popularity",
            exact_caching_placement,
        ),
    )


def _register_builtin_workloads() -> None:
    from repro.workloads.base import StationaryWorkload
    from repro.workloads.catalog import (
        DEFAULT_CODE,
        paper_default_model,
        ten_file_model,
    )
    from repro.workloads.ingest.trace_workload import build_trace
    from repro.workloads.zoo import build_diurnal, build_drift, build_flash_crowd

    def build_paper_default(
        scenario, *, num_nodes=12, arrival_rate_pattern=None, service_rates=None
    ):
        n, k = scenario.code
        model = paper_default_model(
            num_files=scenario.num_files,
            cache_capacity=scenario.cache_capacity,
            num_nodes=num_nodes,
            n=n,
            k=k,
            arrival_rate_pattern=arrival_rate_pattern,
            service_rates=service_rates,
            seed=scenario.seed,
            rate_scale=scenario.rate_scale,
        )
        return StationaryWorkload(model, name="paper_default")

    def build_ten_file(scenario, *, arrival_rates=None, placement_mode="random"):
        if scenario.num_files != 10:
            raise RegistryError(
                f"workload 'ten_file' is fixed at 10 files, got num_files={scenario.num_files}"
            )
        if tuple(scenario.code) != DEFAULT_CODE:
            raise RegistryError(
                f"workload 'ten_file' uses the fixed {DEFAULT_CODE} code, got {scenario.code}"
            )
        model = ten_file_model(
            cache_capacity=scenario.cache_capacity,
            arrival_rates=arrival_rates,
            placement_mode=placement_mode,
            seed=scenario.seed,
            rate_scale=scenario.rate_scale,
        )
        return StationaryWorkload(model, name="ten_file")

    WORKLOADS.register(
        "paper_default",
        WorkloadSpec(
            "paper_default",
            "Section V-A default: 12 heterogeneous servers, (7,4) code, cyclic rates",
            build_paper_default,
        ),
    )
    WORKLOADS.register(
        "ten_file",
        WorkloadSpec(
            "ten_file",
            "the 10-file model of Figs. 5-6 (random or split placement)",
            build_ten_file,
        ),
    )
    WORKLOADS.register(
        "diurnal",
        WorkloadSpec(
            "diurnal",
            "day/night sinusoidal rate cycle over a Zipf object population",
            build_diurnal,
            kind="non-stationary",
        ),
    )
    WORKLOADS.register(
        "flash_crowd",
        WorkloadSpec(
            "flash_crowd",
            "stationary background plus an exponentially decaying flash crowd",
            build_flash_crowd,
            kind="non-stationary",
        ),
    )
    WORKLOADS.register(
        "drift",
        WorkloadSpec(
            "drift",
            "constant-rate traffic whose Zipf popularity ranking rotates over time",
            build_drift,
            kind="non-stationary",
        ),
    )
    WORKLOADS.register(
        "trace",
        WorkloadSpec(
            "trace",
            "replay an ingested trace file (CSV/JSONL/NPZ) through the pipeline",
            build_trace,
            kind="trace",
        ),
    )


def _register_builtin_policies() -> None:
    from repro.policies import (
        ARCPolicy,
        LFUPolicy,
        LRUPolicy,
        StaticFunctionalPolicy,
        TTLPolicy,
    )

    entries = (
        ("lru", "least-recently-used whole-object caching (Ceph cache tier)", LRUPolicy),
        ("lfu", "least-frequently-used whole-object caching (LRU tie-break)", LFUPolicy),
        ("arc", "ARC-style adaptive caching with ghost lists", ARCPolicy),
        ("ttl", "time-to-live caching (entries expire; ttl=inf means FIFO)", TTLPolicy),
        (
            "functional_static",
            "static functional cache: fixed d_i chunks per file, no eviction",
            StaticFunctionalPolicy,
        ),
    )
    for policy_name, blurb, factory in entries:
        POLICIES.register(policy_name, PolicySpec(policy_name, blurb, factory))


def _register_builtin_kernel_backends() -> None:
    # backends.py keeps its module-level imports to numpy + stdlib, so this
    # import cannot re-enter repro.api (no cycle).
    from repro.kernels import backends as kernel_backends

    KERNEL_BACKENDS.register(
        "numpy",
        KernelBackendSpec(
            "numpy",
            "NumPy reference backend (ufunc fast paths; always available)",
            kernel_backends.load_numpy_backend,
        ),
    )
    # Optional backends register only when importable, so lookups fail fast
    # with the known-names RegistryError instead of a late ImportError.
    if kernel_backends.module_available("array_api_strict"):
        KERNEL_BACKENDS.register(
            "array_api_strict",
            KernelBackendSpec(
                "array_api_strict",
                "array-api-strict conformance backend (portable paths only)",
                kernel_backends.load_array_api_strict_backend,
            ),
        )
    if kernel_backends.module_available("cupy"):
        KERNEL_BACKENDS.register(
            "cupy",
            KernelBackendSpec(
                "cupy",
                "CuPy GPU backend (array-API-compatible namespace)",
                kernel_backends.load_cupy_backend,
            ),
        )
    if kernel_backends.module_available("jax"):
        KERNEL_BACKENDS.register(
            "jax",
            KernelBackendSpec(
                "jax",
                "JAX backend via jax.numpy (portable paths)",
                kernel_backends.load_jax_backend,
            ),
        )


_register_builtin_solvers()
_register_builtin_engines()
_register_builtin_baselines()
_register_builtin_workloads()
_register_builtin_policies()
_register_builtin_kernel_backends()
