"""Declarative experiment registry: one :class:`ExperimentSpec` per figure.

Each experiment module in :mod:`repro.experiments` decorates its ``run``
function with :func:`register_experiment`, supplying a title and per-scale
parameter sets.  The CLI (``python -m repro.experiments``), the benchmark
suite and tests all execute experiments through the registry, so the
``_run_figX(scale)`` wrapper layer the runner used to carry is gone:

    @register_experiment(
        "fig4",
        title="Latency vs cache size (Fig. 4)",
        scales={"fast": {"num_files": 100}},
    )
    def run(cache_sizes=None, num_files=1000, ...):
        ...
"""

from __future__ import annotations

import importlib
import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.api.registry import EXPERIMENTS
from repro.exceptions import RegistryError


@dataclass
class ExperimentSpec:
    """A registered experiment: runner, title and per-scale parameter sets.

    Attributes
    ----------
    name:
        Registry name (``"fig3"`` ... ``"tables"``).
    title:
        Human-readable description shown by ``--list`` and report headers.
    runner:
        The experiment's raw ``run`` function (undecorated, so registry
        execution does not trip the direct-call deprecation shim).
    module:
        Dotted module path; ``format_result`` is resolved from it lazily.
    scales:
        Mapping from scale name to the keyword arguments of that scale
        (``"paper"`` is the full-size configuration, usually ``{}``).
    """

    name: str
    title: str
    runner: Callable[..., Any]
    module: str
    scales: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    description: str = ""

    def __post_init__(self) -> None:
        # Every experiment exposes both canonical scales; missing entries
        # fall back to the runner's own defaults.
        for scale in ("fast", "paper"):
            self.scales.setdefault(scale, {})

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def scale_names(self) -> List[str]:
        """Registered scale names."""
        return sorted(self.scales)

    def kwargs_for(self, scale: str) -> Dict[str, Any]:
        """The parameter set of one scale (a copy)."""
        if scale not in self.scales:
            raise RegistryError(
                f"experiment {self.name!r} has no scale {scale!r}; "
                f"available scales: {', '.join(self.scale_names())}"
            )
        return dict(self.scales[scale])

    def accepts(self, param: str) -> bool:
        """Whether the runner's signature takes ``param``."""
        signature = inspect.signature(self.runner)
        if param in signature.parameters:
            return True
        return any(
            parameter.kind is inspect.Parameter.VAR_KEYWORD
            for parameter in signature.parameters.values()
        )

    # ------------------------------------------------------------------
    # Execution and rendering
    # ------------------------------------------------------------------

    #: Overrides every CLI run forwards; dropped (not an error) when the
    #: runner's signature does not take them.
    UNIFORM_FLAGS = (
        "engine",
        "seed",
        "workload",
        "workload_params",
        "faults",
        "fault_params",
        "controller",
        "controller_params",
        "jobs",
        "cache",
        "progress",
    )

    def run(self, scale: str = "fast", **overrides: Any) -> Any:
        """Run the experiment at ``scale`` and return its typed result.

        ``overrides`` are merged over the scale's parameter set.  ``None``
        values are dropped, and the uniform CLI flags (:attr:`UNIFORM_FLAGS`)
        are dropped when the runner does not accept them; any other
        parameter the runner does not accept is an error, so typos don't
        silently run with defaults.
        """
        kwargs = self.kwargs_for(scale)
        for key, value in overrides.items():
            if value is None:
                continue
            if not self.accepts(key):
                if key in self.UNIFORM_FLAGS:
                    continue
                raise RegistryError(
                    f"experiment {self.name!r} does not accept parameter {key!r}"
                )
            kwargs[key] = value
        return self.runner(**kwargs)

    def format(self, result: Any) -> str:
        """Render a result with the experiment module's ``format_result``."""
        module = importlib.import_module(self.module)
        return module.format_result(result)


def register_experiment(
    name: str,
    *,
    title: str,
    scales: Optional[Mapping[str, Mapping[str, Any]]] = None,
    description: str = "",
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator registering an experiment ``run`` function.

    Returns the function unchanged; stack :func:`repro.api.deprecation.
    deprecated_entry_point` on top to deprecate direct calls while keeping
    the registry path warning-free.
    """

    def decorate(func: Callable[..., Any]) -> Callable[..., Any]:
        doc = (func.__doc__ or "").strip()
        first_doc_line = doc.splitlines()[0] if doc else ""
        spec = ExperimentSpec(
            name=name,
            title=title,
            runner=func,
            module=func.__module__,
            scales={key: dict(value) for key, value in (scales or {}).items()},
            description=description or first_doc_line,
        )
        EXPERIMENTS.register(name, spec)
        return func

    return decorate


def get_experiment(name: str) -> ExperimentSpec:
    """Look up a registered experiment by name."""
    return EXPERIMENTS.get(name)


def run_experiment(name: str, scale: str = "fast", **overrides: Any) -> Any:
    """Run a registered experiment and return its typed result object.

    This is the programmatic facade; the CLI wraps it with report
    formatting (see :mod:`repro.experiments.runner`).
    """
    return get_experiment(name).run(scale=scale, **overrides)
