"""The execution facade: ``Scenario`` in, typed ``RunResult`` out.

:func:`run_scenario` (or a reusable :class:`Session`) drives the paper's
full pipeline from a single declarative description:

    from repro.api import Scenario, run_scenario

    result = run_scenario(Scenario(num_files=60, cache_capacity=30))
    print(result.summary())
    print(result.to_json())

Every stage is resolved through the component registries, so a scenario
with ``engine="batch"`` or ``policy="whole_file"`` swaps backends without
any code change.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.api.registry import (
    BASELINES,
    CONTROLLERS,
    ENGINES,
    POLICIES,
    SOLVERS,
    WORKLOADS,
)
from repro.api.scenario import Scenario
from repro.api.serialize import json_dumps, write_json
from repro.cluster.replay import ReplayResult
from repro.exec.cache import CacheLike, ResultCache, resolve_cache, scenario_key
from repro.control.controller import ControlResult
from repro.core.algorithm import OptimizationResult
from repro.core.model import StorageSystemModel
from repro.core.placement import CachePlacement, placement_histogram
from repro.kernels import use_kernel_backend
from repro.simulation.simulator import SimulationConfig, SimulationResult


@dataclass
class RunResult:
    """Typed outcome of one scenario run, with uniform JSON serialization.

    Attributes
    ----------
    scenario:
        The scenario that produced this result.
    placement:
        The cache placement the policy decided on.
    optimization:
        Full Algorithm-1 outcome (``None`` for baseline policies).
    simulation:
        Simulation outcome (``None`` when ``scenario.simulate`` is false).
    replay:
        Cluster trace-replay outcome (``None`` unless ``scenario.faults``
        requested a fault schedule -- the emulated cluster is the only
        layer where OSD failures are observable).
    control:
        Online-controller outcome (``None`` unless ``scenario.controller``
        named a registered controller): per-bin drift events, re-solve
        reports and churn plans from driving the sampled request stream
        through the control subsystem.
    timings:
        Wall-clock seconds per stage (``build_model``, ``optimize`` /
        ``baseline``, ``simulate``, ``replay``, ``control``, ``total``).
    """

    scenario: Scenario
    placement: CachePlacement
    optimization: Optional[OptimizationResult] = None
    simulation: Optional[SimulationResult] = None
    replay: Optional[ReplayResult] = None
    control: Optional[ControlResult] = None
    timings: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def objective(self) -> float:
        """The analytical mean-latency bound of the placement."""
        return self.placement.objective

    @property
    def simulated_mean_latency(self) -> Optional[float]:
        """Simulated mean file latency (``None`` without a simulation)."""
        if self.simulation is None:
            return None
        return self.simulation.mean_latency()

    @property
    def cache_chunk_fraction(self) -> Optional[float]:
        """Fraction of chunk requests served from the cache (simulated)."""
        if self.simulation is None:
            return None
        return self.simulation.cache_chunk_fraction()

    def summary(self) -> str:
        """Human-readable multi-line summary of the run."""
        lines = [self.scenario.describe()]
        lines.append(
            f"  analytical bound: {self.objective:.4f}  "
            f"(cache {self.placement.total_cached_chunks}/{self.placement.cache_capacity} "
            f"chunks, histogram {placement_histogram(self.placement)})"
        )
        if self.optimization is not None:
            lines.append(
                f"  Algorithm 1: {self.optimization.outer_iterations} outer iterations, "
                f"{self.optimization.inner_solves} convex solves, "
                f"converged={self.optimization.converged}"
            )
        if self.simulation is not None:
            lines.append(
                f"  simulated ({self.scenario.engine}): mean latency "
                f"{self.simulation.mean_latency():.4f} over "
                f"{self.simulation.requests_completed} requests, "
                f"{self.simulation.cache_chunk_fraction():.1%} of chunks from cache"
            )
        if self.replay is not None:
            mean = self.replay.mean_latency_ms()
            mean_text = "n/a" if math.isnan(mean) else f"{mean:.1f} ms"
            lines.append(
                f"  cluster replay (faults={self.replay.faults or 'none'}): "
                f"mean latency {mean_text} over "
                f"{self.replay.served}/{self.replay.reads} served reads, "
                f"{self.replay.degraded_reads} degraded, "
                f"{self.replay.failed_reads} failed, "
                f"{self.replay.repair_jobs} repair jobs"
            )
        if self.control is not None:
            lines.append(
                f"  controller ({self.scenario.controller}): "
                f"{self.control.num_bins} bins, "
                f"{self.control.num_drift_events} drift events, "
                f"-{self.control.total_dropped_chunks}"
                f"/+{self.control.total_added_chunks} chunks "
                f"({self.control.total_deferred_chunks} deferred)"
            )
        lines.append(
            "  timings: "
            + ", ".join(f"{stage}={seconds:.3f}s" for stage, seconds in self.timings.items())
        )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dictionary with scenario, placement and metrics."""
        payload: Dict[str, Any] = {
            "scenario": self.scenario.to_dict(),
            "objective": float(self.objective),
            "cache_capacity": self.placement.cache_capacity,
            "total_cached_chunks": self.placement.total_cached_chunks,
            "cached_chunks": self.placement.cached_chunks(),
            "timings": dict(self.timings),
        }
        if self.optimization is not None:
            payload["optimization"] = {
                "converged": self.optimization.converged,
                "outer_iterations": self.optimization.outer_iterations,
                "inner_solves": self.optimization.inner_solves,
                "objective_trace": [float(v) for v in self.optimization.objective_trace],
            }
        if self.simulation is not None:
            payload["simulation"] = {
                "engine": self.scenario.engine,
                "mean_latency": self.simulation.mean_latency(),
                "requests_completed": self.simulation.requests_completed,
                "chunks_from_cache": self.simulation.chunks_from_cache,
                "chunks_from_storage": self.simulation.chunks_from_storage,
                "cache_chunk_fraction": self.simulation.cache_chunk_fraction(),
                "latency": self.simulation.metrics.summary(),
            }
        if self.replay is not None:
            mean = self.replay.mean_latency_ms()
            p99 = self.replay.percentile_ms(99.0)
            payload["cluster_replay"] = {
                "engine": self.replay.engine,
                "policy": self.replay.policy,
                "faults": self.replay.faults,
                "reads": self.replay.reads,
                "served": self.replay.served,
                "hits": self.replay.hits,
                "hit_ratio": self.replay.hit_ratio,
                "degraded_reads": self.replay.degraded_reads,
                "failed_reads": self.replay.failed_reads,
                "repair_jobs": self.replay.repair_jobs,
                "chunks_from_cache": self.replay.chunks_from_cache,
                "chunks_from_storage": self.replay.chunks_from_storage,
                # nan (no served reads) is not valid JSON -- encode as null.
                "mean_latency_ms": None if math.isnan(mean) else mean,
                "p99_latency_ms": None if math.isnan(p99) else p99,
            }
        if self.control is not None:
            payload["control"] = dict(
                self.control.to_dict(), controller=self.scenario.controller
            )
        return payload

    def to_json(self, indent: int = 2) -> str:
        """Serialize :meth:`to_dict` as a JSON string."""
        return json_dumps(self.to_dict(), indent=indent)

    def write_json(self, path: Any) -> Any:
        """Write :meth:`to_dict` to ``path`` and return the path."""
        return write_json(path, self.to_dict())


@dataclass
class CachedRunResult:
    """A scenario result served from the content-addressed cache.

    Wraps the stored ``RunResult.to_dict()`` payload behind the same
    reporting surface (``objective``, ``timings``, ``to_dict``/``to_json``
    /``write_json``, ``summary``), so cached and fresh runs serialize
    identically: ``json_dumps(fresh.to_dict()) ==
    json_dumps(cached.to_dict())``.  The rich in-memory stages
    (``placement``, ``simulation``, ...) are not reconstructed -- code
    needing those objects should run with the cache off.
    """

    scenario: Scenario
    payload: Dict[str, Any]
    cache_key: str

    #: Cached results always announce themselves (fresh RunResults lack
    #: the attribute, so ``getattr(result, "from_cache", False)`` works).
    from_cache: bool = True

    @property
    def objective(self) -> float:
        """The analytical mean-latency bound of the cached placement."""
        return float(self.payload["objective"])

    @property
    def timings(self) -> Dict[str, float]:
        """Wall-clock timings of the original (cache-missing) run."""
        return dict(self.payload.get("timings", {}))

    def to_dict(self) -> Dict[str, Any]:
        """The stored payload, bit-identical to the original run's."""
        return dict(self.payload)

    def to_json(self, indent: int = 2) -> str:
        """Serialize :meth:`to_dict` as a JSON string."""
        return json_dumps(self.to_dict(), indent=indent)

    def write_json(self, path: Any) -> Any:
        """Write :meth:`to_dict` to ``path`` and return the path."""
        return write_json(path, self.to_dict())

    def summary(self) -> str:
        """Human-readable summary of the cached run."""
        return (
            f"{self.scenario.describe()}\n"
            f"  analytical bound: {self.objective:.4f} "
            f"(served from cache, key {self.cache_key[:12]}...)"
        )


class Session:
    """Reusable executor of scenarios.

    A session keeps the scenario history (``session.results``) and is the
    natural place for cross-run reuse; scenarios themselves stay immutable.

    Parameters
    ----------
    cache:
        Content-addressed result cache for scenario runs: ``True`` uses
        ``~/.cache/repro`` (or ``$REPRO_CACHE_DIR``), a path selects that
        directory, a prebuilt :class:`~repro.exec.ResultCache` is shared.
        A hit skips the whole pipeline -- zero solver calls -- and returns
        a :class:`CachedRunResult` whose ``to_dict`` is bit-identical to
        the original run's.  Keys cover the scenario (including seed and
        backend) and the package version, so upgrades and backend
        switches re-run.
    """

    def __init__(self, cache: CacheLike = None) -> None:
        self._results: list[Any] = []
        self._cache: Optional[ResultCache] = resolve_cache(cache)

    @property
    def results(self) -> list[Any]:
        """All results produced by this session, in run order."""
        return list(self._results)

    @property
    def cache(self) -> Optional[ResultCache]:
        """The session's result cache (``None`` when caching is off)."""
        return self._cache

    # ------------------------------------------------------------------
    # Pipeline stages
    # ------------------------------------------------------------------

    def build_workload(self, scenario: Scenario):
        """Materialize the scenario's workload object (unified protocol).

        Returns a :class:`~repro.workloads.base.Workload`: ``model()``
        yields the stationary system description the optimizer and the
        baselines consume, ``sample(rng, horizon)`` draws the request
        stream non-stationary workloads replay through the engines.
        """
        return WORKLOADS.get(scenario.workload).create(scenario)

    def build_model(self, scenario: Scenario) -> StorageSystemModel:
        """Materialize the scenario's workload into a system model."""
        return self.build_workload(scenario).model()

    def build_faults(self, scenario: Scenario):
        """Materialize the scenario's fault schedule (``None`` if healthy).

        Returns a :class:`~repro.faults.base.GeneratedFaultSchedule` bound
        to ``scenario.faults``/``scenario.fault_params``; compiling it is
        deferred to the replay, which knows the OSD count and horizon.
        """
        if scenario.faults is None:
            return None
        from repro.faults import GeneratedFaultSchedule

        return GeneratedFaultSchedule(scenario.faults, dict(scenario.fault_params))

    #: Cluster-replay benchmark duration (seconds) per scenario scale.
    REPLAY_DURATION_S = {"fast": 120.0, "paper": 1800.0}

    def replay_cluster(
        self,
        scenario: Scenario,
        *,
        duration_s: Optional[float] = None,
        engine: str = "epoch",
        epoch_length: Optional[int] = None,
        num_osds: int = 12,
        total_rate_rps: float = 4.0,
        model: Optional[StorageSystemModel] = None,
        placement: Optional[CachePlacement] = None,
    ) -> ReplayResult:
        """Replay the scenario's workload against the emulated cluster.

        This is the layer where ``scenario.faults`` becomes observable: the
        model-level simulation has no OSDs to crash, so fault schedules are
        applied to the trace-replay engines of :mod:`repro.cluster.replay`.
        Cache-policy scenarios replay under the named policy; optimizer and
        baseline scenarios freeze their computed placement into a static
        functional allocation.  Pass ``model``/``placement`` to reuse
        already-built pipeline stages.

        The model's analytical arrival rates are normalized to an aggregate
        of ``total_rate_rps`` requests per second, preserving the per-file
        popularity skew: the emulated device model serves chunks in
        hundreds of milliseconds, so the raw analytical rates (tuned to the
        queueing model's own service scale) would leave the cluster idle.
        """
        from repro.cluster.cluster import ClusterConfig
        from repro.cluster.devices import chunk_size_for_object
        from repro.cluster.replay import ClusterReplay, ReplayTrace
        from repro.policies.functional import StaticFunctionalPolicy

        if model is None:
            model = self.build_model(scenario)
        n, k = scenario.code
        object_size_mb = 64
        chunk_mb = chunk_size_for_object(object_size_mb, k)
        config = ClusterConfig(
            num_osds=max(int(num_osds), n),
            n=n,
            k=k,
            object_size_mb=object_size_mb,
            cache_capacity_mb=int(model.cache_capacity) * chunk_mb,
            seed=scenario.seed,
        )
        if scenario.uses_cache_policy:
            policy: Any = scenario.policy
            policy_params: Dict[str, object] = dict(scenario.policy_params)
        else:
            if placement is None:
                placement, _ = self._place(scenario, model)
            allocation = placement.cached_chunks()

            def policy(capacity, chunks_per_file, allocation=allocation):
                return StaticFunctionalPolicy(
                    capacity, chunks_per_file, allocation=allocation
                )

            policy_params = {}
        if duration_s is None:
            duration_s = self.REPLAY_DURATION_S.get(scenario.scale, 120.0)
        raw_rates = {file.file_id: file.arrival_rate for file in model.files}
        total_rate = sum(raw_rates.values())
        rate_scale = total_rate_rps / total_rate if total_rate > 0 else 1.0
        rates = {fid: rate * rate_scale for fid, rate in raw_rates.items()}
        trace = ReplayTrace.from_rates(
            rates, float(duration_s), seed=scenario.seed + 101
        )
        replay = ClusterReplay(
            config,
            [file.file_id for file in model.files],
            policy=policy,
            policy_params=policy_params,
        )
        return replay.run(
            trace,
            engine=engine,
            seed=scenario.seed + 1,
            epoch_length=epoch_length,
            faults=scenario.faults,
            fault_params=dict(scenario.fault_params),
        )

    def run_controller(
        self,
        scenario: Scenario,
        *,
        model: Optional[StorageSystemModel] = None,
        workload=None,
        horizon: Optional[float] = None,
    ) -> ControlResult:
        """Drive the scenario's workload stream through its controller.

        The controller named by ``scenario.controller`` is built against
        the model and fed the workload's sampled request stream: streaming
        rate estimation, drift-triggered (or scheduled) re-solves and
        bounded-churn placement swaps.  The sampling generator is
        seed-sequence child 5, disjoint from the engine's internal streams
        (children 0-3) and the simulation's non-stationary sampler
        (child 4), so control and simulation see independent draws.  Pass
        ``model``/``workload`` to reuse already-built pipeline stages.
        """
        if workload is None:
            workload = self.build_workload(scenario)
        if model is None:
            model = workload.model()
        spec = CONTROLLERS.get(scenario.controller)
        controller = spec.build(model, **dict(scenario.controller_params))
        if horizon is None:
            horizon = scenario.horizon
        if horizon is None:
            horizon = workload.default_horizon()
        if horizon is None:
            horizon = scenario.effective_horizon
        rng = np.random.default_rng(
            np.random.SeedSequence(scenario.seed).spawn(6)[5]
        )
        stream = workload.sample(rng, horizon=horizon)
        return controller.run(stream)

    def _place(self, scenario: Scenario, model: StorageSystemModel):
        if scenario.uses_optimizer:
            solver = SOLVERS.get(scenario.solver)
            outcome = solver.optimize(
                model, tolerance=scenario.tolerance, **dict(scenario.solver_params)
            )
            return outcome.placement, outcome
        if scenario.uses_cache_policy:
            from repro.policies import placement_from_trace_replay

            spec = POLICIES.get(scenario.policy)
            chunks_per_file = {file.file_id: file.k for file in model.files}
            policy = spec.factory(
                model.cache_capacity, chunks_per_file, **dict(scenario.policy_params)
            )
            placement = placement_from_trace_replay(
                model, policy, seed=scenario.seed
            )
            return placement, None
        baseline = BASELINES.get(scenario.policy)
        return baseline.build(model), None

    def _simulate(
        self,
        scenario: Scenario,
        model: StorageSystemModel,
        placement: CachePlacement,
        workload=None,
    ) -> SimulationResult:
        engine = ENGINES.get(scenario.engine)
        horizon = scenario.horizon
        if horizon is None and workload is not None:
            horizon = workload.default_horizon()
        if horizon is None:
            horizon = scenario.effective_horizon
        config = SimulationConfig(
            horizon=horizon,
            seed=scenario.seed,
            warmup=horizon * scenario.warmup_fraction,
        )
        if workload is not None and not workload.stationary:
            # Non-stationary workloads supply the request stream themselves;
            # the sampling generator is seed-sequence child 4, disjoint from
            # the engine's four internal streams (children 0-3).
            rng = np.random.default_rng(
                np.random.SeedSequence(scenario.seed).spawn(5)[4]
            )
            stream = workload.sample(rng, horizon=horizon)
            return engine.simulate(model, placement, config, requests=stream)
        return engine.simulate(model, placement, config)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def run(self, scenario: Scenario) -> "RunResult | CachedRunResult":
        """Execute optimize -> schedule -> simulate for one scenario.

        When ``scenario.faults`` names a fault schedule, a fault-aware
        cluster replay stage runs after the simulation (see
        :meth:`replay_cluster`) and lands in ``result.replay``.  When
        ``scenario.controller`` names a registered controller, the online
        control stage runs last (see :meth:`run_controller`) and lands in
        ``result.control``.

        The scenario's kernel backend is active for the whole pipeline, so
        every queueing kernel the stages reach computes in that namespace.
        With the session cache on, a key hit returns a
        :class:`CachedRunResult` without running any stage.
        """
        key: Optional[str] = None
        if self._cache is not None:
            key = scenario_key(self._cache, scenario)
            stored = self._cache.get(key)
            if stored is not None:
                cached = CachedRunResult(
                    scenario=scenario, payload=stored, cache_key=key
                )
                self._results.append(cached)
                return cached

        timings: Dict[str, float] = {}
        started = time.perf_counter()

        with use_kernel_backend(scenario.backend):
            stage = time.perf_counter()
            workload = self.build_workload(scenario)
            model = workload.model()
            timings["build_model"] = time.perf_counter() - stage

            stage = time.perf_counter()
            placement, optimization = self._place(scenario, model)
            if scenario.uses_optimizer:
                place_stage = "optimize"
            elif scenario.uses_cache_policy:
                place_stage = "policy"
            else:
                place_stage = "baseline"
            timings[place_stage] = time.perf_counter() - stage

            simulation: Optional[SimulationResult] = None
            if scenario.simulate:
                stage = time.perf_counter()
                simulation = self._simulate(scenario, model, placement, workload)
                timings["simulate"] = time.perf_counter() - stage

            replay: Optional[ReplayResult] = None
            if scenario.faults is not None:
                stage = time.perf_counter()
                replay = self.replay_cluster(
                    scenario, model=model, placement=placement
                )
                timings["replay"] = time.perf_counter() - stage

            control: Optional[ControlResult] = None
            if scenario.controller is not None:
                stage = time.perf_counter()
                control = self.run_controller(
                    scenario, model=model, workload=workload
                )
                timings["control"] = time.perf_counter() - stage

        timings["total"] = time.perf_counter() - started
        result = RunResult(
            scenario=scenario,
            placement=placement,
            optimization=optimization,
            simulation=simulation,
            replay=replay,
            control=control,
            timings=timings,
        )
        if self._cache is not None and key is not None:
            self._cache.put(key, result.to_dict())
        self._results.append(result)
        return result


def run_scenario(
    scenario: Optional[Scenario] = None,
    session: Optional[Session] = None,
    cache: CacheLike = None,
    **fields: Any,
) -> "RunResult | CachedRunResult":
    """Run one scenario end-to-end and return its :class:`RunResult`.

    Accepts either a prebuilt :class:`Scenario` (optionally overridden by
    keyword ``fields``) or the scenario fields directly::

        run_scenario(num_files=60, cache_capacity=30, engine="batch")

    ``cache`` configures the one-shot session's result cache (ignored
    when an explicit ``session`` is passed -- the session's own cache
    configuration governs).
    """
    if scenario is None:
        scenario = Scenario(**fields)
    elif fields:
        scenario = scenario.replace(**fields)
    return (session or Session(cache=cache)).run(scenario)
