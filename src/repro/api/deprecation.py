"""Deprecation helpers for call patterns subsumed by :mod:`repro.api`."""

from __future__ import annotations

import functools
import warnings
from typing import Any, Callable, TypeVar

F = TypeVar("F", bound=Callable[..., Any])


def deprecated(replacement: str, name: str = "") -> Callable[[F], F]:
    """Wrap a callable so direct calls emit a :class:`DeprecationWarning`.

    The wrapped function keeps its behaviour and signature; the original is
    reachable as ``wrapper.__wrapped__`` (which is what the registries hold,
    so registry-driven execution stays warning-free).
    """

    def decorate(func: F) -> F:
        label = name or f"{func.__module__}.{func.__qualname__}"

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            warnings.warn(
                f"{label}() is deprecated; use {replacement} instead",
                DeprecationWarning,
                stacklevel=2,
            )
            return func(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate


def deprecated_entry_point(experiment_name: str) -> Callable[[F], F]:
    """Deprecate direct ``figX.run(**kwargs)`` calls replaced by the registry."""
    return deprecated(
        f"repro.api.run_experiment({experiment_name!r}, scale=..., **overrides) "
        f"or repro.api.run_scenario(...)"
    )
