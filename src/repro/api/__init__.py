"""``repro.api`` -- the single public entry point of the reproduction.

The facade is declarative: describe a run as a frozen
:class:`~repro.api.scenario.Scenario` (workload, erasure code, cache
policy, solver, engine, seed, scale), execute it with
:func:`~repro.api.session.run_scenario`, and get a typed
:class:`~repro.api.session.RunResult` with uniform JSON serialization::

    from repro.api import Scenario, run_scenario

    result = run_scenario(Scenario(num_files=60, cache_capacity=30))
    print(result.summary())

Swappable components live in named registries -- solvers, simulation
engines, baseline policies, workload builders and the paper's experiments
-- and new backends register with a decorator::

    from repro.api import register_baseline

    @register_baseline("my_policy")
    def build(model):
        return some_cache_placement

The figures and tables of the paper are registered
:class:`~repro.api.experiments.ExperimentSpec` entries with per-scale
parameter sets; run them by name::

    from repro.api import run_experiment

    fig4 = run_experiment("fig4", scale="fast")
"""

from repro.api.experiments import (
    ExperimentSpec,
    get_experiment,
    register_experiment,
    run_experiment,
)
from repro.api.registry import (
    BASELINES,
    CONTROLLERS,
    ENGINES,
    EXPERIMENTS,
    FAULTS,
    KERNEL_BACKENDS,
    POLICIES,
    SOLVERS,
    WORKLOADS,
    BaselineSpec,
    ControllerSpec,
    EngineSpec,
    FaultSpec,
    KernelBackendSpec,
    PolicySpec,
    Registry,
    SolverSpec,
    WorkloadSpec,
    get_baseline,
    get_controller,
    get_engine,
    get_fault,
    get_kernel_backend_spec,
    get_policy,
    get_solver,
    get_workload,
    list_baselines,
    list_controllers,
    list_engines,
    list_experiments,
    list_faults,
    list_kernel_backends,
    list_policies,
    list_solvers,
    list_workloads,
    register_baseline,
    register_controller,
    register_engine,
    register_fault,
    register_kernel_backend,
    register_policy,
    register_solver,
    register_workload,
)
from repro.api.scenario import OPTIMAL_POLICY, SCALES, Scenario
from repro.api.serialize import json_dumps, to_jsonable, write_json
from repro.api.session import CachedRunResult, RunResult, Session, run_scenario
from repro.exec import (
    CacheStats,
    ResultCache,
    SweepSpec,
    available_cpus,
    default_cache,
    default_cache_dir,
    resolve_cache,
    spawn_point_seeds,
    sweep_map,
    sweep_scan,
)

__all__ = [
    # scenario + facade
    "Scenario",
    "Session",
    "RunResult",
    "CachedRunResult",
    "run_scenario",
    "OPTIMAL_POLICY",
    "SCALES",
    # parallel execution + result cache (repro.exec)
    "SweepSpec",
    "sweep_map",
    "sweep_scan",
    "available_cpus",
    "spawn_point_seeds",
    "ResultCache",
    "CacheStats",
    "default_cache",
    "default_cache_dir",
    "resolve_cache",
    # experiments
    "ExperimentSpec",
    "register_experiment",
    "get_experiment",
    "run_experiment",
    "list_experiments",
    # registries
    "Registry",
    "SolverSpec",
    "EngineSpec",
    "BaselineSpec",
    "WorkloadSpec",
    "PolicySpec",
    "FaultSpec",
    "ControllerSpec",
    "KernelBackendSpec",
    "SOLVERS",
    "ENGINES",
    "BASELINES",
    "WORKLOADS",
    "POLICIES",
    "FAULTS",
    "CONTROLLERS",
    "KERNEL_BACKENDS",
    "EXPERIMENTS",
    "register_solver",
    "register_engine",
    "register_baseline",
    "register_workload",
    "register_policy",
    "register_fault",
    "register_controller",
    "register_kernel_backend",
    "get_solver",
    "get_engine",
    "get_baseline",
    "get_workload",
    "get_policy",
    "get_fault",
    "get_controller",
    "get_kernel_backend_spec",
    "list_solvers",
    "list_engines",
    "list_baselines",
    "list_workloads",
    "list_policies",
    "list_faults",
    "list_controllers",
    "list_kernel_backends",
    # serialization
    "to_jsonable",
    "json_dumps",
    "write_json",
]
