"""The unified epoch-boundary layer of the trace-replay engines.

The epoch engine freezes cache/cluster state between *boundaries*.  Three
event classes produce boundaries:

* **misses** -- discovered while classifying, one boundary per miss (the
  exact mode's defining property);
* **TTL expiries** -- the policy's dynamic ``next_event_time()``, found
  while classifying because they depend on policy state;
* **fault events** -- OSD crashes/recoveries, outage windows, straggler
  onsets: the ``boundaries_ms`` of a compiled
  :class:`~repro.faults.base.FaultTimeline`, known *statically* before the
  replay starts.

:class:`BoundaryClock` merges the static class into one sorted stream of
request-index break points so the classifiers only ever ask "where must the
current epoch end at the latest?".  Splitting a run of hits at a fault
boundary is exactness-preserving: a hit run only folds recency/frequency
state into the policy, and folding two adjacent sub-runs in order is
identical to folding the whole run (``touch_epoch`` is associative across a
split), so the exact mode stays bit-equal to the per-request reference
engine no matter how many fault boundaries cut through it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["BoundaryClock"]


class BoundaryClock:
    """Sorted static epoch-break points over a request trace.

    Converts event *instants* (milliseconds) into request *indices*: an
    event at time ``b`` forces an epoch break before the first request with
    ``times_ms >= b``, because that request already sees the new cluster
    state.  Breaks at index 0 or past the end of the trace are dropped --
    they cannot split anything.
    """

    def __init__(self, times_ms: np.ndarray, event_times_ms: Optional[np.ndarray] = None):
        self._num_requests = int(np.asarray(times_ms).size)
        if event_times_ms is None or np.asarray(event_times_ms).size == 0:
            breaks = np.empty(0, dtype=np.int64)
        else:
            breaks = np.unique(
                np.searchsorted(times_ms, np.asarray(event_times_ms, dtype=float), side="left")
            )
            breaks = breaks[(breaks > 0) & (breaks < self._num_requests)]
        self._breaks = breaks
        self._pointer = 0

    @property
    def num_breaks(self) -> int:
        """Number of effective static break points inside the trace."""
        return int(self._breaks.size)

    def next_break(self, cursor: int) -> int:
        """The first break index strictly after ``cursor``.

        Returns the trace length when no further break exists, so callers
        can use it directly as an epoch limit.  ``cursor`` must be
        non-decreasing across calls (the classifiers sweep forward), which
        keeps the lookup amortised O(1).
        """
        breaks = self._breaks
        pointer = self._pointer
        size = breaks.size
        while pointer < size and breaks[pointer] <= cursor:
            pointer += 1
        self._pointer = pointer
        return int(breaks[pointer]) if pointer < size else self._num_requests
