"""Ceph cache-tier emulation: a replicated write-back overlay pool.

In the baseline configuration of the paper, all IO is routed to a replicated
SSD cache tier in front of the (7,4) erasure-coded storage pool.  A read
that hits the cache is served from the SSDs; a miss promotes the whole
object from the storage tier (paying the erasure-coded read) and the tiering
agent evicts objects to make room.

Which objects stay resident is decided by a pluggable
:class:`~repro.policies.base.ChunkCachingPolicy` (Ceph's tiering agent is
LRU, the default); the tier itself only models the IO path and keeps exact
byte accounting from the policy's eviction reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.cluster.devices import whole_object_ssd_latency
from repro.cluster.pool import ErasureCodedPool
from repro.exceptions import ClusterError
from repro.policies import ChunkCachingPolicy, create_policy


@dataclass
class CacheTierStats:
    """Read statistics for the cache tier."""

    reads: int = 0
    hits: int = 0
    promotions: int = 0
    evictions_mb: float = 0.0

    @property
    def hit_ratio(self) -> float:
        """Fraction of reads that hit the cache tier."""
        if self.reads == 0:
            return 0.0
        return self.hits / self.reads


class CacheTier:
    """A replicated cache tier overlaying an erasure-coded storage pool.

    Parameters
    ----------
    storage_pool:
        The backing erasure-coded pool.
    capacity_mb:
        Usable cache capacity in MB (after replication).  Zero is valid and
        degenerates to an always-missing tier (every read pays the storage
        path; nothing is ever promoted).
    replication:
        Replication factor of the cache tier; the paper's baseline uses dual
        replication, which halves the usable capacity of the raw devices.
        ``capacity_mb`` here is the *usable* capacity, so replication only
        affects reported raw usage.
    ssd_concurrency:
        How many object reads the SSD partitions serve in parallel; cache
        reads are modelled as a lightly-loaded fast device.
    policy:
        Registered cache-policy name (default ``"lru"``, Ceph's tiering
        agent) or a ready :class:`ChunkCachingPolicy` instance sized in MB
        units.  Object footprints are registered on write.
    """

    def __init__(
        self,
        storage_pool: ErasureCodedPool,
        capacity_mb: int,
        replication: int = 2,
        rng: Optional[np.random.Generator] = None,
        ssd_devices: int = 2,
        policy: Union[str, ChunkCachingPolicy] = "lru",
    ):
        if capacity_mb < 0:
            raise ClusterError("cache capacity must be non-negative")
        if replication < 1:
            raise ClusterError("replication factor must be at least 1")
        if ssd_devices < 1:
            raise ClusterError("the cache tier needs at least one SSD device")
        self._pool = storage_pool
        self._capacity_mb = int(capacity_mb)
        self._replication = replication
        if isinstance(policy, str):
            self._policy = create_policy(policy, self._capacity_mb)
            self._policy_name = policy
        else:
            self._policy = policy
            self._policy_name = type(policy).__name__
        self._object_sizes: Dict[str, int] = {}
        self._rng = rng if rng is not None else np.random.default_rng()
        # The cache tier sits in the IO path: hits are served by, and
        # promotions written through, a small number of SSD OSDs (two in the
        # paper's baseline).  Model them as parallel FIFO servers.
        self._ssd_busy_until = [0.0] * ssd_devices
        self.stats = CacheTierStats()

    def _ssd_enqueue(self, arrival_time: float, service_time: float) -> float:
        """Serve one cache-tier IO on the earliest-free SSD device."""
        device = min(range(len(self._ssd_busy_until)), key=self._ssd_busy_until.__getitem__)
        start = max(arrival_time, self._ssd_busy_until[device])
        completion = start + service_time
        self._ssd_busy_until[device] = completion
        return completion

    @property
    def capacity_mb(self) -> int:
        """Usable capacity in MB."""
        return self._capacity_mb

    @property
    def policy(self) -> ChunkCachingPolicy:
        """The residency policy driving promotions and evictions."""
        return self._policy

    @property
    def policy_name(self) -> str:
        """Registered name (or class name) of the residency policy."""
        return self._policy_name

    @property
    def used_mb(self) -> int:
        """MB of objects currently resident."""
        return int(self._policy.used_chunks)

    @property
    def raw_used_mb(self) -> int:
        """Raw device usage including replication."""
        return self.used_mb * self._replication

    def resident(self, object_name: str) -> bool:
        """Whether an object currently resides in the cache tier."""
        if object_name not in self._object_sizes:
            return False
        return self._policy.resident(object_name)

    # ------------------------------------------------------------------
    # IO paths
    # ------------------------------------------------------------------

    def write_object(self, object_name: str, size_mb: int) -> None:
        """Write an object (write-back: lands in the cache and the pool).

        The backing pool write happens immediately in this emulation; flush
        timing does not affect read latency, which is what the evaluation
        measures.
        """
        self._pool.write_object(object_name, size_mb)
        previous_size = self._object_sizes.get(object_name)
        if previous_size is not None and previous_size != size_mb:
            # Rewrite with a different size: drop the stale-sized entry so
            # the re-admission charges the policy the new footprint.
            self._policy.evict(object_name)
        self._object_sizes[object_name] = size_mb
        self._policy.register_file(object_name, size_mb)
        outcome = self._policy.admit(object_name)
        # Exact eviction accounting: sum the *victims'* sizes (the old
        # implementation multiplied the eviction count by the incoming
        # object's size and missed promotion-path evictions entirely).
        self.stats.evictions_mb += sum(chunks for _, chunks in outcome.evicted)

    def read_object(self, object_name: str, arrival_time: float) -> Tuple[float, bool]:
        """Read an object through the cache tier.

        Returns
        -------
        tuple
            ``(completion_time, hit)``.  A hit is served from the SSD at the
            Table-V latency for the object's chunk size; a miss reads from
            the erasure-coded pool and then promotes the object (if the
            policy admits it -- an object larger than the whole cache, or a
            zero-capacity tier, simply takes the miss path every time).
        """
        size_mb = self._object_sizes.get(object_name)
        if size_mb is None:
            raise ClusterError(
                f"object {object_name!r} was never written through the cache tier"
            )
        self.stats.reads += 1
        outcome = self._policy.observe(object_name, now=arrival_time)
        self.stats.evictions_mb += sum(chunks for _, chunks in outcome.evicted)
        if outcome.hit:
            self.stats.hits += 1
            completion = self._ssd_enqueue(arrival_time, self._ssd_read_latency(size_mb))
            return completion, True
        # Miss: read from the storage pool, then promote the whole object
        # into the cache tier (write-back tiering promotes on read misses);
        # the read completes once the promotion write has landed on the SSDs.
        # Degenerate configurations (zero capacity, oversized object) miss
        # without actually promoting, and are not counted as promotions.
        if outcome.promoted:
            self.stats.promotions += 1
        storage_completion, _ = self._pool.read_object(object_name, arrival_time)
        completion = self._ssd_enqueue(
            storage_completion, self._ssd_read_latency(size_mb)
        )
        return completion, False

    def _ssd_read_latency(self, object_size_mb: int) -> float:
        """Latency of reading a whole object from the SSD cache tier."""
        return whole_object_ssd_latency(object_size_mb, self._pool.config.k)
