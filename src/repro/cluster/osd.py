"""Object Storage Daemon (OSD) emulation.

An OSD in the emulated cluster pairs a FIFO service queue (the same model as
a storage node in the simulator) with simple object-chunk bookkeeping: which
chunks it stores, per pool, plus journal/data write accounting.  Service
times depend on the chunk size being read, mirroring the Table-IV
measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.cluster.devices import hdd_service_for_chunk_size
from repro.exceptions import ClusterError
from repro.queueing.distributions import ServiceDistribution


@dataclass(frozen=True)
class ChunkKey:
    """Identifies one stored chunk: (pool, object, chunk index)."""

    pool: str
    object_name: str
    chunk_index: int


class OSD:
    """One emulated object storage daemon backed by an HDD.

    Parameters
    ----------
    osd_id:
        Numeric identifier.
    speed_multiplier:
        Scales the mean service time of this OSD relative to the Table-IV
        measurements (values above 1 mean a slower device).
    rng:
        Random generator used for service-time draws.
    """

    def __init__(
        self,
        osd_id: int,
        speed_multiplier: float = 1.0,
        rng: Optional[np.random.Generator] = None,
    ):
        if speed_multiplier <= 0:
            raise ClusterError("speed_multiplier must be positive")
        self.osd_id = osd_id
        self._speed_multiplier = float(speed_multiplier)
        self._rng = rng if rng is not None else np.random.default_rng()
        self._busy_until = 0.0
        self._stored: Dict[ChunkKey, int] = {}
        self._chunks_read = 0
        self._chunks_written = 0
        self._bytes_stored_mb = 0.0
        self._busy_time = 0.0
        self._service_cache: Dict[int, ServiceDistribution] = {}

    # ------------------------------------------------------------------
    # Storage bookkeeping
    # ------------------------------------------------------------------

    @property
    def chunks_stored(self) -> int:
        """Number of chunks currently stored."""
        return len(self._stored)

    @property
    def chunks_read(self) -> int:
        """Number of chunk reads served."""
        return self._chunks_read

    @property
    def chunks_written(self) -> int:
        """Number of chunk writes handled."""
        return self._chunks_written

    @property
    def stored_mb(self) -> float:
        """Total stored data in MB."""
        return self._bytes_stored_mb

    def store_chunk(self, key: ChunkKey, chunk_size_mb: int) -> None:
        """Persist a chunk (write path; journal cost is not queued)."""
        if chunk_size_mb <= 0:
            raise ClusterError("chunk size must be positive")
        if key not in self._stored:
            self._bytes_stored_mb += chunk_size_mb
        self._stored[key] = chunk_size_mb
        self._chunks_written += 1

    def has_chunk(self, key: ChunkKey) -> bool:
        """Whether this OSD stores the given chunk."""
        return key in self._stored

    def drop_chunk(self, key: ChunkKey) -> bool:
        """Remove a chunk (used when pools are deleted); returns presence."""
        size = self._stored.pop(key, None)
        if size is None:
            return False
        self._bytes_stored_mb -= size
        return True

    # ------------------------------------------------------------------
    # Read path (FIFO queue)
    # ------------------------------------------------------------------

    def _service_for(self, chunk_size_mb: int) -> ServiceDistribution:
        if chunk_size_mb not in self._service_cache:
            self._service_cache[chunk_size_mb] = hdd_service_for_chunk_size(chunk_size_mb)
        return self._service_cache[chunk_size_mb]

    def read_chunk(self, key: ChunkKey, arrival_time: float) -> Tuple[float, float]:
        """Serve a chunk read; returns ``(completion_time, service_time)``.

        Raises
        ------
        ClusterError
            If the chunk is not stored on this OSD.
        """
        size = self._stored.get(key)
        if size is None:
            raise ClusterError(
                f"OSD {self.osd_id} does not store chunk {key.object_name}#"
                f"{key.chunk_index} of pool {key.pool!r}"
            )
        service = self._service_for(size)
        service_time = float(service.sample(self._rng)) * self._speed_multiplier
        start = max(arrival_time, self._busy_until)
        completion = start + service_time
        self._busy_until = completion
        self._busy_time += service_time
        self._chunks_read += 1
        return completion, service_time

    def utilization(self, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` spent serving reads."""
        if horizon <= 0:
            raise ClusterError("horizon must be positive")
        return min(self._busy_time / horizon, 1.0)

    def backlog(self, now: float) -> float:
        """Outstanding work (time units) queued at time ``now``."""
        return max(self._busy_until - now, 0.0)

    def reset_queue(self) -> None:
        """Clear queue state but keep stored chunks."""
        self._busy_until = 0.0
        self._busy_time = 0.0
        self._chunks_read = 0
