"""CRUSH-like pseudo-random data placement with placement groups.

Ceph maps every object to a placement group (PG) by hashing its name, then
maps each PG to an ordered list of OSDs via the CRUSH algorithm.  The
emulation reproduces the two-level structure: a deterministic hash assigns
objects to PGs, and each PG owns a pseudo-random (but fixed) ordered set of
distinct OSDs large enough for the pool's erasure-code width.  Eq. (17) of
the paper gives the PG count used by the prototype:

    num_pgs = num_osds * 100 / m        (m = number of coded chunks)

rounded to the next power of two, which is the convention Ceph documents.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Sequence

import numpy as np

from repro.exceptions import ClusterError


def placement_group_count(num_osds: int, coded_chunks: int, round_to_power_of_two: bool = False) -> int:
    """Eq. (17): recommended placement-group count for an erasure-coded pool.

    Parameters
    ----------
    num_osds:
        Number of OSDs backing the pool.
    coded_chunks:
        ``m`` in the paper's notation -- the number of parity chunks of the
        ``(k + m, k)`` code.
    round_to_power_of_two:
        Ceph recommends rounding the result up to a power of two; the paper
        quotes the un-rounded values (256 for the storage pools, 128 for the
        cache tier), so rounding is off by default.
    """
    if num_osds <= 0:
        raise ClusterError("num_osds must be positive")
    if coded_chunks <= 0:
        raise ClusterError("coded_chunks must be positive")
    count = num_osds * 100 // coded_chunks
    if count <= 0:
        count = 1
    if round_to_power_of_two:
        power = 1
        while power < count:
            power *= 2
        count = power
    return count


def _stable_hash(text: str) -> int:
    """Deterministic 64-bit hash of a string (stable across processes)."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class CrushMap:
    """Maps objects to placement groups and placement groups to OSD lists.

    Parameters
    ----------
    osd_ids:
        The OSDs available to the pool.
    num_placement_groups:
        Number of PGs (e.g. from :func:`placement_group_count`).
    width:
        Number of distinct OSDs each PG must provide (the erasure-code
        length ``n`` of the pool).
    seed:
        Seed controlling the pseudo-random PG-to-OSD mapping.
    """

    def __init__(
        self,
        osd_ids: Sequence[int],
        num_placement_groups: int,
        width: int,
        seed: int = 0,
    ):
        osd_list = list(osd_ids)
        if len(set(osd_list)) != len(osd_list):
            raise ClusterError("osd_ids contains duplicates")
        if width <= 0 or width > len(osd_list):
            raise ClusterError(
                f"width {width} must lie in [1, {len(osd_list)}] (number of OSDs)"
            )
        if num_placement_groups <= 0:
            raise ClusterError("num_placement_groups must be positive")
        self._osd_ids = osd_list
        self._num_pgs = int(num_placement_groups)
        self._width = int(width)
        rng = np.random.default_rng(seed)
        self._pg_to_osds: Dict[int, List[int]] = {}
        for pg in range(self._num_pgs):
            chosen = rng.choice(len(osd_list), size=width, replace=False)
            self._pg_to_osds[pg] = [osd_list[int(index)] for index in chosen]

    @property
    def num_placement_groups(self) -> int:
        """Number of placement groups."""
        return self._num_pgs

    @property
    def width(self) -> int:
        """Number of OSDs each placement group spans."""
        return self._width

    def placement_group_for(self, object_name: str) -> int:
        """Deterministically map an object name to a placement group."""
        return _stable_hash(object_name) % self._num_pgs

    def osds_for_placement_group(self, pg: int) -> List[int]:
        """The ordered OSD list of placement group ``pg``."""
        try:
            return list(self._pg_to_osds[pg])
        except KeyError as error:
            raise ClusterError(f"unknown placement group {pg}") from error

    def osds_for_object(self, object_name: str) -> List[int]:
        """The ordered OSD list that stores ``object_name``'s chunks."""
        return self.osds_for_placement_group(self.placement_group_for(object_name))

    def pg_distribution(self) -> Dict[int, int]:
        """How many placement groups land on each OSD (balance diagnostic)."""
        counts = {osd_id: 0 for osd_id in self._osd_ids}
        for osds in self._pg_to_osds.values():
            for osd_id in osds:
                counts[osd_id] += 1
        return counts
