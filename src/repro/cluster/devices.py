"""Storage-device service-time models from the paper's testbed measurements.

Table IV of the paper reports the measured mean and variance of chunk read
service times at HDD-backed OSDs, and Table V reports the read latency of
the same chunk sizes from the SAS-SSD cache, for chunk sizes of 1, 4, 16, 64
and 256 MB.  Since the real testbed is not available, the emulated cluster
draws service times from log-normal distributions fitted to those published
moments (the analytical model only consumes the first moments, so the fit
preserves the quantities the comparison depends on).

All times are in **milliseconds**, matching the paper's tables.
"""

from __future__ import annotations

from typing import Dict

from repro.exceptions import ClusterError
from repro.queueing.distributions import (
    DeterministicService,
    EmpiricalMomentsService,
    ServiceDistribution,
)

#: Mean / variance of chunk read service time at an HDD-backed OSD
#: (Table IV of the paper), keyed by chunk size in MB.  Units: milliseconds.
HDD_SERVICE_TABLE: Dict[int, Dict[str, float]] = {
    1: {"mean_ms": 6.6696, "variance_ms2": 0.0963},
    4: {"mean_ms": 35.8800, "variance_ms2": 2.6925},
    16: {"mean_ms": 147.8462, "variance_ms2": 388.9872},
    64: {"mean_ms": 355.0800, "variance_ms2": 1256.6100},
    256: {"mean_ms": 6758.06, "variance_ms2": 554180.0},
}

#: Read latency of a chunk from the SAS-SSD cache (Table V of the paper),
#: keyed by chunk size in MB.  Units: milliseconds.
SSD_CACHE_LATENCY_TABLE: Dict[int, float] = {
    1: 1.86619,
    4: 7.35639,
    16: 30.4927,
    64: 97.0968,
    256: 349.133,
}

#: Object sizes used in the paper's evaluation and the chunk size each maps
#: to under a (7, 4) code (object size divided by k = 4).
OBJECT_TO_CHUNK_SIZE_MB: Dict[int, int] = {
    4: 1,
    16: 4,
    64: 16,
    256: 64,
    1024: 256,
}


def hdd_service_for_chunk_size(chunk_size_mb: int) -> ServiceDistribution:
    """Service-time distribution of an HDD OSD for the given chunk size.

    The distribution is a log-normal fitted to the Table-IV mean/variance.
    """
    if chunk_size_mb not in HDD_SERVICE_TABLE:
        raise ClusterError(
            f"no HDD measurements for chunk size {chunk_size_mb} MB; "
            f"known sizes: {sorted(HDD_SERVICE_TABLE)}"
        )
    row = HDD_SERVICE_TABLE[chunk_size_mb]
    return EmpiricalMomentsService(mean=row["mean_ms"], variance=row["variance_ms2"])


def ssd_service_for_chunk_size(chunk_size_mb: int, deterministic: bool = True) -> ServiceDistribution:
    """Read-latency distribution of the SSD cache for the given chunk size.

    Table V only reports a mean, so the default model is deterministic; pass
    ``deterministic=False`` for a low-variance log-normal (5% coefficient of
    variation) instead.
    """
    if chunk_size_mb not in SSD_CACHE_LATENCY_TABLE:
        raise ClusterError(
            f"no SSD measurements for chunk size {chunk_size_mb} MB; "
            f"known sizes: {sorted(SSD_CACHE_LATENCY_TABLE)}"
        )
    mean = SSD_CACHE_LATENCY_TABLE[chunk_size_mb]
    if deterministic:
        return DeterministicService(mean)
    return EmpiricalMomentsService(mean=mean, variance=(0.05 * mean) ** 2)


def chunk_size_for_object(object_size_mb: int, k: int = 4) -> int:
    """Chunk size (MB) of an object under a ``(n, k)`` code.

    The paper's object sizes map exactly onto its measured chunk sizes for
    ``k = 4``; other combinations fall back to integer division.
    """
    if k <= 0:
        raise ClusterError(f"k must be positive, got {k}")
    if k == 4 and object_size_mb in OBJECT_TO_CHUNK_SIZE_MB:
        return OBJECT_TO_CHUNK_SIZE_MB[object_size_mb]
    chunk = object_size_mb // k
    if chunk <= 0:
        raise ClusterError(
            f"object of {object_size_mb} MB cannot be split into k={k} chunks "
            "of at least 1 MB"
        )
    return chunk


def nearest_measured_chunk_size(chunk_size_mb: float) -> int:
    """Snap an arbitrary chunk size to the nearest measured size."""
    if chunk_size_mb <= 0:
        raise ClusterError("chunk size must be positive")
    return min(HDD_SERVICE_TABLE, key=lambda size: abs(size - chunk_size_mb))


def whole_object_ssd_latency(object_size_mb: int, k: int) -> float:
    """Latency (ms) of streaming a whole object from one SSD cache replica.

    The cache tier stores objects replicated (not erasure coded), so a read
    streams the full object from one SSD.  The Table-V measurements are per
    chunk; reading ``k`` chunks' worth of data sequentially costs roughly
    ``k`` times the per-chunk latency of the corresponding chunk size.
    Shared by the per-request cache tier and the trace-replay engines so
    their latency models cannot drift apart.
    """
    k = max(k, 1)
    chunk_size = max(object_size_mb // k, 1)
    measured = nearest_measured_chunk_size(chunk_size)
    per_chunk = ssd_service_for_chunk_size(measured).mean
    return float(per_chunk * k * (chunk_size / measured))


def hdd_speed_multipliers(num_osds: int, spread: float = 0.3, seed: int = 7) -> list[float]:
    """Per-OSD speed multipliers modelling device heterogeneity.

    The paper's simulation uses heterogeneous service rates across the 12
    servers; the testbed OSDs are nominally identical but still differ in
    practice.  This helper produces deterministic multipliers in
    ``[1 - spread, 1 + spread]`` used to scale the Table-IV means per OSD.
    """
    import numpy as np

    if num_osds <= 0:
        raise ClusterError("num_osds must be positive")
    if not 0.0 <= spread < 1.0:
        raise ClusterError("spread must lie in [0, 1)")
    rng = np.random.default_rng(seed)
    return [float(value) for value in 1.0 + spread * (2.0 * rng.random(num_osds) - 1.0)]
