"""Ceph-like object-storage cluster emulation.

The paper prototypes functional caching on a 12-OSD Ceph (Jewel) cluster by
creating one erasure-coded pool per *equivalent code* ``(7, 4 - d)`` and
routing each object to the pool matching its current cache allocation; the
baseline is Ceph's replicated LRU cache tier in front of a single (7,4)
pool.  This package emulates that setup end-to-end on the discrete-event
substrate: OSD daemons with FIFO queues and measured HDD service times
(Table IV), an SSD cache device (Table V), CRUSH-like pseudo-random chunk
placement with placement groups (Eq. 17), equivalent-code pools and the LRU
cache tier.
"""

from repro.cluster.devices import (
    HDD_SERVICE_TABLE,
    SSD_CACHE_LATENCY_TABLE,
    hdd_service_for_chunk_size,
    ssd_service_for_chunk_size,
)
from repro.cluster.crush import CrushMap, placement_group_count
from repro.cluster.osd import OSD
from repro.cluster.pool import ErasureCodedPool, PoolConfig
from repro.cluster.cachetier import CacheTier
from repro.cluster.cluster import CephLikeCluster, ClusterConfig, ReadResult
from repro.cluster.replay import ClusterReplay, ReplayResult, ReplayTrace

__all__ = [
    "HDD_SERVICE_TABLE",
    "SSD_CACHE_LATENCY_TABLE",
    "hdd_service_for_chunk_size",
    "ssd_service_for_chunk_size",
    "CrushMap",
    "placement_group_count",
    "OSD",
    "ErasureCodedPool",
    "PoolConfig",
    "CacheTier",
    "CephLikeCluster",
    "ClusterConfig",
    "ReadResult",
    "ClusterReplay",
    "ReplayResult",
    "ReplayTrace",
]
