"""Policy-driven trace replay of the cache-tier read benchmark.

This is the shared trace-replay interface behind the cluster emulation's
read benchmarks: a :class:`ReplayTrace` (seeded Poisson request stream), a
:class:`~repro.policies.base.ChunkCachingPolicy` deciding residency, and a
latency model mirroring the emulated devices (CRUSH-placed chunk reads on
FIFO HDD OSDs, fork-join over the fetched chunks, a small bank of SSD cache
devices serving hits and landing promotions).  Two engines replay the same
trace over the *same randomness*:

* ``engine="request"`` -- the reference per-request event loop: one policy
  ``observe`` per request in arrival order, then a scalar queue update per
  miss chunk and a scalar two-server SSD pass.

* ``engine="epoch"`` -- the epoch-batched engine.  Cache state is frozen
  for an epoch of requests, so hit classification is a residency lookup;
  per-OSD FIFO departures (Lindley scans), the fork-join maxima and the
  SSD multi-server queue are computed in bulk with the batch-engine
  primitives; evictions and promotions are applied at epoch boundaries.
  With the default ``epoch_length=None`` the engine places a boundary at
  every miss (and at every TTL expiry), which preserves per-request
  semantics *exactly*: a run of full hits changes recency/frequency state
  but never residency, so folding the run into the policy at the boundary
  (:meth:`~repro.policies.base.ChunkCachingPolicy.touch_epoch`) reproduces
  the per-request state evolution.  Hit/miss/promotion/eviction counters
  match the request engine exactly and latency statistics agree to within
  floating-point reassociation (~1e-12 relative; the closed-form Lindley
  scans regroup the same additions).  A fixed ``epoch_length=E`` freezes
  state for ``E`` requests at a time instead -- an explicit approximation
  that trades exactness for fewer boundaries on miss-heavy traces
  (``E=1`` again degenerates to exact per-request semantics).

Randomness is decomposed so the two engines consume identical draws: the
classification pass touches no generator at all, and the storage-node
choices and chunk service times are then drawn *per miss* from two
dedicated streams of one root ``SeedSequence`` -- engines that agree on
the miss set (exact modes always do) see identical draws.  Node selection
is uniform over the object's CRUSH placement (state-free, unlike the
queue-dependent least-backlog rule of the per-request
:class:`~repro.cluster.cachetier.CacheTier` path, which cannot be
replayed out of order).

**Failure suite.**  ``run(faults=..., fault_params=...)`` replays under a
:mod:`repro.faults` schedule.  The schedule compiles (from a third child of
the same root ``SeedSequence``, so the healthy draws are untouched) into a
piecewise-constant :class:`~repro.faults.base.FaultTimeline` whose state
changes are fed to the epoch classifiers as static break points through the
:class:`~repro.cluster.boundaries.BoundaryClock` -- fault events are just
another epoch-boundary class next to misses and TTL expiries.  Between
boundaries the cluster state is frozen and both engines share one
deterministic *fetch plan*: a miss whose preferred chunks (its first
``storage_chunks`` schedule choices) all sit on live OSDs reads exactly
those chunks; if any preferred OSD is down the read *degrades* to a
k-of-n repair read (``ReedSolomonCode.repair_chunk`` semantics: any ``k``
distinct chunks reconstruct the stripe) against the first ``k`` surviving
OSDs in schedule order; if fewer than the needed chunks survive the read
*fails* and is excluded from the latency population (policy admission
stays fault-oblivious, by design -- classification never consumes
randomness or cluster state).  Straggler multipliers scale per-chunk
service times through the per-OSD lane of the grouped Lindley kernels, and
background repair jobs are spliced into the per-OSD FIFO queues as
competing constant-service work (arrival-time order, foreground first on
ties) in both engines.  An empty schedule is bit-equal to the healthy
replay; under any seeded schedule the two engines still agree (counters
bit-equal, latencies to ~1e-12 reassociation error).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Union

import numpy as np

from repro.cluster.boundaries import BoundaryClock
from repro.cluster.crush import CrushMap, placement_group_count
from repro.cluster.devices import (
    hdd_service_for_chunk_size,
    hdd_speed_multipliers,
    whole_object_ssd_latency,
)
from repro.exceptions import ClusterError
from repro.faults.base import FaultLike, FaultTimeline, compile_fault_schedule
from repro.policies import ChunkCachingPolicy, create_policy
from repro.simulation.arrivals import generate_request_arrays
from repro.kernels import (
    fifo_departures_grouped,
    last_access_fold,
    multi_server_departures,
    segment_max,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.cluster.cluster import ClusterConfig


@dataclass(frozen=True)
class ReplayTrace:
    """A request trace: sorted arrival times plus object indices.

    Construction validates the arrays -- negative, non-finite or
    non-monotone ``times_ms``, mismatched ``times_ms``/``object_positions``
    lengths and positions outside ``object_ids`` raise
    :class:`~repro.exceptions.ClusterError` immediately instead of silently
    corrupting the Lindley scans downstream.
    """

    times_ms: np.ndarray
    object_positions: np.ndarray
    object_ids: List[str]

    def __post_init__(self) -> None:
        times = np.asarray(self.times_ms, dtype=np.float64)
        positions = np.asarray(self.object_positions, dtype=np.int64)
        if times.ndim != 1 or positions.ndim != 1:
            raise ClusterError("times_ms and object_positions must be one-dimensional")
        if times.size != positions.size:
            raise ClusterError(
                f"times_ms has {times.size} entries but object_positions has "
                f"{positions.size}; every request needs exactly one of each"
            )
        if times.size:
            if not bool(np.all(np.isfinite(times))):
                raise ClusterError("times_ms must be finite")
            if float(times[0]) < 0.0:
                raise ClusterError("times_ms must be non-negative")
            if bool(np.any(np.diff(times) < 0.0)):
                raise ClusterError("times_ms must be sorted in non-decreasing arrival order")
            lowest = int(positions.min())
            highest = int(positions.max())
            if lowest < 0 or highest >= len(self.object_ids):
                raise ClusterError(
                    f"object_positions must index object_ids "
                    f"(got range [{lowest}, {highest}] against {len(self.object_ids)} ids)"
                )
        object.__setattr__(self, "times_ms", times)
        object.__setattr__(self, "object_positions", positions)

    @property
    def num_requests(self) -> int:
        """Number of requests in the trace."""
        return int(self.times_ms.size)

    @classmethod
    def from_rates(
        cls,
        arrival_rates: Dict[str, float],
        duration_s: float,
        seed: Optional[int] = None,
    ) -> "ReplayTrace":
        """Draw a seeded Poisson trace (times in milliseconds)."""
        rng = np.random.default_rng(seed)
        times_s, positions, object_ids = generate_request_arrays(
            arrival_rates, duration_s, rng
        )
        return cls(
            times_ms=times_s * 1000.0,
            object_positions=positions,
            object_ids=object_ids,
        )

    @classmethod
    def from_request_stream(cls, stream) -> "ReplayTrace":
        """Wrap a :class:`~repro.workloads.base.RequestStream` for replay.

        The stream's times are seconds (the workloads/ingest convention);
        replay traces keep milliseconds, matching the device latency model.
        """
        return cls(
            times_ms=np.asarray(stream.times, dtype=np.float64) * 1000.0,
            object_positions=np.asarray(stream.object_positions, dtype=np.int64),
            object_ids=list(stream.object_ids),
        )


@dataclass
class ReplayResult:
    """Statistics of one trace replay.

    ``latencies_ms`` covers the *served* requests only: under a fault
    schedule, reads that could not reach enough surviving chunks are
    counted in ``failed_reads`` (and cleared in ``served_mask``) rather
    than assigned a fictitious latency.  On a healthy replay every read is
    served and the two views coincide.
    """

    engine: str
    policy: str
    reads: int
    hits: int
    promotions: int
    evictions_mb: float
    chunks_from_cache: int
    chunks_from_storage: int
    latencies_ms: np.ndarray
    hit_mask: np.ndarray
    degraded_reads: int = 0
    failed_reads: int = 0
    repair_jobs: int = 0
    faults: Optional[str] = None
    served_mask: Optional[np.ndarray] = None

    @property
    def misses(self) -> int:
        """Number of reads not served entirely from the cache tier."""
        return self.reads - self.hits

    @property
    def served(self) -> int:
        """Number of reads that completed (reads minus failed reads)."""
        return self.reads - self.failed_reads

    @property
    def hit_ratio(self) -> float:
        """Fraction of reads that fully hit the cache (0.0 if no reads)."""
        if self.reads == 0:
            return 0.0
        return self.hits / self.reads

    def mean_latency_ms(self) -> float:
        """Mean access latency in milliseconds over the served reads.

        Contract: an empty latency population (an empty trace, or a fault
        schedule that failed every read) yields ``nan`` -- callers can
        propagate or filter it -- rather than an exception from deep inside
        NumPy.
        """
        if self.latencies_ms.size == 0:
            return math.nan
        return float(self.latencies_ms.mean())

    def percentile_ms(self, q: float) -> float:
        """Latency percentile in milliseconds over the served reads.

        Same contract as :meth:`mean_latency_ms`: ``nan`` when no read was
        served.
        """
        if self.latencies_ms.size == 0:
            return math.nan
        return float(np.percentile(self.latencies_ms, q))


#: How a policy may be supplied: a registered name or a factory
#: ``(capacity_chunks, chunks_per_file, **params) -> ChunkCachingPolicy``.
PolicyLike = Union[str, Callable[..., ChunkCachingPolicy]]

#: Hit-run length at which the exact engine switches from the Python scan
#: to vectorised block classification, and the initial vector block size.
_VECTOR_THRESHOLD = 96
_VECTOR_BLOCK = 512
_VECTOR_BLOCK_MAX = 65536


@dataclass(frozen=True)
class _FetchPlan:
    """The deterministic storage-fetch plan shared by both engines.

    Computed once from the classification result, the per-miss randomness
    and the (optional) fault timeline; the engines then differ only in how
    they evaluate the queueing dynamics over the *same* chunk fetches.
    ``entry_*`` arrays are flat chunk fetches grouped per fetching request
    (``fetch_requests``/``segment_starts``), in request order; the repair
    arrays are the background jobs that actually run (jobs landing on a
    down OSD are dropped).
    """

    fetch_requests: np.ndarray
    segment_starts: np.ndarray
    entry_requests: np.ndarray
    entry_osds: np.ndarray
    entry_services: np.ndarray
    served_mask: np.ndarray
    degraded_mask: np.ndarray
    repair_times_ms: np.ndarray
    repair_osds: np.ndarray
    repair_services_ms: np.ndarray

    @property
    def chunks_from_storage(self) -> int:
        """Chunk fetches actually issued (degraded reads fan out to k)."""
        return int(self.entry_osds.size)

    @property
    def degraded_reads(self) -> int:
        """Served reads that re-routed to a k-of-n repair read."""
        return int(np.count_nonzero(self.degraded_mask))

    @property
    def failed_reads(self) -> int:
        """Reads with fewer surviving chunks than needed."""
        return int(self.served_mask.size - np.count_nonzero(self.served_mask))


class ClusterReplay:
    """Replays read traces against the emulated cluster's latency model.

    Parameters
    ----------
    config:
        The :class:`~repro.cluster.cluster.ClusterConfig` describing the
        cluster (code, object size, cache capacity, seeds).
    object_ids:
        The objects of the workload; each occupies one CRUSH placement of
        ``n`` OSDs and ``k`` chunks of the configured chunk size.
    policy:
        Registered cache-policy name (``"lru"``, ``"lfu"``, ...) or a
        factory ``(capacity_chunks, chunks_per_file, **params)``.  A fresh
        policy is built per :meth:`run`, so one replay instance can run
        both engines from identical initial state.
    policy_params:
        Extra keyword arguments for the policy factory.
    warm:
        Whether to pre-populate the cache by touching every object once in
        order (mirrors writing the objects through the cache tier).
    """

    def __init__(
        self,
        config: "ClusterConfig",
        object_ids: List[str],
        policy: PolicyLike = "lru",
        policy_params: Optional[Dict[str, object]] = None,
        warm: bool = True,
    ):
        self._config = config
        self._object_ids = [str(object_id) for object_id in object_ids]
        self._object_index = {
            object_id: position for position, object_id in enumerate(self._object_ids)
        }
        if len(self._object_index) != len(self._object_ids):
            raise ClusterError("object_ids contains duplicates")
        self._policy = policy
        self._policy_params = dict(policy_params or {})
        self._warm = bool(warm)

        n, k = config.n, config.k
        self._k = k
        self._num_osds = config.num_osds
        parity = n - k if k > 0 else n
        crush = CrushMap(
            sorted(range(config.num_osds)),
            num_placement_groups=placement_group_count(config.num_osds, parity),
            width=n,
            seed=config.seed,
        )
        self._placement = np.asarray(
            [crush.osds_for_object(object_id) for object_id in self._object_ids],
            dtype=np.int64,
        ).reshape(len(self._object_ids), n)
        multipliers = hdd_speed_multipliers(
            config.num_osds, spread=config.osd_speed_spread, seed=config.seed + 13
        )
        self._multipliers = np.asarray(multipliers) * config.service_time_inflation
        self._service = hdd_service_for_chunk_size(config.chunk_size_mb)
        self._ssd_devices = 2
        # Shared with CacheTier._ssd_read_latency, so the replay's latency
        # model cannot drift from the per-request emulation's.
        self._ssd_latency_ms = whole_object_ssd_latency(config.object_size_mb, config.k)

    # ------------------------------------------------------------------
    # Model pieces
    # ------------------------------------------------------------------

    def _build_policy(self) -> ChunkCachingPolicy:
        chunks_per_file = {object_id: self._k for object_id in self._object_ids}
        capacity = self._config.cache_capacity_chunks
        if isinstance(self._policy, str):
            policy = create_policy(
                self._policy, capacity, chunks_per_file, **self._policy_params
            )
        else:
            policy = self._policy(capacity, chunks_per_file, **self._policy_params)
        if self._warm:
            policy.warm(self._object_ids)
        return policy

    @property
    def policy_name(self) -> str:
        """Name (or repr) of the configured policy."""
        return self._policy if isinstance(self._policy, str) else repr(self._policy)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def run(
        self,
        trace: ReplayTrace,
        engine: str = "epoch",
        seed: Optional[int] = None,
        epoch_length: Optional[int] = None,
        faults: FaultLike = None,
        fault_params: Optional[Dict[str, object]] = None,
    ) -> ReplayResult:
        """Replay ``trace`` and return the collected statistics.

        Parameters
        ----------
        trace:
            The request trace (its object ids must be registered).
        engine:
            ``"epoch"`` (vectorised) or ``"request"`` (reference loop).
        seed:
            Root seed of the per-miss scheduling/service randomness; with
            the same seed, engines that classify identically (the exact
            modes always do) consume identical draws.
        epoch_length:
            ``None`` (default) places epoch boundaries at every miss and
            expiry, which preserves per-request semantics exactly; a
            positive integer freezes cache state for that many requests at
            a time (documented approximation; ignored by ``"request"``).
        faults:
            Optional fault schedule: a registered generator name (with
            ``fault_params``), a :class:`~repro.faults.base.FaultSchedule`,
            a compiled :class:`~repro.faults.base.FaultTimeline`, or a
            sequence of those (composed).  The schedule compiles from a
            dedicated third child of the root ``seed``, so the healthy
            scheduling/service draws are byte-identical with or without it;
            an empty schedule reproduces the healthy replay bit-for-bit.
        fault_params:
            Keyword parameters for a generator referenced by name.
        """
        if engine not in ("epoch", "request"):
            raise ClusterError(f"unknown replay engine {engine!r}")
        if epoch_length is not None and epoch_length < 1:
            raise ClusterError("epoch_length must be positive")
        for object_id in trace.object_ids:
            if object_id not in self._object_index:
                raise ClusterError(f"object {object_id!r} was never placed")
        # Map the trace's object positions onto this replay's object table.
        remap = np.asarray(
            [self._object_index[object_id] for object_id in trace.object_ids],
            dtype=np.int64,
        )
        positions = (
            remap[trace.object_positions]
            if trace.num_requests
            else np.empty(0, np.int64)
        )
        times = np.asarray(trace.times_ms, dtype=float)
        num_requests = trace.num_requests
        k = self._k

        # Children 0/1 feed the healthy scheduling/service draws exactly as
        # before; child 2 is reserved for the fault schedule, so adding or
        # removing faults never perturbs the shared randomness.
        streams = np.random.SeedSequence(seed).spawn(3)
        horizon_ms = float(times[-1]) + 1.0 if num_requests else 0.0
        timeline = compile_fault_schedule(
            faults,
            fault_params,
            num_osds=self._num_osds,
            horizon_ms=horizon_ms,
            seed=streams[2],
            service_ms=self._service.mean,
        )
        fault_label = timeline.label if timeline is not None else None
        if timeline is not None and timeline.trivial:
            # A no-op schedule must be indistinguishable from a healthy
            # replay in every mode, including the fixed-epoch approximation
            # (stray boundaries would re-cut approximate epochs).
            timeline = None

        # Phase 1 (engine-specific): hit/miss classification and policy
        # state evolution.  Touches no random stream; fault boundaries cut
        # epochs via the BoundaryClock but never change residency.
        if engine == "request":
            classified = self._classify_requests(positions, times)
        else:
            classified = self._classify_epochs(positions, times, epoch_length, timeline)
        hit_mask, cached_chunks, promotions, evicted_chunks = classified

        # Phase 2 (shared): per-miss randomness, drawn identically for both
        # engines from one root seed.
        miss_requests = np.flatnonzero(~hit_mask)
        schedule_rng = np.random.default_rng(streams[0])
        service_rng = np.random.default_rng(streams[1])
        num_misses = int(miss_requests.size)
        selection = np.argsort(
            schedule_rng.random((num_misses, self._config.n)), axis=1
        )
        base_draws = np.asarray(
            self._service.sample(service_rng, size=(num_misses, k)), dtype=float
        ).reshape(num_misses, k)

        # Phase 2b (shared): the deterministic fetch plan -- which chunks
        # are read from which OSDs at what service time, degraded k-of-n
        # re-routes, failed reads and surviving background repair jobs.
        plan = self._plan_fetches(
            positions, times, miss_requests, cached_chunks, selection, base_draws, timeline
        )

        # Phase 3: latency assembly -- scalar in the reference engine,
        # closed-form vectorised in the epoch engine.
        if engine == "request":
            completion = self._assemble_scalar(times, plan)
        else:
            completion = self._assemble_vectorised(times, plan)

        served = np.flatnonzero(plan.served_mask)
        latencies = completion[served] - times[served]
        hits = int(np.count_nonzero(hit_mask))
        chunks_from_cache = int(cached_chunks.sum())
        return ReplayResult(
            engine=engine,
            policy=self.policy_name,
            reads=num_requests,
            hits=hits,
            promotions=promotions,
            evictions_mb=float(evicted_chunks * self._config.chunk_size_mb),
            chunks_from_cache=chunks_from_cache,
            chunks_from_storage=plan.chunks_from_storage,
            latencies_ms=latencies,
            hit_mask=hit_mask,
            degraded_reads=plan.degraded_reads,
            failed_reads=plan.failed_reads,
            repair_jobs=int(plan.repair_times_ms.size),
            faults=fault_label,
            served_mask=plan.served_mask,
        )

    # ------------------------------------------------------------------
    # Classification, reference engine: one observe per request
    # ------------------------------------------------------------------

    def _classify_requests(self, positions, times):
        policy = self._build_policy()
        num_requests = times.size
        k = self._k
        ids = self._object_ids
        hit_mask = np.zeros(num_requests, dtype=bool)
        cached_chunks = np.zeros(num_requests, dtype=np.int64)
        promotions = 0
        evicted_chunks = 0
        observe = policy.observe
        times_list = times.tolist()
        positions_list = positions.tolist()
        for request in range(num_requests):
            outcome = observe(ids[positions_list[request]], now=times_list[request])
            if outcome.promoted:
                promotions += 1
            for _, chunks in outcome.evicted:
                evicted_chunks += chunks
            if outcome.hit:
                hit_mask[request] = True
                cached_chunks[request] = k
            else:
                cached_chunks[request] = outcome.cached_chunks
        return hit_mask, cached_chunks, promotions, evicted_chunks

    # ------------------------------------------------------------------
    # Classification, epoch engine
    # ------------------------------------------------------------------

    def _classify_epochs(self, positions, times, epoch_length=None, timeline=None):
        clock = BoundaryClock(
            times, timeline.boundaries_ms if timeline is not None else None
        )
        if epoch_length is None:
            return self._classify_miss_bounded(positions, times, clock)
        return self._classify_fixed_epochs(positions, times, int(epoch_length), clock)

    def _classify_miss_bounded(self, positions, times, clock):
        """Exact mode: one epoch per run of hits, boundary at every event.

        A run of full hits never changes residency, so classifying against
        the residency snapshot is exact; the run is folded into the policy
        (unique files in last-access order) before the boundary miss is
        observed.  TTL-style policies additionally bound runs at their next
        expiry instant, and the :class:`BoundaryClock` contributes the
        static fault-event break points -- misses, expiries and fault
        events form one merged boundary stream.  Cutting a hit run at a
        static boundary stays exact because ``touch_epoch`` folds are
        associative across a split.  Short runs are scanned in plain Python
        (per-epoch numpy calls on tiny slices cost more than they
        vectorise); once a run exceeds :data:`_VECTOR_THRESHOLD` the scan
        switches to doubling vectorised blocks, so high-hit-ratio traces
        classify at array speed.
        """
        policy = self._build_policy()
        num_requests = times.size
        k = self._k
        ids = self._object_ids
        index = self._object_index
        lookup = policy.lookup
        touch_epoch = policy.touch_epoch
        time_driven = not policy.epoch_invariant
        wants_counts = policy.counts_in_touch

        resident = [False] * len(ids)
        for object_id, chunks in policy.occupancy().items():
            resident[index[object_id]] = chunks >= k
        resident_array = np.asarray(resident, dtype=bool)

        hit_mask = np.zeros(num_requests, dtype=bool)
        cached_chunks = np.zeros(num_requests, dtype=np.int64)
        promotions = 0
        evicted_chunks = 0
        positions_list = positions.tolist()
        times_list = times.tolist()

        def handle_miss(request: int) -> None:
            nonlocal promotions, evicted_chunks
            at = positions_list[request]
            outcome = policy.observe(ids[at], now=times_list[request])
            if outcome.promoted:
                promotions += 1
            for object_id, chunks in outcome.evicted:
                evicted_chunks += chunks
                victim = index[object_id]
                full = lookup(object_id) >= k
                resident[victim] = full
                resident_array[victim] = full
            full = lookup(ids[at]) >= k
            resident[at] = full
            resident_array[at] = full
            cached_chunks[request] = outcome.cached_chunks

        def fold_array(block: np.ndarray, start: int) -> None:
            unique_positions, counts, last_offsets = last_access_fold(block)
            touch_epoch(
                [ids[at] for at in unique_positions.tolist()],
                counts=counts.tolist() if wants_counts else None,
                times=times[start + last_offsets].tolist() if time_driven else None,
                total=int(block.size),
            )
            hit_mask[start : start + block.size] = True
            cached_chunks[start : start + block.size] = k

        cursor = 0
        vector_block = 0
        while cursor < num_requests:
            limit = clock.next_break(cursor)
            if time_driven:
                next_event = policy.next_event_time()
                if next_event < math.inf:
                    limit = min(limit, bisect.bisect_left(times_list, next_event))
                    if limit <= cursor:
                        for object_id, chunks in policy.advance(next_event):
                            evicted_chunks += chunks
                            victim = index[object_id]
                            full = lookup(object_id) >= k
                            resident[victim] = full
                            resident_array[victim] = full
                        continue
            if vector_block:
                end = min(cursor + vector_block, limit)
                block = positions[cursor:end]
                mask = resident_array[block]
                if mask.all():
                    fold_array(block, cursor)
                    cursor = end
                    if end < limit:
                        vector_block = min(vector_block * 2, _VECTOR_BLOCK_MAX)
                    continue
                first_miss = int(np.argmin(mask))
                if first_miss:
                    fold_array(block[:first_miss], cursor)
                handle_miss(cursor + first_miss)
                cursor += first_miss + 1
                vector_block = 0
                continue
            # Python scan for short runs.
            run_last: Dict[int, int] = {}
            run_counts: Optional[Dict[int, int]] = {} if wants_counts else None
            scan = cursor
            streak_cap = cursor + _VECTOR_THRESHOLD
            while scan < limit:
                at = positions_list[scan]
                if not resident[at]:
                    break
                run_last[at] = scan
                if run_counts is not None:
                    run_counts[at] = run_counts.get(at, 0) + 1
                scan += 1
                if scan >= streak_cap:
                    vector_block = _VECTOR_BLOCK
                    break
            if scan > cursor:
                order = sorted(run_last, key=run_last.__getitem__)
                touch_epoch(
                    [ids[at] for at in order],
                    counts=[run_counts[at] for at in order]
                    if run_counts is not None
                    else None,
                    times=[times_list[run_last[at]] for at in order]
                    if time_driven
                    else None,
                    total=scan - cursor,
                )
                hit_mask[cursor:scan] = True
                cached_chunks[cursor:scan] = k
            if scan < limit and not vector_block:
                handle_miss(scan)
                scan += 1
            cursor = scan
        return hit_mask, cached_chunks, promotions, evicted_chunks

    def _classify_fixed_epochs(self, positions, times, epoch_length, clock):
        """Approximate mode: residency frozen for ``epoch_length`` requests.

        The whole epoch is classified against the snapshot taken at its
        start; the accesses are then folded back into the policy in order
        (hit runs via ``touch_epoch``, frozen misses via ``observe``) and
        the snapshot is refreshed.  TTL expiries and the static fault-event
        break points of the :class:`BoundaryClock` additionally bound every
        epoch, so no approximate epoch ever straddles a cluster-state
        change.  ``epoch_length=1`` degenerates to the exact per-request
        semantics.
        """
        policy = self._build_policy()
        num_requests = times.size
        num_objects = len(self._object_ids)
        k = self._k
        ids = self._object_ids
        index = self._object_index

        occupancy = np.zeros(num_objects, dtype=np.int64)
        for object_id, chunks in policy.occupancy().items():
            occupancy[index[object_id]] = chunks
        resident_full = occupancy >= k

        hit_mask = np.zeros(num_requests, dtype=bool)
        cached_chunks = np.zeros(num_requests, dtype=np.int64)
        promotions = 0
        evicted_chunks = 0

        def apply_evictions(evictions) -> int:
            removed = 0
            for object_id, chunks in evictions:
                removed += chunks
                at = index[object_id]
                occupancy[at] = max(occupancy[at] - chunks, 0)
                resident_full[at] = occupancy[at] >= k
            return removed

        cursor = 0
        while cursor < num_requests:
            # Time-driven residency changes (TTL expiry) and static fault
            # events bound every epoch.
            next_event = policy.next_event_time()
            end = min(num_requests, cursor + epoch_length, clock.next_break(cursor))
            if next_event < math.inf:
                cap = int(np.searchsorted(times, next_event, side="left"))
                if cap <= cursor:
                    evicted_chunks += apply_evictions(policy.advance(next_event))
                    continue
                end = min(end, cap)
            block = positions[cursor:end]
            mask = resident_full[block]
            hit_mask[cursor:end] = mask
            cached_chunks[cursor:end] = np.where(mask, k, occupancy[block])
            run_start = 0
            for offset in np.flatnonzero(~mask):
                offset = int(offset)
                if offset > run_start:
                    self._fold_frozen_hits(
                        policy, ids, block[run_start:offset], times, cursor + run_start
                    )
                outcome = policy.observe(
                    ids[block[offset]], now=times[cursor + offset]
                )
                if outcome.promoted:
                    promotions += 1
                evicted_chunks += apply_evictions(outcome.evicted)
                run_start = offset + 1
            if run_start < block.size:
                self._fold_frozen_hits(
                    policy, ids, block[run_start:], times, cursor + run_start
                )
            for at in np.unique(block):
                occupancy[at] = policy.lookup(ids[at])
                resident_full[at] = occupancy[at] >= k
            cursor = end
        return hit_mask, cached_chunks, promotions, evicted_chunks

    @staticmethod
    def _fold_frozen_hits(policy, ids, run, times, start):
        if run.size == 0:
            return
        unique_positions, counts, last_offsets = last_access_fold(run)
        policy.touch_epoch(
            [ids[at] for at in unique_positions.tolist()],
            counts=counts.tolist(),
            times=times[start + last_offsets].tolist(),
            total=int(run.size),
        )

    # ------------------------------------------------------------------
    # Fetch planning (shared by both engines)
    # ------------------------------------------------------------------

    def _plan_fetches(
        self, positions, times, miss_requests, cached_chunks, selection, base_draws, timeline
    ):
        """Resolve every miss into concrete chunk fetches.

        Healthy path: miss ``m`` with ``s = k - cached`` storage chunks
        reads its first ``s`` schedule choices, service drawn from draw
        columns ``0..s-1``.  Under a fault timeline the miss is looked up
        in its constant-state interval: if every preferred OSD is alive the
        plan is unchanged (and with a trivial timeline, byte-identical --
        the draws, OSDs and 1.0-multiplied services are bit-equal); if a
        preferred OSD is down the read degrades to the first ``k``
        surviving schedule choices (repair-read fan-out), and with fewer
        than the needed survivors it fails.  Straggler multipliers scale
        the per-entry services; repair jobs arriving on a dead OSD are
        dropped.
        """
        k = self._k
        num_requests = times.size
        no_repairs = (np.empty(0, float), np.empty(0, np.int64), np.empty(0, float))
        storage_counts = k - cached_chunks[miss_requests]
        served_mask = np.ones(num_requests, dtype=bool)
        degraded_mask = np.zeros(num_requests, dtype=bool)

        if timeline is None:
            active = storage_counts > 0
            fetch_requests = miss_requests[active]
            counts = storage_counts[active]
            total_chunks = int(counts.sum())
            if total_chunks:
                ranks = np.flatnonzero(active)
                rows = np.repeat(ranks, counts)
                entry_requests = np.repeat(fetch_requests, counts)
                starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
                columns = np.arange(total_chunks) - np.repeat(starts, counts)
                chosen = selection[rows, columns]
                entry_osds = self._placement[positions[entry_requests], chosen]
                entry_services = base_draws[rows, columns] * self._multipliers[entry_osds]
            else:
                starts = np.empty(0, dtype=np.int64)
                entry_requests = np.empty(0, dtype=np.int64)
                entry_osds = np.empty(0, dtype=np.int64)
                entry_services = np.empty(0, dtype=float)
            return _FetchPlan(
                fetch_requests=fetch_requests,
                segment_starts=starts,
                entry_requests=entry_requests,
                entry_osds=entry_osds,
                entry_services=entry_services,
                served_mask=served_mask,
                degraded_mask=degraded_mask,
                repair_times_ms=no_repairs[0],
                repair_osds=no_repairs[1],
                repair_services_ms=no_repairs[2],
            )

        n = self._config.n
        num_misses = int(miss_requests.size)
        interval = timeline.interval_of(times[miss_requests])
        placement_rows = self._placement[positions[miss_requests]].reshape(num_misses, n)
        up = ~timeline.down[interval[:, None], placement_rows]
        # Availability in schedule order: column c of sel_up is the miss's
        # c-th preferred chunk.
        sel_up = np.take_along_axis(up, selection, axis=1)
        preferred = np.arange(n)[None, :] < storage_counts[:, None]
        degraded = np.any(preferred & ~sel_up, axis=1)
        needed = np.where(degraded, k, storage_counts)
        surviving = sel_up.sum(axis=1)
        failed = needed > surviving
        counts_per_miss = np.where(failed, 0, needed)
        # Rank of each schedule choice among the surviving ones; the j-th
        # fetched chunk consumes service draw column j, so the healthy case
        # (all alive: rank == column) replays the exact same draws.
        survivor_rank = np.cumsum(sel_up, axis=1) - 1
        entry_grid = sel_up & (survivor_rank < counts_per_miss[:, None])
        rows, columns = np.nonzero(entry_grid)
        chosen = selection[rows, columns]
        entry_requests = miss_requests[rows]
        entry_osds = placement_rows[rows, chosen]
        entry_services = (
            base_draws[rows, survivor_rank[rows, columns]]
            * self._multipliers[entry_osds]
            * timeline.slow[interval[rows], entry_osds]
        )
        active = counts_per_miss > 0
        fetch_requests = miss_requests[active]
        counts = counts_per_miss[active]
        if counts.size:
            starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        else:
            starts = np.empty(0, dtype=np.int64)
        served_mask[miss_requests[failed]] = False
        degraded_mask[miss_requests[degraded & ~failed]] = True
        repair_times = timeline.repair_times_ms
        repair_osds = timeline.repair_osds
        repair_services = timeline.repair_services_ms
        if repair_times.size:
            job_alive = ~timeline.down[timeline.interval_of(repair_times), repair_osds]
            repair_times = repair_times[job_alive]
            repair_osds = repair_osds[job_alive]
            repair_services = repair_services[job_alive]
        return _FetchPlan(
            fetch_requests=fetch_requests,
            segment_starts=starts,
            entry_requests=entry_requests,
            entry_osds=entry_osds,
            entry_services=entry_services,
            served_mask=served_mask,
            degraded_mask=degraded_mask,
            repair_times_ms=repair_times,
            repair_osds=repair_osds,
            repair_services_ms=repair_services,
        )

    # ------------------------------------------------------------------
    # Latency assembly
    # ------------------------------------------------------------------

    def _assemble_scalar(self, times, plan):
        """Reference assembly: scalar FIFO updates in request order.

        Background repair jobs with an arrival strictly before the current
        fetching request are flushed into their OSD queue first, matching
        the grouped kernel's (time, foreground-first) merge order.
        """
        busy = [0.0] * self._num_osds
        ssd_entry = times.copy()
        times_list = times.tolist()
        fetch_requests = plan.fetch_requests.tolist()
        starts = plan.segment_starts.tolist()
        entry_osds = plan.entry_osds.tolist()
        entry_services = plan.entry_services.tolist()
        num_entries = len(entry_osds)
        repair_times = plan.repair_times_ms.tolist()
        repair_osds = plan.repair_osds.tolist()
        repair_services = plan.repair_services_ms.tolist()
        num_repairs = len(repair_times)
        pending_repair = 0
        for rank, request in enumerate(fetch_requests):
            arrival = times_list[request]
            while pending_repair < num_repairs and repair_times[pending_repair] < arrival:
                osd = repair_osds[pending_repair]
                job_arrival = repair_times[pending_repair]
                start = job_arrival if busy[osd] < job_arrival else busy[osd]
                busy[osd] = start + repair_services[pending_repair]
                pending_repair += 1
            first = starts[rank]
            last = starts[rank + 1] if rank + 1 < len(starts) else num_entries
            storage_completion = arrival
            for entry in range(first, last):
                osd = entry_osds[entry]
                service = entry_services[entry]
                start = arrival if busy[osd] < arrival else busy[osd]
                departure = start + service
                busy[osd] = departure
                if departure > storage_completion:
                    storage_completion = departure
            ssd_entry[request] = storage_completion
        # SSD pass: the cache devices serve the *served* IOs in arrival
        # order (failed reads never reach the cache tier).
        served = np.flatnonzero(plan.served_mask)
        order = np.argsort(ssd_entry[served], kind="stable")
        entries = ssd_entry[served][order].tolist()
        ssd_busy = [0.0] * self._ssd_devices
        service = self._ssd_latency_ms
        departures = np.empty(len(entries), dtype=float)
        for rank, arrival in enumerate(entries):
            earliest = min(ssd_busy)
            start = arrival if earliest < arrival else earliest
            departure = start + service
            ssd_busy[ssd_busy.index(earliest)] = departure
            departures[rank] = departure
        completion = np.full(times.size, np.nan, dtype=float)
        completion[served[order]] = departures
        return completion

    def _assemble_vectorised(self, times, plan):
        """Epoch assembly: Lindley scans per OSD, segmented fork-join, SSD lanes.

        Repair jobs are appended after the foreground entries before the
        grouped scan: the kernel's stable (time, input-position) order then
        serves a foreground chunk ahead of a repair job arriving at the
        same instant, exactly like the scalar engine's strict-inequality
        flush.
        """
        ssd_entry = times.copy()
        num_entries = int(plan.entry_osds.size)
        if num_entries:
            if plan.repair_times_ms.size:
                groups = np.concatenate((plan.entry_osds, plan.repair_osds))
                arrivals = np.concatenate(
                    (times[plan.entry_requests], plan.repair_times_ms)
                )
                services = np.concatenate(
                    (plan.entry_services, plan.repair_services_ms)
                )
                departures = fifo_departures_grouped(
                    groups, arrivals, services, self._num_osds
                )[:num_entries]
            else:
                departures = fifo_departures_grouped(
                    plan.entry_osds,
                    times[plan.entry_requests],
                    plan.entry_services,
                    self._num_osds,
                )
            # Fork-join: each miss completes when its slowest chunk departs.
            ssd_entry[plan.fetch_requests] = segment_max(
                departures, plan.segment_starts
            )
        served = np.flatnonzero(plan.served_mask)
        order = np.argsort(ssd_entry[served], kind="stable")
        departures = multi_server_departures(
            ssd_entry[served][order], self._ssd_latency_ms, self._ssd_devices
        )
        completion = np.full(times.size, np.nan, dtype=float)
        completion[served[order]] = departures
        return completion
