"""The end-to-end Ceph-like cluster used for the prototype experiments.

Two configurations mirror the paper's testbed (Section V-D):

* **Optimal (functional) caching** -- five erasure-coded pools with the
  equivalent codes (7,4), (7,3), (7,2), (7,1), (7,0) backed by the same 12
  OSDs; the optimization algorithm assigns every object to a pool according
  to its cache allocation ``d`` and a read of a ``(7, 4-d)`` object only
  touches the storage tier for ``4-d`` chunks (the ``d`` cached chunks are
  fetched from the local SSD at negligible cost).
* **Baseline (Ceph LRU cache tier)** -- a single (7,4) pool behind a
  replicated LRU cache tier of the same capacity.

:class:`CephLikeCluster` builds either configuration, runs a COSBench-style
read benchmark against it, and reports average access latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.cachetier import CacheTier
from repro.cluster.devices import (
    chunk_size_for_object,
    hdd_speed_multipliers,
    nearest_measured_chunk_size,
    ssd_service_for_chunk_size,
)
from repro.cluster.osd import OSD
from repro.cluster.pool import ErasureCodedPool, PoolConfig, equivalent_code_pools
from repro.exceptions import ClusterError
from repro.simulation.arrivals import generate_request_stream


@dataclass
class ClusterConfig:
    """Static configuration of the emulated cluster."""

    num_osds: int = 12
    n: int = 7
    k: int = 4
    object_size_mb: int = 64
    cache_capacity_mb: int = 10 * 1024
    osd_speed_spread: float = 0.2
    service_time_inflation: float = 3.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_osds < self.n:
            raise ClusterError(
                f"need at least n={self.n} OSDs, got {self.num_osds}"
            )
        if self.k <= 0 or self.n < self.k:
            raise ClusterError(f"invalid code ({self.n}, {self.k})")
        if self.object_size_mb <= 0:
            raise ClusterError("object size must be positive")
        if self.cache_capacity_mb < 0:
            # Zero is a valid degenerate configuration: an always-missing
            # cache tier (hit ratio 0.0), not an error mid-benchmark.
            raise ClusterError("cache capacity must be non-negative")

    @property
    def chunk_size_mb(self) -> int:
        """Chunk size of an object under the base code."""
        return chunk_size_for_object(self.object_size_mb, self.k)

    @property
    def cache_capacity_chunks(self) -> int:
        """Cache capacity expressed in chunks of the current chunk size."""
        return self.cache_capacity_mb // self.chunk_size_mb


@dataclass
class ReadResult:
    """Latency statistics of one benchmark run."""

    latencies_ms: List[float] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    chunks_from_cache: int = 0
    chunks_from_storage: int = 0

    @property
    def requests(self) -> int:
        """Number of completed object reads."""
        return len(self.latencies_ms)

    def mean_latency_ms(self) -> float:
        """Mean object access latency in milliseconds."""
        if not self.latencies_ms:
            raise ClusterError("no reads recorded")
        return float(np.mean(self.latencies_ms))

    def percentile_ms(self, q: float) -> float:
        """Latency percentile in milliseconds."""
        if not self.latencies_ms:
            raise ClusterError("no reads recorded")
        return float(np.percentile(self.latencies_ms, q))


class CephLikeCluster:
    """Emulated object-storage cluster with both caching configurations.

    Parameters
    ----------
    config:
        The cluster configuration.
    """

    def __init__(self, config: ClusterConfig):
        self._config = config
        rng = np.random.default_rng(config.seed)
        multipliers = hdd_speed_multipliers(
            config.num_osds, spread=config.osd_speed_spread, seed=config.seed + 13
        )
        # `service_time_inflation` calibrates the isolated Table-IV chunk
        # measurements to the effective per-chunk service time observed
        # under concurrent multi-client load on the paper's testbed (its
        # benchmark latencies are several times the isolated chunk times).
        self._osds: Dict[int, OSD] = {
            osd_id: OSD(
                osd_id,
                speed_multiplier=multipliers[osd_id] * config.service_time_inflation,
                rng=rng,
            )
            for osd_id in range(config.num_osds)
        }
        self._rng = rng
        self._pools_by_allocation: Optional[Dict[int, ErasureCodedPool]] = None
        self._cache_tier: Optional[CacheTier] = None
        self._object_pool_map: Dict[str, int] = {}

    @property
    def config(self) -> ClusterConfig:
        """The cluster configuration."""
        return self._config

    @property
    def osds(self) -> Dict[int, OSD]:
        """The cluster's OSDs."""
        return dict(self._osds)

    # ------------------------------------------------------------------
    # Optimal-caching configuration (equivalent-code pools)
    # ------------------------------------------------------------------

    def setup_optimal_caching(self, object_pool_map: Dict[str, int]) -> None:
        """Create the equivalent-code pools and write objects to them.

        Parameters
        ----------
        object_pool_map:
            Mapping from object name to its cache allocation ``d``
            (0..k), typically produced by the optimization algorithm.
        """
        config = self._config
        self._pools_by_allocation = equivalent_code_pools(
            config.n,
            config.k,
            config.chunk_size_mb,
            self._osds,
            crush_seed=config.seed,
        )
        self._object_pool_map = dict(object_pool_map)
        for object_name, allocation in self._object_pool_map.items():
            if not 0 <= allocation <= config.k:
                raise ClusterError(
                    f"object {object_name!r}: allocation {allocation} outside "
                    f"[0, {config.k}]"
                )
            pool = self._pools_by_allocation[allocation]
            pool.write_object(object_name, config.object_size_mb)

    def read_optimal(self, object_name: str, arrival_time: float) -> float:
        """Read an object in the optimal-caching configuration.

        The ``d`` cached chunks are read from the local SSD concurrently
        with the ``k - d`` storage chunks; because the SSD latency is one to
        two orders of magnitude below the HDD OSD latency (Tables IV vs V),
        the object latency is the storage-pool completion time, exactly the
        equivalent-code reduction used in the paper.
        """
        if self._pools_by_allocation is None:
            raise ClusterError("setup_optimal_caching() has not been called")
        allocation = self._object_pool_map.get(object_name)
        if allocation is None:
            raise ClusterError(f"object {object_name!r} was never written")
        pool = self._pools_by_allocation[allocation]
        storage_completion, _ = pool.read_object(object_name, arrival_time)
        cached_chunks = allocation
        if cached_chunks > 0:
            # The cached chunks stream from the local SSD, which is
            # bandwidth-bound: d chunks cost roughly d times the per-chunk
            # latency of Table V (still far below one HDD chunk read).
            chunk_size = nearest_measured_chunk_size(self._config.chunk_size_mb)
            ssd_latency = ssd_service_for_chunk_size(chunk_size).mean * cached_chunks
            cache_completion = arrival_time + ssd_latency
        else:
            cache_completion = arrival_time
        return max(storage_completion, cache_completion)

    # ------------------------------------------------------------------
    # Baseline configuration (LRU cache tier)
    # ------------------------------------------------------------------

    def setup_baseline(
        self,
        object_names: List[str],
        policy: str = "lru",
        policy_params: Optional[Dict[str, object]] = None,
    ) -> None:
        """Create the (7,4) pool behind a cache tier and write the objects.

        ``policy`` selects the tier's residency policy from the cache-policy
        registry (Ceph's tiering agent is ``"lru"``, the paper's baseline).
        """
        from repro.policies import create_policy

        config = self._config
        pool_config = PoolConfig(
            name="ec-base",
            n=config.n,
            k=config.k,
            chunk_size_mb=config.chunk_size_mb,
        )
        storage_pool = ErasureCodedPool(pool_config, self._osds, crush_seed=config.seed)
        self._cache_tier = CacheTier(
            storage_pool,
            capacity_mb=config.cache_capacity_mb,
            rng=self._rng,
            policy=create_policy(
                policy, config.cache_capacity_mb, **(dict(policy_params or {}))
            ),
        )
        for object_name in object_names:
            self._cache_tier.write_object(object_name, config.object_size_mb)

    def setup_lru_baseline(self, object_names: List[str]) -> None:
        """Create the (7,4) pool with an LRU cache tier and write the objects."""
        self.setup_baseline(object_names, policy="lru")

    @property
    def cache_tier(self) -> Optional[CacheTier]:
        """The baseline cache tier (``None`` before ``setup_baseline``)."""
        return self._cache_tier

    def read_baseline(self, object_name: str, arrival_time: float) -> tuple[float, bool]:
        """Read an object through the cache tier; returns (completion, hit)."""
        if self._cache_tier is None:
            raise ClusterError("setup_baseline() has not been called")
        return self._cache_tier.read_object(object_name, arrival_time)

    # ------------------------------------------------------------------
    # Benchmarks
    # ------------------------------------------------------------------

    def run_read_benchmark(
        self,
        arrival_rates: Dict[str, float],
        duration_s: float,
        mode: str,
        seed: Optional[int] = None,
    ) -> ReadResult:
        """Run a COSBench-style read benchmark.

        Parameters
        ----------
        arrival_rates:
            Per-object read arrival rates in requests per second.
        duration_s:
            Benchmark duration in seconds (the paper uses 1800 s runs).
        mode:
            ``"optimal"`` or ``"baseline"``.
        """
        if mode not in {"optimal", "baseline"}:
            raise ClusterError(f"unknown benchmark mode {mode!r}")
        rng = np.random.default_rng(seed if seed is not None else self._config.seed + 101)
        stream = generate_request_stream(arrival_rates, duration_s, rng)
        result = ReadResult()
        k = self._config.k
        for arrival_s, object_name in stream:
            arrival_ms = arrival_s * 1000.0
            if mode == "optimal":
                completion_ms = self.read_optimal(object_name, arrival_ms)
                allocation = self._object_pool_map.get(object_name, 0)
                result.chunks_from_cache += allocation
                result.chunks_from_storage += k - allocation
            else:
                completion_ms, hit = self.read_baseline(object_name, arrival_ms)
                if hit:
                    result.cache_hits += 1
                    result.chunks_from_cache += k
                else:
                    result.cache_misses += 1
                    result.chunks_from_storage += k
            result.latencies_ms.append(completion_ms - arrival_ms)
        return result

    def run_replay_benchmark(
        self,
        arrival_rates: Dict[str, float],
        duration_s: float,
        policy: str = "lru",
        engine: str = "epoch",
        seed: Optional[int] = None,
        epoch_length: Optional[int] = None,
        policy_params: Optional[Dict[str, object]] = None,
        faults=None,
        fault_params: Optional[Dict[str, object]] = None,
    ):
        """Run the cache-tier read benchmark through the trace-replay engines.

        The trace-replay path (see :mod:`repro.cluster.replay`) draws the
        whole request stream at once and replays it against the emulated
        device model under any registered cache policy -- vectorised with
        ``engine="epoch"`` (orders of magnitude faster than the per-request
        :meth:`run_read_benchmark` loop) or with the per-request reference
        ``engine="request"``.  ``faults``/``fault_params`` inject an OSD
        fault schedule (registered generator name, schedule object or
        compiled timeline -- see :mod:`repro.faults`).  Returns a
        :class:`~repro.cluster.replay.ReplayResult`.
        """
        from repro.cluster.replay import ClusterReplay, ReplayTrace

        root = seed if seed is not None else self._config.seed + 101
        trace = ReplayTrace.from_rates(arrival_rates, duration_s, seed=root)
        replay = ClusterReplay(
            self._config,
            list(arrival_rates),
            policy=policy,
            policy_params=policy_params,
        )
        return replay.run(
            trace,
            engine=engine,
            seed=root + 1,
            epoch_length=epoch_length,
            faults=faults,
            fault_params=fault_params,
        )

    def reset_queues(self) -> None:
        """Reset OSD queue state between benchmark stages."""
        for osd in self._osds.values():
            osd.reset_queue()
