"""Erasure-coded object pools, including the equivalent-code pools.

The prototype in the paper implements functional caching on Ceph by creating
one erasure-coded pool per *equivalent code* ``(7, 4 - d)``: a file with
``d`` functional chunks in the (negligible-latency) cache behaves, for read
latency purposes, exactly like a file coded ``(n, k - d)`` read entirely
from the storage tier.  A pool therefore knows its ``(n, k)`` parameters,
owns a CRUSH map over the cluster's OSDs, stores object chunks on write, and
on read fetches the ``k`` least-backlogged replicas of the object's chunk
set (the optimal request scheduling the extra flexibility enables).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.crush import CrushMap, placement_group_count
from repro.cluster.osd import OSD, ChunkKey
from repro.exceptions import ClusterError, ObjectNotFoundError


@dataclass(frozen=True)
class PoolConfig:
    """Static description of an erasure-coded pool."""

    name: str
    n: int
    k: int
    chunk_size_mb: int

    def __post_init__(self) -> None:
        if self.k < 0:
            raise ClusterError(f"pool {self.name}: k must be non-negative")
        if self.n <= 0 or (self.k > 0 and self.n < self.k):
            raise ClusterError(
                f"pool {self.name}: invalid code ({self.n}, {self.k})"
            )
        if self.chunk_size_mb <= 0:
            raise ClusterError(f"pool {self.name}: chunk size must be positive")

    @property
    def parity_chunks(self) -> int:
        """Number of parity chunks ``m = n - k`` (``n`` when ``k = 0``)."""
        return self.n - self.k if self.k > 0 else self.n


@dataclass
class ObjectRecord:
    """Metadata of one stored object."""

    name: str
    size_mb: int
    chunk_osds: List[int]


class ErasureCodedPool:
    """An erasure-coded pool over a shared set of OSDs.

    Parameters
    ----------
    config:
        Pool parameters (name, code, chunk size).
    osds:
        The cluster's OSDs, keyed by id; all pools in the paper's prototype
        share the same 12 OSDs.
    crush_seed:
        Seed for this pool's CRUSH map.
    """

    def __init__(
        self,
        config: PoolConfig,
        osds: Dict[int, OSD],
        crush_seed: int = 0,
    ):
        if not osds:
            raise ClusterError("a pool requires at least one OSD")
        if config.n > len(osds):
            raise ClusterError(
                f"pool {config.name}: code length {config.n} exceeds OSD count {len(osds)}"
            )
        self._config = config
        self._osds = osds
        num_pgs = placement_group_count(len(osds), config.parity_chunks)
        self._crush = CrushMap(
            sorted(osds), num_placement_groups=num_pgs, width=config.n, seed=crush_seed
        )
        self._objects: Dict[str, ObjectRecord] = {}

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def config(self) -> PoolConfig:
        """The pool's static configuration."""
        return self._config

    @property
    def name(self) -> str:
        """Pool name."""
        return self._config.name

    @property
    def crush(self) -> CrushMap:
        """The pool's CRUSH map."""
        return self._crush

    @property
    def num_objects(self) -> int:
        """Number of objects stored in this pool."""
        return len(self._objects)

    def object_names(self) -> List[str]:
        """Names of all stored objects."""
        return list(self._objects)

    def has_object(self, object_name: str) -> bool:
        """Whether the pool stores ``object_name``."""
        return object_name in self._objects

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def write_object(self, object_name: str, size_mb: int) -> ObjectRecord:
        """Encode and store an object's ``n`` chunks on the pool's OSDs."""
        if size_mb <= 0:
            raise ClusterError("object size must be positive")
        osd_ids = self._crush.osds_for_object(object_name)
        record = ObjectRecord(name=object_name, size_mb=size_mb, chunk_osds=osd_ids)
        for chunk_index, osd_id in enumerate(osd_ids):
            key = ChunkKey(
                pool=self._config.name,
                object_name=object_name,
                chunk_index=chunk_index,
            )
            self._osds[osd_id].store_chunk(key, self._config.chunk_size_mb)
        self._objects[object_name] = record
        return record

    def delete_object(self, object_name: str) -> None:
        """Remove an object and its chunks from the pool."""
        record = self._objects.pop(object_name, None)
        if record is None:
            raise ObjectNotFoundError(
                f"object {object_name!r} not found in pool {self._config.name!r}"
            )
        for chunk_index, osd_id in enumerate(record.chunk_osds):
            key = ChunkKey(
                pool=self._config.name,
                object_name=object_name,
                chunk_index=chunk_index,
            )
            self._osds[osd_id].drop_chunk(key)

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def read_object(
        self,
        object_name: str,
        arrival_time: float,
        rng: Optional[np.random.Generator] = None,
        scheduling: str = "least_backlog",
    ) -> Tuple[float, List[int]]:
        """Read an object: fetch ``k`` of its ``n`` chunks and join.

        Parameters
        ----------
        object_name:
            Which object to read.
        arrival_time:
            Time the read arrives at the pool.
        rng:
            Needed when ``scheduling="random"``.
        scheduling:
            ``"least_backlog"`` (default -- contact the ``k`` OSDs with the
            smallest outstanding work, which is what the extra flexibility
            of erasure coding enables) or ``"random"`` (uniformly random
            ``k``-subset).

        Returns
        -------
        tuple
            ``(completion_time, osds_used)``.  For a ``k = 0`` pool (the
            fully-cached ``(7, 0)`` pool) the read completes immediately and
            uses no OSDs.
        """
        record = self._objects.get(object_name)
        if record is None:
            raise ObjectNotFoundError(
                f"object {object_name!r} not found in pool {self._config.name!r}"
            )
        k = self._config.k
        if k == 0:
            return arrival_time, []
        candidates = list(enumerate(record.chunk_osds))
        if scheduling == "least_backlog":
            candidates.sort(key=lambda item: self._osds[item[1]].backlog(arrival_time))
            chosen = candidates[:k]
        elif scheduling == "random":
            if rng is None:
                rng = np.random.default_rng()
            indices = rng.choice(len(candidates), size=k, replace=False)
            chosen = [candidates[int(index)] for index in indices]
        else:
            raise ClusterError(f"unknown scheduling policy {scheduling!r}")
        completions = []
        osds_used = []
        for chunk_index, osd_id in chosen:
            key = ChunkKey(
                pool=self._config.name,
                object_name=object_name,
                chunk_index=chunk_index,
            )
            completion, _ = self._osds[osd_id].read_chunk(key, arrival_time)
            completions.append(completion)
            osds_used.append(osd_id)
        return max(completions), osds_used


def equivalent_code_pools(
    base_n: int,
    base_k: int,
    chunk_size_mb: int,
    osds: Dict[int, OSD],
    crush_seed: int = 0,
) -> Dict[int, ErasureCodedPool]:
    """Create the family of equivalent-code pools ``(n, k - d)`` for ``d = 0..k``.

    Returns a mapping from the cache allocation ``d`` to the pool serving
    objects with that allocation, mirroring the five pools (7,4)...(7,0) of
    the prototype.
    """
    pools: Dict[int, ErasureCodedPool] = {}
    for d in range(base_k + 1):
        config = PoolConfig(
            name=f"ec-{base_n}-{base_k - d}",
            n=base_n,
            k=base_k - d,
            chunk_size_mb=chunk_size_mb,
        )
        pools[d] = ErasureCodedPool(config, osds, crush_seed=crush_seed + d)
    return pools
