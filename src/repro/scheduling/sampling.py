"""Sampling node sets with prescribed inclusion probabilities.

Probabilistic scheduling requires drawing, for every file-``i`` request, a
set ``A_i`` of exactly ``k_i - d_i`` distinct storage nodes such that node
``j`` appears in the set with marginal probability ``pi_{i,j}``.  Such a
distribution over sets exists whenever ``sum_j pi_{i,j} = k_i - d_i`` and
``0 <= pi_{i,j} <= 1`` (this is the feasibility argument used in the paper's
Appendix B).  *Systematic sampling* realises those marginals exactly: lay
the probabilities end-to-end on a circle of circumference ``k - d`` and pick
the items hit by a uniformly-offset grid of unit spacing.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.exceptions import SimulationError


def systematic_inclusion_sample(
    keys: Sequence[int],
    probabilities: Sequence[float],
    rng: np.random.Generator,
) -> List[int]:
    """Draw a set with the given inclusion probabilities by systematic sampling.

    Parameters
    ----------
    keys:
        Identifiers (e.g. node ids) to sample from.
    probabilities:
        Inclusion probability for each key, in ``[0, 1]``; their sum must be
        (numerically) an integer -- the size of the returned set.
    rng:
        Numpy random generator.

    Returns
    -------
    list of int
        A set of ``round(sum(probabilities))`` distinct keys; key ``j`` is
        included with probability ``probabilities[j]``.
    """
    if len(keys) != len(probabilities):
        raise SimulationError("keys and probabilities must have equal length")
    probs = np.asarray(probabilities, dtype=float)
    if np.any(probs < -1e-9) or np.any(probs > 1.0 + 1e-9):
        raise SimulationError("inclusion probabilities must lie in [0, 1]")
    probs = np.clip(probs, 0.0, 1.0)
    total = float(probs.sum())
    size = int(round(total))
    if size == 0:
        return []
    if abs(total - size) > 1e-6:
        raise SimulationError(
            f"inclusion probabilities must sum to an integer, got {total:.6f}"
        )
    # Random ordering removes the correlation structure systematic sampling
    # would otherwise impose between adjacent keys.
    order = rng.permutation(len(probs))
    shuffled = probs[order]
    cumulative = np.concatenate([[0.0], np.cumsum(shuffled)])
    # Rescale so the cumulative total is exactly `size` despite rounding.
    cumulative *= size / cumulative[-1]
    offset = rng.uniform(0.0, 1.0)
    grid = offset + np.arange(size)
    selected_positions = np.searchsorted(cumulative, grid, side="right") - 1
    selected_positions = np.unique(np.clip(selected_positions, 0, len(probs) - 1))
    selected = [keys[order[position]] for position in selected_positions]
    if len(selected) != size:
        # Extremely rare numerical tie; complete the set with the highest
        # remaining probabilities to preserve the set size.
        remaining = [key for key in keys if key not in selected]
        remaining.sort(
            key=lambda key: probabilities[list(keys).index(key)], reverse=True
        )
        for key in remaining:
            if len(selected) == size:
                break
            selected.append(key)
    return selected


def sample_node_set(
    probabilities: Dict[int, float],
    rng: np.random.Generator,
) -> List[int]:
    """Draw the storage-node set ``A_i`` for one request.

    ``probabilities`` maps node id to ``pi_{i,j}``; the returned set has
    ``round(sum pi)`` distinct nodes.
    """
    keys = list(probabilities.keys())
    values = [probabilities[key] for key in keys]
    return systematic_inclusion_sample(keys, values, rng)


def empirical_inclusion_frequencies(
    probabilities: Dict[int, float],
    rng: np.random.Generator,
    draws: int = 10000,
) -> Dict[int, float]:
    """Monte-Carlo estimate of the realised inclusion frequencies.

    Used by the test-suite to verify that :func:`sample_node_set` matches the
    requested marginals.
    """
    counts = {key: 0 for key in probabilities}
    for _ in range(draws):
        for key in sample_node_set(probabilities, rng):
            counts[key] += 1
    return {key: counts[key] / draws for key in probabilities}


def split_request(
    k: int, cached_chunks: int, probabilities: Dict[int, float], rng: np.random.Generator
) -> Tuple[int, List[int]]:
    """Split a file request into cache hits and storage-node chunk requests.

    Returns
    -------
    tuple
        ``(chunks_from_cache, storage_nodes)`` where ``storage_nodes`` has
        ``k - cached_chunks`` distinct entries sampled from ``probabilities``.
    """
    if cached_chunks < 0 or cached_chunks > k:
        raise SimulationError(
            f"cached chunks {cached_chunks} outside [0, {k}]"
        )
    nodes = sample_node_set(probabilities, rng)
    expected = k - cached_chunks
    if len(nodes) != expected:
        raise SimulationError(
            f"scheduling probabilities produced {len(nodes)} nodes, "
            f"expected {expected}"
        )
    return cached_chunks, nodes
