"""Sampling node sets with prescribed inclusion probabilities.

Probabilistic scheduling requires drawing, for every file-``i`` request, a
set ``A_i`` of exactly ``k_i - d_i`` distinct storage nodes such that node
``j`` appears in the set with marginal probability ``pi_{i,j}``.  Such a
distribution over sets exists whenever ``sum_j pi_{i,j} = k_i - d_i`` and
``0 <= pi_{i,j} <= 1`` (this is the feasibility argument used in the paper's
Appendix B).  *Systematic sampling* realises those marginals exactly: lay
the probabilities end-to-end on a circle of circumference ``k - d`` and pick
the items hit by a uniformly-offset grid of unit spacing.

Two entry points expose the sampler:

* :func:`systematic_inclusion_sample` draws one set and returns a Python
  list -- the API used by the event-driven simulator's per-request path.
* :func:`batch_systematic_inclusion_sample` draws one set per *row* of a
  probability matrix in a single vectorised pass -- the hot path of the
  batched simulation engine, which samples all of a file's requests at once.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.exceptions import SimulationError
from repro.kernels import systematic_sample_positions


def _validated_probs(probabilities: np.ndarray) -> np.ndarray:
    if np.any(probabilities < -1e-9) or np.any(probabilities > 1.0 + 1e-9):
        raise SimulationError("inclusion probabilities must lie in [0, 1]")
    return np.clip(probabilities, 0.0, 1.0)


def batch_systematic_inclusion_sample(
    probability_rows: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw one inclusion set per row of ``probability_rows``, vectorised.

    Parameters
    ----------
    probability_rows:
        Array of shape ``(num_draws, num_keys)``; every row holds inclusion
        probabilities in ``[0, 1]`` summing (numerically) to the same
        integer ``size``.  A 1-D array is treated as a single row.
    rng:
        Numpy random generator.

    Returns
    -------
    ndarray of shape ``(num_draws, size)``
        Column positions (indices into each row) of the selected keys; the
        entries of each output row are distinct and key ``j`` appears in row
        ``r`` with probability ``probability_rows[r, j]``.

    Notes
    -----
    Each row is independently shuffled (removing the correlation structure
    systematic sampling imposes between adjacent keys) and sampled with its
    own uniform grid offset.  The per-row ``searchsorted`` is flattened into
    one global call by shifting row ``r``'s cumulative probabilities and
    grid by ``r * (size + 1)``: the gap of 1 between consecutive rows'
    ranges guarantees no grid point of one row can land in another row's
    cumulative range, even for a zero offset.
    """
    probs = np.asarray(probability_rows, dtype=float)
    squeeze = probs.ndim == 1
    if squeeze:
        probs = probs[None, :]
    if probs.ndim != 2:
        raise SimulationError("probability_rows must be 1-D or 2-D")
    probs = _validated_probs(probs)
    num_draws, num_keys = probs.shape
    totals = probs.sum(axis=1)
    size = int(round(float(totals[0]))) if num_draws else 0
    if num_draws and np.any(np.abs(totals - size) > 1e-6):
        raise SimulationError(
            "inclusion probabilities must sum to one common integer per row"
        )
    if size == 0 or num_draws == 0:
        return np.empty((num_draws, 0) if not squeeze else (0,), dtype=np.int64)

    # All randomness is drawn here, in the pre-kernel stream order (the
    # row-shuffle uniforms first, then the grid offsets), so seeded draws
    # are bit-equal to the old inline implementation and identical for
    # every kernel backend.  The pure-array core lives in
    # :func:`repro.kernels.systematic_sample_positions`.
    order_uniforms = rng.random((num_draws, num_keys))
    grid_uniforms = rng.random((num_draws, 1))
    selected = systematic_sample_positions(probs, order_uniforms, grid_uniforms, size)
    if squeeze:
        return selected[0]
    return selected


def systematic_inclusion_sample_array(
    probabilities: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw one set; returns the selected positions as an int array.

    Array-native single-draw variant of :func:`systematic_inclusion_sample`:
    no Python-list round-trips, used by the schedulers' hot path.  Includes
    the rare-tie completion: should floating-point ties ever collapse two
    grid points onto one key, the set is completed with the highest-
    probability unselected keys so its size is always exact.
    """
    probs = _validated_probs(np.asarray(probabilities, dtype=float))
    total = float(probs.sum())
    size = int(round(total))
    if size == 0:
        return np.empty(0, dtype=np.int64)
    if abs(total - size) > 1e-6:
        raise SimulationError(
            f"inclusion probabilities must sum to an integer, got {total:.6f}"
        )
    selected = np.unique(batch_systematic_inclusion_sample(probs, rng))
    if selected.size != size:
        # Extremely rare numerical tie; complete the set with the highest
        # remaining probabilities to preserve the set size.
        remaining_mask = np.ones(probs.size, dtype=bool)
        remaining_mask[selected] = False
        remaining = np.flatnonzero(remaining_mask)
        best = remaining[np.argsort(probs[remaining])[::-1][: size - selected.size]]
        selected = np.concatenate([selected, best])
    return selected


def systematic_inclusion_sample(
    keys: Sequence[int],
    probabilities: Sequence[float],
    rng: np.random.Generator,
) -> List[int]:
    """Draw a set with the given inclusion probabilities by systematic sampling.

    Parameters
    ----------
    keys:
        Identifiers (e.g. node ids) to sample from.
    probabilities:
        Inclusion probability for each key, in ``[0, 1]``; their sum must be
        (numerically) an integer -- the size of the returned set.
    rng:
        Numpy random generator.

    Returns
    -------
    list of int
        A set of ``round(sum(probabilities))`` distinct keys; key ``j`` is
        included with probability ``probabilities[j]``.
    """
    if len(keys) != len(probabilities):
        raise SimulationError("keys and probabilities must have equal length")
    positions = systematic_inclusion_sample_array(
        np.asarray(probabilities, dtype=float), rng
    )
    return [keys[int(position)] for position in positions]


def sample_node_set(
    probabilities: Dict[int, float],
    rng: np.random.Generator,
) -> List[int]:
    """Draw the storage-node set ``A_i`` for one request.

    ``probabilities`` maps node id to ``pi_{i,j}``; the returned set has
    ``round(sum pi)`` distinct nodes.
    """
    keys = list(probabilities.keys())
    values = np.fromiter(probabilities.values(), dtype=float, count=len(keys))
    positions = systematic_inclusion_sample_array(values, rng)
    return [keys[int(position)] for position in positions]


def empirical_inclusion_frequencies(
    probabilities: Dict[int, float],
    rng: np.random.Generator,
    draws: int = 10000,
) -> Dict[int, float]:
    """Monte-Carlo estimate of the realised inclusion frequencies.

    Used by the test-suite to verify that :func:`sample_node_set` (and the
    batched sampler it shares its core with) matches the requested
    marginals.  The draws are batched through
    :func:`batch_systematic_inclusion_sample`.
    """
    keys = list(probabilities.keys())
    values = np.fromiter(probabilities.values(), dtype=float, count=len(keys))
    rows = np.broadcast_to(values, (draws, values.size))
    selected = batch_systematic_inclusion_sample(rows, rng)
    counts = np.bincount(selected.ravel(), minlength=len(keys))
    return {key: counts[position] / draws for position, key in enumerate(keys)}


def split_request(
    k: int, cached_chunks: int, probabilities: Dict[int, float], rng: np.random.Generator
) -> Tuple[int, List[int]]:
    """Split a file request into cache hits and storage-node chunk requests.

    Returns
    -------
    tuple
        ``(chunks_from_cache, storage_nodes)`` where ``storage_nodes`` has
        ``k - cached_chunks`` distinct entries sampled from ``probabilities``.
    """
    if cached_chunks < 0 or cached_chunks > k:
        raise SimulationError(
            f"cached chunks {cached_chunks} outside [0, {k}]"
        )
    nodes = sample_node_set(probabilities, rng)
    expected = k - cached_chunks
    if len(nodes) != expected:
        raise SimulationError(
            f"scheduling probabilities produced {len(nodes)} nodes, "
            f"expected {expected}"
        )
    return cached_chunks, nodes
