"""Probabilistic request scheduling.

Implements the probabilistic scheduling policy of Xiang et al. that the
Sprout analysis builds on: each file-``i`` request is dispatched to a set
``A_i`` of ``k_i - d_i`` distinct storage nodes drawn so that node ``j`` is
included with probability ``pi_{i,j}``.
"""

from repro.scheduling.sampling import sample_node_set, systematic_inclusion_sample
from repro.scheduling.scheduler import ChunkRequest, FileRequest, ProbabilisticScheduler

__all__ = [
    "sample_node_set",
    "systematic_inclusion_sample",
    "ProbabilisticScheduler",
    "FileRequest",
    "ChunkRequest",
]
