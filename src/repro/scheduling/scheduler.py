"""Probabilistic scheduler turning file requests into chunk requests.

The scheduler consumes a :class:`~repro.core.placement.CachePlacement` (or a
raw per-file probability table) and, for each incoming file request, decides
which chunks are served from the cache and which storage nodes receive chunk
requests, following the probabilistic scheduling policy of the paper.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.placement import CachePlacement
from repro.exceptions import SimulationError
from repro.scheduling.sampling import systematic_inclusion_sample_array

#: Anything ``numpy.random.default_rng`` accepts as a seed, including a
#: ``SeedSequence`` spawned by the simulator so that all of a run's random
#: streams derive from one root seed.
SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]


@dataclass
class ChunkRequest:
    """A single chunk request dispatched to a storage node or the cache."""

    request_id: int
    file_id: str
    target: str
    node_id: Optional[int] = None
    from_cache: bool = False


@dataclass
class FileRequest:
    """A file request split into its chunk requests."""

    request_id: int
    file_id: str
    arrival_time: float
    cache_chunks: int
    storage_nodes: List[int]
    chunk_requests: List[ChunkRequest] = field(default_factory=list)

    @property
    def total_chunks(self) -> int:
        """Total number of chunk requests (cache plus storage)."""
        return self.cache_chunks + len(self.storage_nodes)


class ProbabilisticScheduler:
    """Dispatches file requests according to cache placement and ``pi_{i,j}``.

    Parameters
    ----------
    cached_chunks:
        Mapping from file id to the number of functional chunks in cache.
    probabilities:
        Mapping from file id to its per-node scheduling probabilities; for
        each file the probabilities must sum to ``k_i - d_i``.
    k_values:
        Mapping from file id to ``k_i``.
    seed:
        Seed for the sampling generator.
    """

    def __init__(
        self,
        cached_chunks: Dict[str, int],
        probabilities: Dict[str, Dict[int, float]],
        k_values: Dict[str, int],
        seed: SeedLike = None,
    ):
        self._cached_chunks = dict(cached_chunks)
        self._probabilities = {
            file_id: dict(node_probs) for file_id, node_probs in probabilities.items()
        }
        self._k_values = dict(k_values)
        self._rng = np.random.default_rng(seed)
        self._request_counter = itertools.count()
        self._validate()
        # Per-file (node-id array, probability array) pairs, precomputed once
        # so the per-request dispatch path never rebuilds them from dicts.
        self._node_arrays: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        for file_id in self._k_values:
            node_probs = self._probabilities.get(file_id, {})
            node_ids = np.fromiter(node_probs.keys(), dtype=np.int64, count=len(node_probs))
            probs = np.fromiter(node_probs.values(), dtype=float, count=len(node_probs))
            self._node_arrays[file_id] = (node_ids, probs)

    @classmethod
    def from_placement(
        cls, placement: CachePlacement, seed: SeedLike = None
    ) -> "ProbabilisticScheduler":
        """Build a scheduler directly from an optimized cache placement."""
        cached = placement.cached_chunks()
        probabilities = placement.scheduling_probabilities()
        k_values = {entry.file_id: entry.k for entry in placement.files}
        return cls(cached, probabilities, k_values, seed=seed)

    def _validate(self) -> None:
        for file_id, k in self._k_values.items():
            d = self._cached_chunks.get(file_id, 0)
            if not 0 <= d <= k:
                raise SimulationError(
                    f"file {file_id}: cached chunks {d} outside [0, {k}]"
                )
            probs = self._probabilities.get(file_id, {})
            total = sum(probs.values())
            if abs(total - (k - d)) > 1e-3:
                raise SimulationError(
                    f"file {file_id}: scheduling probabilities sum to {total:.4f}, "
                    f"expected k - d = {k - d}"
                )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def cached_chunks(self, file_id: str) -> int:
        """Number of functional chunks of ``file_id`` currently in the cache."""
        return self._cached_chunks.get(file_id, 0)

    @property
    def file_ids(self) -> List[str]:
        """All file ids the scheduler knows about."""
        return list(self._k_values)

    def k_for(self, file_id: str) -> int:
        """``k_i`` of one file."""
        return self._k_values[file_id]

    def node_probability_arrays(self, file_id: str) -> Tuple[np.ndarray, np.ndarray]:
        """Per-file ``(node_ids, probabilities)`` arrays (the batch-engine view)."""
        if file_id not in self._node_arrays:
            raise SimulationError(f"unknown file id {file_id!r}")
        return self._node_arrays[file_id]

    def dispatch(self, file_id: str, arrival_time: float) -> FileRequest:
        """Split a file request into cache accesses and storage chunk requests."""
        if file_id not in self._k_values:
            raise SimulationError(f"unknown file id {file_id!r}")
        k = self._k_values[file_id]
        d = self._cached_chunks.get(file_id, 0)
        if k - d > 0:
            node_ids, probs = self._node_arrays[file_id]
            positions = systematic_inclusion_sample_array(probs, self._rng)
            storage_nodes = [int(node) for node in node_ids[positions]]
        else:
            storage_nodes = []
        if len(storage_nodes) != k - d:
            raise SimulationError(
                f"file {file_id}: sampled {len(storage_nodes)} storage nodes, "
                f"expected {k - d}"
            )
        request_id = next(self._request_counter)
        request = FileRequest(
            request_id=request_id,
            file_id=file_id,
            arrival_time=arrival_time,
            cache_chunks=d,
            storage_nodes=storage_nodes,
        )
        for _ in range(d):
            request.chunk_requests.append(
                ChunkRequest(
                    request_id=request_id,
                    file_id=file_id,
                    target="cache",
                    from_cache=True,
                )
            )
        for node_id in storage_nodes:
            request.chunk_requests.append(
                ChunkRequest(
                    request_id=request_id,
                    file_id=file_id,
                    target=f"node-{node_id}",
                    node_id=node_id,
                )
            )
        return request

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def expected_node_load(self, arrival_rates: Dict[str, float]) -> Dict[int, float]:
        """Expected chunk arrival rate at every node, ``Lambda_j``."""
        load: Dict[int, float] = {}
        for file_id, probs in self._probabilities.items():
            rate = arrival_rates.get(file_id, 0.0)
            for node_id, pi in probs.items():
                load[node_id] = load.get(node_id, 0.0) + rate * pi
        return load

    def expected_cache_fraction(self, arrival_rates: Dict[str, float]) -> float:
        """Expected fraction of chunk requests served by the cache."""
        cache_rate = 0.0
        total_rate = 0.0
        for file_id, k in self._k_values.items():
            rate = arrival_rates.get(file_id, 0.0)
            d = self._cached_chunks.get(file_id, 0)
            cache_rate += rate * d
            total_rate += rate * k
        if total_rate <= 0:
            return 0.0
        return cache_rate / total_rate
