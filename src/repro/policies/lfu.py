"""Least-frequently-used whole-object caching."""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.policies.base import ChunkCachingPolicy, Eviction


class LFUPolicy(ChunkCachingPolicy):
    """Whole-object LFU with LRU tie-breaking.

    ``counts_in_touch`` is set: the epoch fold needs per-file access
    multiplicities to keep exact frequency counts.

    Every access increments the file's frequency count; on a miss the
    resident file with the smallest ``(count, last access)`` pair is evicted
    until the new object fits.  Counts persist across evictions (perfect
    frequency history), so a once-hot file re-enters the cache ahead of
    cold newcomers.  Victim selection uses a lazy min-heap: stale heap
    entries (superseded count/recency, or evicted files) are dropped when
    they surface, keeping every access O(log n).
    """

    counts_in_touch = True

    def __init__(
        self,
        capacity_chunks: int,
        chunks_per_file: Optional[Mapping[str, int]] = None,
    ):
        super().__init__(capacity_chunks, chunks_per_file)
        self._resident: Dict[str, int] = {}  # file_id -> cached chunks
        self._counts: Dict[str, int] = {}
        self._last_access: Dict[str, int] = {}
        self._used = 0
        self._clock = itertools.count()
        self._heap: List[Tuple[int, int, str]] = []  # (count, last_access, file)

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------

    def lookup(self, file_id: str) -> int:
        return self._resident.get(file_id, 0)

    def evict(self, file_id: str) -> bool:
        chunks = self._resident.pop(file_id, None)
        if chunks is None:
            return False
        self._used -= chunks
        return True

    def occupancy(self) -> Dict[str, int]:
        return dict(self._resident)

    @property
    def used_chunks(self) -> int:
        return self._used

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _record_access(self, file_id: str) -> None:
        count = self._counts.get(file_id, 0) + 1
        self._counts[file_id] = count
        tick = next(self._clock)
        self._last_access[file_id] = tick
        if file_id in self._resident:
            heapq.heappush(self._heap, (count, tick, file_id))

    def _pop_victim(self) -> Optional[str]:
        while self._heap:
            count, tick, file_id = heapq.heappop(self._heap)
            if (
                file_id in self._resident
                and self._counts.get(file_id) == count
                and self._last_access.get(file_id) == tick
            ):
                return file_id
        return None

    def _on_hit(self, file_id: str, now: float) -> None:
        self._record_access(file_id)

    def _on_miss(self, file_id: str, now: float) -> Tuple[bool, List[Eviction]]:
        self._record_access(file_id)
        size = self.footprint(file_id)
        if size > self._capacity:
            return False, []
        evicted: List[Eviction] = []
        while self._used + size > self._capacity:
            victim = self._pop_victim()
            if victim is None:
                break
            chunks = self._resident.pop(victim)
            self._used -= chunks
            evicted.append((victim, chunks))
        if self._used + size > self._capacity:
            # Cannot make room (capacity 0 with nothing resident).
            return False, evicted
        self._resident[file_id] = size
        self._used += size
        heapq.heappush(
            self._heap,
            (self._counts[file_id], self._last_access[file_id], file_id),
        )
        return True, evicted

    # ------------------------------------------------------------------
    # Epoch fast path: frequency needs the per-file multiplicities.
    # ------------------------------------------------------------------

    def touch_epoch(
        self,
        file_ids: Sequence[str],
        counts: Optional[Sequence[int]] = None,
        now: float = 0.0,
        times: Optional[Sequence[float]] = None,
        total: Optional[int] = None,
    ) -> None:
        if counts is None:
            counts = [1] * len(file_ids)
        folded = 0
        for file_id, multiplicity in zip(file_ids, counts):
            multiplicity = int(multiplicity)
            folded += multiplicity
            count = self._counts.get(file_id, 0) + multiplicity
            self._counts[file_id] = count
            tick = next(self._clock)
            self._last_access[file_id] = tick
            if file_id in self._resident:
                heapq.heappush(self._heap, (count, tick, file_id))
        observed = int(total) if total is not None else folded
        self.stats.reads += observed
        self.stats.hits += observed
