"""Least-recently-used whole-object caching (Ceph's cache-tier policy)."""

from __future__ import annotations

import numpy as np

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.baselines.lru import LRUCache
from repro.exceptions import CacheError
from repro.policies.base import AccessOutcome, ChunkCachingPolicy, Eviction


class LRUPolicy(ChunkCachingPolicy):
    """Whole-object LRU over chunk-sized entries.

    Misses promote the whole object, evicting least-recently-used residents
    to make room; objects larger than the whole cache are simply not cached
    (clean miss path).  ``replication`` inflates the footprint each cached
    copy occupies (Ceph's cache tier stores replicated objects) without
    changing the chunk-occupancy snapshot the scheduler sees.
    """

    def __init__(
        self,
        capacity_chunks: int,
        chunks_per_file: Optional[Mapping[str, int]] = None,
        replication: int = 1,
    ):
        if replication < 1:
            raise CacheError("replication factor must be at least 1")
        self._replication = int(replication)
        self._cache = LRUCache(capacity_chunks)
        super().__init__(capacity_chunks, chunks_per_file)

    def _stored_size(self, file_id: str) -> int:
        return self.footprint(file_id) * self._replication

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------

    def lookup(self, file_id: str) -> int:
        return self.footprint(file_id) if self._cache.peek(file_id) else 0

    def evict(self, file_id: str) -> bool:
        return self._cache.evict(file_id)

    def occupancy(self) -> Dict[str, int]:
        return {str(key): self.footprint(str(key)) for key in self._cache.keys()}

    @property
    def used_chunks(self) -> int:
        return self._cache.used

    def _on_hit(self, file_id: str, now: float) -> None:
        self._cache.touch(file_id)

    def _on_miss(self, file_id: str, now: float) -> Tuple[bool, List[Eviction]]:
        victims = self._cache.insert(file_id, self._stored_size(file_id))
        promoted = self._cache.peek(file_id)
        evicted = [
            (str(key), self.footprint(str(key))) for key, _ in victims
        ]
        return promoted, evicted

    def observe(self, file_id: str, now: float = 0.0) -> AccessOutcome:
        # Hot-path specialisation of the base template (no time-driven
        # hooks, hit == membership): one OrderedDict touch per hit.
        stats = self.stats
        stats.reads += 1
        if self._cache.touch(file_id):
            stats.hits += 1
            return AccessOutcome(True, self.footprint(file_id))
        promoted, evicted = self._on_miss(file_id, now)
        if promoted:
            stats.promotions += 1
        if evicted:
            stats.evicted_chunks += sum(chunks for _, chunks in evicted)
        return AccessOutcome(False, 0, promoted, tuple(evicted))

    # ------------------------------------------------------------------
    # Epoch fast path
    # ------------------------------------------------------------------

    def touch_epoch(
        self,
        file_ids: Sequence[str],
        counts: Optional[Sequence[int]] = None,
        now: float = 0.0,
        times: Optional[Sequence[float]] = None,
        total: Optional[int] = None,
    ) -> None:
        # A run of hits leaves the unique files ordered by last access; one
        # move_to_end per unique file reproduces per-request processing.
        touch = self._cache.touch
        for file_id in file_ids:
            touch(file_id)
        if total is None:
            total = len(file_ids) if counts is None else int(sum(counts))
        self.stats.reads += total
        self.stats.hits += total
