"""The :class:`ChunkCachingPolicy` protocol every cache policy implements.

A *chunk caching policy* decides, request by request, which chunks of which
files live in the cache.  The protocol is deliberately small -- ``observe``
(record an access, possibly promoting the file and evicting victims),
``lookup`` (how many chunks of a file are cached right now), ``evict``
(explicit removal) and ``occupancy`` (the full chunk-occupancy snapshot) --
so the same policy object drives three very different consumers:

* the Ceph-like cache tier (:mod:`repro.cluster.cachetier`), one object at
  a time along the emulated IO path;
* the epoch-batched trace replay (:mod:`repro.cluster.replay`), which
  freezes the residency snapshot for a run of requests and folds the run
  back into the policy at epoch boundaries via :meth:`touch_epoch`;
* the scenario facade (:mod:`repro.policies.placement`), which replays a
  seeded synthetic trace and converts the final occupancy snapshot into a
  functional cache placement for the analytical pipeline.

State-change reporting is explicit: every mutation returns the victims it
evicted as ``(file_id, chunks)`` pairs, so consumers can keep exact
eviction accounting (the cache tier's ``evictions_mb``) and the epoch
engine can patch its residency arrays without rescanning the policy.

Degenerate configurations are first-class: a zero-capacity policy and a
file larger than the whole cache must both take the miss path cleanly
(hit ratio 0.0, no exception) rather than raising mid-replay.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import (
    ClassVar,
    Dict,
    Iterable,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro.exceptions import CacheError

#: A ``(file_id, chunks)`` eviction record.
Eviction = Tuple[str, int]


@dataclass
class PolicyStats:
    """Hit/miss/eviction counters maintained by every policy."""

    reads: int = 0
    hits: int = 0
    promotions: int = 0
    evicted_chunks: int = 0

    @property
    def misses(self) -> int:
        """Number of reads that did not fully hit."""
        return self.reads - self.hits

    @property
    def hit_ratio(self) -> float:
        """Fraction of reads served entirely from the cache (0 if no reads)."""
        if self.reads == 0:
            return 0.0
        return self.hits / self.reads


class AccessOutcome(NamedTuple):
    """What one :meth:`ChunkCachingPolicy.observe` call did.

    Attributes
    ----------
    hit:
        Whether the file was fully resident (all ``k_i`` chunks cached).
    cached_chunks:
        Chunks of the requested file served from the cache for this access
        (``k_i`` on a hit, the partial allocation -- usually 0 -- on a miss).
    promoted:
        Whether the miss actually inserted the file (a zero-capacity cache
        or an oversized file misses without promoting).
    evicted:
        Victims removed to make room (or expired), as ``(file_id, chunks)``.
    """

    hit: bool
    cached_chunks: int
    promoted: bool = False
    evicted: Tuple[Eviction, ...] = ()


class ChunkCachingPolicy(ABC):
    """Base class of the pluggable cache-policy layer.

    Parameters
    ----------
    capacity_chunks:
        Cache capacity in chunk units (any consistent unit works; the
        cluster cache tier uses MB).  Zero is a valid, always-missing cache.
    chunks_per_file:
        Mapping from file id to the chunk footprint a cached copy occupies.
        Files may also be registered later via :meth:`register_file` (the
        cache tier learns sizes on write).
    """

    #: Whether residency only changes inside ``observe``/``warm``/``evict``
    #: calls.  Time-driven policies (TTL) set this to ``False`` and implement
    #: :meth:`next_event_time`/:meth:`advance` so the epoch replay can place
    #: epoch boundaries at expiry instants.
    epoch_invariant: ClassVar[bool] = True

    #: Whether :meth:`touch_epoch` needs the per-file access counts
    #: (frequency-driven policies).  Recency-only policies leave this False
    #: so the epoch replay can skip count bookkeeping entirely.
    counts_in_touch: ClassVar[bool] = False

    def __init__(
        self,
        capacity_chunks: int,
        chunks_per_file: Optional[Mapping[str, int]] = None,
    ):
        if capacity_chunks < 0:
            raise CacheError(
                f"capacity must be non-negative, got {capacity_chunks}"
            )
        self._capacity = int(capacity_chunks)
        self._chunks_per_file: Dict[str, int] = {}
        for file_id, chunks in (chunks_per_file or {}).items():
            self.register_file(file_id, chunks)
        self.stats = PolicyStats()

    # ------------------------------------------------------------------
    # Footprints
    # ------------------------------------------------------------------

    @property
    def capacity_chunks(self) -> int:
        """Cache capacity in chunk units."""
        return self._capacity

    def register_file(self, file_id: str, chunks: int) -> None:
        """Declare (or update) the chunk footprint of a file."""
        if chunks <= 0:
            raise CacheError(
                f"file {file_id!r}: footprint must be positive, got {chunks}"
            )
        self._chunks_per_file[str(file_id)] = int(chunks)

    def footprint(self, file_id: str) -> int:
        """Chunk footprint of a cached copy of ``file_id``."""
        try:
            return self._chunks_per_file[file_id]
        except KeyError as error:
            raise CacheError(f"unknown file id {file_id!r}") from error

    @property
    def known_files(self) -> List[str]:
        """All registered file ids."""
        return list(self._chunks_per_file)

    # ------------------------------------------------------------------
    # The protocol proper: observe / lookup / evict / occupancy
    # ------------------------------------------------------------------

    @abstractmethod
    def lookup(self, file_id: str) -> int:
        """Chunks of ``file_id`` currently cached (no state change)."""

    @abstractmethod
    def evict(self, file_id: str) -> bool:
        """Explicitly remove ``file_id``; returns whether it was cached."""

    @abstractmethod
    def occupancy(self) -> Dict[str, int]:
        """Chunk-occupancy snapshot: cached chunks per resident file."""

    @property
    @abstractmethod
    def used_chunks(self) -> int:
        """Chunk units currently occupied."""

    def resident(self, file_id: str) -> bool:
        """Whether ``file_id`` is fully resident (all chunks cached)."""
        return self.lookup(file_id) >= self.footprint(file_id)

    def observe(self, file_id: str, now: float = 0.0) -> AccessOutcome:
        """Record one access to ``file_id`` at time ``now``.

        Template method: expires time-driven entries, classifies the access
        against the current residency, and routes to the policy's hit/miss
        handlers.  Returns the full :class:`AccessOutcome` so callers can
        keep exact eviction accounting.
        """
        self.stats.reads += 1
        expired = tuple(self.advance(now))
        cached = self.lookup(file_id)
        footprint = self.footprint(file_id)
        if cached >= footprint:
            self._on_hit(file_id, now)
            self.stats.hits += 1
            if expired:
                self.stats.evicted_chunks += sum(c for _, c in expired)
            return AccessOutcome(True, cached, False, expired)
        promoted, evicted = self._on_miss(file_id, now)
        if promoted:
            self.stats.promotions += 1
        evicted = expired + tuple(evicted)
        self.stats.evicted_chunks += sum(c for _, c in evicted)
        return AccessOutcome(False, cached, promoted, evicted)

    def admit(self, file_id: str, now: float = 0.0) -> AccessOutcome:
        """Insert ``file_id`` as if freshly written (no read accounting).

        The write path of a write-back tier: the object becomes resident
        (evicting victims as needed) but the access does not count as a
        read, hit or promotion in :attr:`stats`.
        """
        expired = tuple(self.advance(now))
        if expired:
            self.stats.evicted_chunks += sum(c for _, c in expired)
        cached = self.lookup(file_id)
        if cached >= self.footprint(file_id):
            self._on_hit(file_id, now)
            return AccessOutcome(True, cached, False, expired)
        promoted, evicted = self._on_miss(file_id, now)
        self.stats.evicted_chunks += sum(c for _, c in evicted)
        return AccessOutcome(False, cached, promoted, expired + tuple(evicted))

    # ------------------------------------------------------------------
    # Hit/miss handlers implemented by concrete policies
    # ------------------------------------------------------------------

    @abstractmethod
    def _on_hit(self, file_id: str, now: float) -> None:
        """Update recency/frequency state for a full hit."""

    @abstractmethod
    def _on_miss(self, file_id: str, now: float) -> Tuple[bool, List[Eviction]]:
        """Handle a miss; returns ``(promoted, evicted victims)``."""

    # ------------------------------------------------------------------
    # Time-driven hooks (TTL-style policies override these)
    # ------------------------------------------------------------------

    def advance(self, now: float) -> List[Eviction]:
        """Expire entries whose lifetime ended at or before ``now``."""
        return []

    def next_event_time(self) -> float:
        """Earliest future time at which residency changes on its own."""
        return math.inf

    # ------------------------------------------------------------------
    # Bulk entry points used by the epoch replay and warm-up
    # ------------------------------------------------------------------

    def touch_epoch(
        self,
        file_ids: Sequence[str],
        counts: Optional[Sequence[int]] = None,
        now: float = 0.0,
        times: Optional[Sequence[float]] = None,
        total: Optional[int] = None,
    ) -> None:
        """Fold a run of full hits into the policy state.

        The epoch replay calls this with the *unique* files of a hit run,
        ordered by their last access (earliest last-access first), plus the
        run's total access count and -- when :attr:`counts_in_touch` /
        :attr:`epoch_invariant` demand them -- the per-file access counts
        and last-access times.  Applying ``_on_hit`` once per unique file
        in that order reproduces the final state of per-request processing
        for recency-driven policies; frequency- or time-driven policies
        override this to consume ``counts``/``times``.
        """
        if total is None:
            total = len(file_ids) if counts is None else int(sum(counts))
        for position, file_id in enumerate(file_ids):
            self._on_hit(file_id, times[position] if times is not None else now)
        self.stats.reads += total
        self.stats.hits += total

    def warm(self, file_ids: Iterable[str], now: float = 0.0) -> None:
        """Pre-populate the cache by admitting files in order (stats reset)."""
        for file_id in file_ids:
            self.admit(file_id, now)
        self.reset_stats()

    def reset_stats(self) -> None:
        """Zero the hit/miss counters (cache contents are preserved)."""
        self.stats = PolicyStats()
