"""Turn a cache policy into an analytical cache placement via trace replay.

The optimize/schedule/simulate pipeline works on a static
:class:`~repro.core.placement.CachePlacement`; a dynamic policy (LRU, LFU,
ARC, TTL) has no closed-form placement.  The bridge is a seeded synthetic
trace: draw a Poisson request stream from the model's arrival rates, replay
it through the policy, and freeze the final chunk-occupancy snapshot into a
functional placement with uniform scheduling.  This is exactly how the
paper treats the Ceph cache tier analytically -- the steady-state content
of the dynamic cache, evaluated with the Lemma-1 bound.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.static import functional_placement_from_allocation
from repro.core.model import StorageSystemModel
from repro.core.placement import CachePlacement
from repro.policies.base import ChunkCachingPolicy
from repro.simulation.arrivals import generate_request_arrays


def placement_from_trace_replay(
    model: StorageSystemModel,
    policy: ChunkCachingPolicy,
    seed: Optional[int] = None,
    target_requests: int = 4000,
) -> CachePlacement:
    """Replay a seeded trace through ``policy`` and snapshot its occupancy.

    Parameters
    ----------
    model:
        The storage-system model supplying files, rates and cache capacity.
    policy:
        A policy instance sized for ``model.cache_capacity`` chunks.
    seed:
        Trace seed; the same seed always yields the same placement.
    target_requests:
        Expected length of the warm-up trace (the horizon is chosen as
        ``target_requests / total_arrival_rate``).
    """
    rates = {spec.file_id: spec.arrival_rate for spec in model.files}
    total_rate = sum(rates.values())
    rng = np.random.default_rng(seed)
    if total_rate > 0 and target_requests > 0:
        horizon = target_requests / total_rate
        times, positions, file_ids = generate_request_arrays(rates, horizon, rng)
        for position, time in zip(positions, times):
            policy.observe(file_ids[int(position)], now=float(time))
    allocation = {
        file_id: min(chunks, model.file(file_id).k)
        for file_id, chunks in policy.occupancy().items()
    }
    return functional_placement_from_allocation(model, allocation)
