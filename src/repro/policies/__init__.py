"""The pluggable cache-policy layer.

Every caching strategy -- Ceph's replicated LRU tier, the paper's static
functional cache, and the LFU/ARC/TTL variants -- implements the single
:class:`~repro.policies.base.ChunkCachingPolicy` protocol
(``observe``/``lookup``/``evict`` plus the chunk-occupancy snapshot), so
the cluster cache tier, the epoch-batched trace replay and the scenario
facade all consume policies interchangeably.  Policies register under
``repro.api.registry.POLICIES`` (``@register_policy``) and become valid
``Scenario(policy=...)`` values; :func:`create_policy` builds one by
registered name.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.policies.arc import ARCPolicy
from repro.policies.base import AccessOutcome, ChunkCachingPolicy, Eviction, PolicyStats
from repro.policies.functional import StaticFunctionalPolicy, round_robin_allocation
from repro.policies.lfu import LFUPolicy
from repro.policies.lru import LRUPolicy
from repro.policies.placement import placement_from_trace_replay
from repro.policies.ttl import TTLPolicy

__all__ = [
    "AccessOutcome",
    "ChunkCachingPolicy",
    "Eviction",
    "PolicyStats",
    "LRUPolicy",
    "LFUPolicy",
    "ARCPolicy",
    "TTLPolicy",
    "StaticFunctionalPolicy",
    "round_robin_allocation",
    "placement_from_trace_replay",
    "create_policy",
]


def create_policy(
    name: str,
    capacity_chunks: int,
    chunks_per_file: Optional[Mapping[str, int]] = None,
    **params: Any,
) -> ChunkCachingPolicy:
    """Instantiate a registered policy by name.

    The lookup goes through ``repro.api.registry.POLICIES`` (imported
    lazily to keep this package independent of the facade at import time),
    so plugins registered with ``@register_policy`` work here too.
    """
    from repro.api.registry import POLICIES

    spec = POLICIES.get(name)
    return spec.factory(capacity_chunks, chunks_per_file, **params)
