"""ARC-style adaptive caching (recency/frequency balance with ghost lists)."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Tuple

from repro.policies.base import ChunkCachingPolicy, Eviction


class ARCPolicy(ChunkCachingPolicy):
    """Adaptive Replacement Cache over whole objects, adapted to sized entries.

    The classic ARC structure: two resident lists ``T1`` (seen once
    recently) and ``T2`` (seen at least twice), two ghost lists ``B1``/``B2``
    remembering recently evicted keys, and an adaptation target ``p`` (in
    chunk units here) that grows when ghosts of ``B1`` are re-referenced
    (favour recency) and shrinks on ``B2`` ghosts (favour frequency).
    Entry sizes are respected everywhere: eviction loops free chunks until
    the newcomer fits, ``p`` moves by the re-referenced object's size, and
    the ghost lists are trimmed to keep the directory within ``2c`` chunks.
    Objects larger than the whole cache take the clean miss path.
    """

    def __init__(
        self,
        capacity_chunks: int,
        chunks_per_file: Optional[Mapping[str, int]] = None,
    ):
        super().__init__(capacity_chunks, chunks_per_file)
        self._t1: "OrderedDict[str, int]" = OrderedDict()  # LRU -> MRU
        self._t2: "OrderedDict[str, int]" = OrderedDict()
        self._b1: "OrderedDict[str, int]" = OrderedDict()
        self._b2: "OrderedDict[str, int]" = OrderedDict()
        self._p = 0.0

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------

    def lookup(self, file_id: str) -> int:
        if file_id in self._t1:
            return self._t1[file_id]
        if file_id in self._t2:
            return self._t2[file_id]
        return 0

    def evict(self, file_id: str) -> bool:
        for resident in (self._t1, self._t2):
            if file_id in resident:
                del resident[file_id]
                return True
        return False

    def occupancy(self) -> Dict[str, int]:
        snapshot = dict(self._t1)
        snapshot.update(self._t2)
        return snapshot

    @property
    def used_chunks(self) -> int:
        return sum(self._t1.values()) + sum(self._t2.values())

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @staticmethod
    def _chunks(entries: "OrderedDict[str, int]") -> int:
        return sum(entries.values())

    def _replace(self, prefer_t2: bool, evicted: List[Eviction]) -> bool:
        """Evict one LRU entry from T1 or T2 per the adaptation target."""
        t1_chunks = self._chunks(self._t1)
        if self._t1 and (t1_chunks > self._p or (prefer_t2 is False and not self._t2)):
            victim, chunks = self._t1.popitem(last=False)
            self._b1[victim] = chunks
        elif self._t2:
            victim, chunks = self._t2.popitem(last=False)
            self._b2[victim] = chunks
        elif self._t1:
            victim, chunks = self._t1.popitem(last=False)
            self._b1[victim] = chunks
        else:
            return False
        evicted.append((victim, chunks))
        return True

    def _trim_ghosts(self) -> None:
        # Directory invariant: |T1|+|B1| <= c and the whole directory <= 2c.
        while self._b1 and self._chunks(self._t1) + self._chunks(self._b1) > self._capacity:
            self._b1.popitem(last=False)
        total = (
            self._chunks(self._t1)
            + self._chunks(self._t2)
            + self._chunks(self._b1)
            + self._chunks(self._b2)
        )
        while self._b2 and total > 2 * self._capacity:
            _, chunks = self._b2.popitem(last=False)
            total -= chunks

    def _on_hit(self, file_id: str, now: float) -> None:
        if file_id in self._t1:
            chunks = self._t1.pop(file_id)
            self._t2[file_id] = chunks
        elif file_id in self._t2:
            self._t2.move_to_end(file_id)

    def _on_miss(self, file_id: str, now: float) -> Tuple[bool, List[Eviction]]:
        size = self.footprint(file_id)
        if size > self._capacity:
            return False, []
        evicted: List[Eviction] = []
        if file_id in self._b1:
            ghost = self._b1.pop(file_id)
            b1 = max(self._chunks(self._b1), 1)
            b2 = self._chunks(self._b2)
            self._p = min(float(self._capacity), self._p + max(b2 / b1, 1.0) * ghost)
            target = self._t2
        elif file_id in self._b2:
            ghost = self._b2.pop(file_id)
            b2 = max(self._chunks(self._b2), 1)
            b1 = self._chunks(self._b1)
            self._p = max(0.0, self._p - max(b1 / b2, 1.0) * ghost)
            target = self._t2
        else:
            target = self._t1
        prefer_t2 = target is self._t2
        while self.used_chunks + size > self._capacity:
            if not self._replace(prefer_t2, evicted):
                return False, evicted
        target[file_id] = size
        self._trim_ghosts()
        return True, evicted
