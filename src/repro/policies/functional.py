"""The static functional cache: a fixed per-file chunk allocation.

This is the paper's functional-caching idea viewed through the policy
protocol: every file holds a constant ``d_i`` of its ``k_i`` chunks in the
cache (functionally re-encoded, so any ``d_i`` chunks work) and no request
ever changes the allocation -- there is nothing to promote or evict at
request time; allocations change only between optimization epochs.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.exceptions import CacheError
from repro.policies.base import ChunkCachingPolicy, Eviction


def round_robin_allocation(
    chunks_per_file: Mapping[str, int], capacity_chunks: int
) -> Dict[str, int]:
    """Spread ``capacity_chunks`` one chunk at a time over the files.

    Files are visited in sorted-id order, receiving one chunk per round up
    to their ``k_i``, until the capacity is exhausted -- the uniform static
    split used when no explicit allocation is supplied.
    """
    allocation = {file_id: 0 for file_id in sorted(chunks_per_file)}
    remaining = int(capacity_chunks)
    progress = True
    while remaining > 0 and progress:
        progress = False
        for file_id in allocation:
            if remaining == 0:
                break
            if allocation[file_id] < chunks_per_file[file_id]:
                allocation[file_id] += 1
                remaining -= 1
                progress = True
    return {file_id: d for file_id, d in allocation.items() if d > 0}


class StaticFunctionalPolicy(ChunkCachingPolicy):
    """Fixed functional chunk allocation; observes are pure bookkeeping.

    Parameters
    ----------
    capacity_chunks, chunks_per_file:
        As for every policy.
    allocation:
        Explicit per-file cached chunk counts ``d_i``; defaults to the
        uniform :func:`round_robin_allocation` over the registered files.
        The total allocation may not exceed the capacity.
    """

    def __init__(
        self,
        capacity_chunks: int,
        chunks_per_file: Optional[Mapping[str, int]] = None,
        allocation: Optional[Mapping[str, int]] = None,
    ):
        super().__init__(capacity_chunks, chunks_per_file)
        if allocation is None:
            allocation = round_robin_allocation(
                self._chunks_per_file, capacity_chunks
            )
        self._allocation: Dict[str, int] = {}
        total = 0
        for file_id, chunks in allocation.items():
            chunks = int(chunks)
            if chunks < 0:
                raise CacheError(
                    f"file {file_id!r}: allocation must be non-negative"
                )
            if chunks == 0:
                continue
            footprint = self.footprint(str(file_id))
            if chunks > footprint:
                raise CacheError(
                    f"file {file_id!r}: allocation {chunks} exceeds its "
                    f"{footprint} chunks"
                )
            self._allocation[str(file_id)] = chunks
            total += chunks
        if total > self._capacity:
            raise CacheError(
                f"allocation of {total} chunks exceeds capacity {self._capacity}"
            )

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------

    def lookup(self, file_id: str) -> int:
        return self._allocation.get(file_id, 0)

    def evict(self, file_id: str) -> bool:
        return self._allocation.pop(file_id, None) is not None

    def occupancy(self) -> Dict[str, int]:
        return dict(self._allocation)

    @property
    def used_chunks(self) -> int:
        return sum(self._allocation.values())

    def _on_hit(self, file_id: str, now: float) -> None:
        pass

    def _on_miss(self, file_id: str, now: float) -> Tuple[bool, List[Eviction]]:
        # Static: misses never promote and never evict.
        return False, []
