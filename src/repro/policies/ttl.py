"""Time-to-live caching: entries expire a fixed lifetime after insertion."""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Tuple

from repro.exceptions import CacheError
from repro.policies.base import ChunkCachingPolicy, Eviction


class TTLPolicy(ChunkCachingPolicy):
    """Whole-object caching with expiry ``ttl`` time units after insertion.

    Misses promote the object with an expiry stamp of ``now + ttl``;
    accesses do not refresh the stamp (set ``refresh_on_hit=True`` for a
    sliding window).  Capacity pressure evicts the entry closest to expiry,
    which with a constant ``ttl`` and no refresh is FIFO order.  With
    ``ttl=inf`` (the default) the policy degenerates to plain FIFO.

    Because residency changes with time -- not only on accesses -- the
    policy advertises ``epoch_invariant = False`` and exposes the earliest
    expiry via :meth:`next_event_time`, letting the epoch replay place an
    epoch boundary at every expiry instant and stay exact.
    """

    epoch_invariant = False

    def __init__(
        self,
        capacity_chunks: int,
        chunks_per_file: Optional[Mapping[str, int]] = None,
        ttl: float = math.inf,
        refresh_on_hit: bool = False,
    ):
        if not ttl > 0:
            raise CacheError(f"ttl must be positive, got {ttl}")
        super().__init__(capacity_chunks, chunks_per_file)
        self._ttl = float(ttl)
        self._refresh_on_hit = bool(refresh_on_hit)
        # file_id -> (chunks, expiry); kept ordered by expiry (constant ttl
        # means insertion/refresh order is expiry order).
        self._entries: "OrderedDict[str, Tuple[int, float]]" = OrderedDict()
        self._used = 0

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------

    def lookup(self, file_id: str) -> int:
        entry = self._entries.get(file_id)
        return entry[0] if entry is not None else 0

    def evict(self, file_id: str) -> bool:
        entry = self._entries.pop(file_id, None)
        if entry is None:
            return False
        self._used -= entry[0]
        return True

    def occupancy(self) -> Dict[str, int]:
        return {file_id: chunks for file_id, (chunks, _) in self._entries.items()}

    @property
    def used_chunks(self) -> int:
        return self._used

    # ------------------------------------------------------------------
    # Time-driven hooks
    # ------------------------------------------------------------------

    def advance(self, now: float) -> List[Eviction]:
        expired: List[Eviction] = []
        while self._entries:
            file_id, (chunks, expiry) = next(iter(self._entries.items()))
            if expiry > now:
                break
            del self._entries[file_id]
            self._used -= chunks
            expired.append((file_id, chunks))
        return expired

    def next_event_time(self) -> float:
        if not self._entries:
            return math.inf
        _, (_, expiry) = next(iter(self._entries.items()))
        return expiry

    # ------------------------------------------------------------------
    # Hit/miss handlers
    # ------------------------------------------------------------------

    def _on_hit(self, file_id: str, now: float) -> None:
        # Guarded: the fixed-epoch replay may fold a frozen-classified hit
        # whose entry an earlier in-epoch miss already evicted.
        if self._refresh_on_hit and file_id in self._entries:
            chunks, _ = self._entries.pop(file_id)
            self._entries[file_id] = (chunks, now + self._ttl)

    def _on_miss(self, file_id: str, now: float) -> Tuple[bool, List[Eviction]]:
        size = self.footprint(file_id)
        if size > self._capacity:
            return False, []
        evicted: List[Eviction] = []
        while self._used + size > self._capacity and self._entries:
            victim, (chunks, _) = self._entries.popitem(last=False)
            self._used -= chunks
            evicted.append((victim, chunks))
        self._entries[file_id] = (size, now + self._ttl)
        self._used += size
        return True, evicted
