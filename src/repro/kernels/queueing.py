"""The canonical vectorised queueing kernels, array-API portable.

One module now owns the closed-form queueing primitives that the batch
simulation engine and the trace-replay engines previously carried as
private inline code:

* :func:`lindley_departures` -- single-server FIFO departures via the
  Lindley recursion ``D_c = max(A_c, D_{c-1}) + S_c``, unrolled into two
  vector scans: ``D = cumsum(S) + runningmax(A - (cumsum(S) - S))``.
* :func:`fifo_departures_grouped` -- many independent single-server FIFO
  queues (e.g. the per-OSD HDD queues), one Lindley scan per group over
  its time-sorted arrivals.
* :func:`multi_server_departures` -- one FIFO queue with ``c`` identical
  servers and a *constant* service time (the SSD cache-device bank).
  With constant service, jobs depart in arrival order and the ``i``-th
  job starts when the ``(i-c)``-th departs, so the queue splits into
  ``c`` interleaved single-server Lindley lanes.
* :func:`segment_max` / :func:`segment_sum` -- segmented ``reduceat``-style
  reductions over contiguous segments (fork-join maxima over each
  request's chunk departures, per-file pair sums in the solver).
* :func:`fork_join_max` -- the dense equal-width fork-join reduction used
  when every request in a group reads the same number of chunks.
* :func:`systematic_sample_positions` -- the pure-array core of batched
  systematic inclusion sampling (randomness is pre-drawn by the caller,
  so the kernel itself is backend-agnostic and reproducible).
* :func:`last_access_fold` -- the epoch-segment fold collapsing a run of
  cache hits into per-object (count, last-access) summaries.

Every kernel has two code paths selected by the active
:class:`~repro.kernels.backends.KernelBackend`:

* the **NumPy fast path** reproduces the pre-kernel inline implementations
  operation for operation (``np.maximum.accumulate``, ``np.add.reduceat``,
  ``np.lexsort``), so seeded engine outputs are *bit-equal* to the
  pre-refactor code, and
* the **portable path** uses only array-API standard constructs
  (``cumulative_sum``, stable ``argsort``, ``searchsorted``, ``take``,
  ``unique_all``) plus a doubling prefix-maximum, so the same kernel runs
  on ``array_api_strict`` for conformance and on CuPy/JAX-class
  namespaces for GPU execution.

Kernels accept NumPy (or array-like) inputs and return NumPy arrays; the
active backend is an implementation detail of the computation.  Pass
``backend=`` (a name or a resolved backend) to pin a kernel call, or use
:func:`repro.kernels.use_kernel_backend` to activate one for a region.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import numpy as np

from repro.exceptions import SimulationError
from repro.kernels.backends import (
    BackendLike,
    KernelBackend,
    resolve_kernel_backend,
)

__all__ = [
    "lindley_departures",
    "fifo_departures_grouped",
    "multi_server_departures",
    "segment_max",
    "segment_sum",
    "fork_join_max",
    "systematic_sample_positions",
    "last_access_fold",
]


# ----------------------------------------------------------------------
# Portable array-API building blocks
# ----------------------------------------------------------------------


def _cumsum(xp: Any, values: Any) -> Any:
    """Array-API cumulative sum (``cumulative_sum``, or legacy ``cumsum``)."""
    if hasattr(xp, "cumulative_sum"):
        return xp.cumulative_sum(values)
    return xp.cumsum(values)


def _running_max(xp: Any, values: Any) -> Any:
    """Inclusive prefix maximum without ``np.maximum.accumulate``.

    The array-API standard has no cumulative maximum, so the portable path
    uses the doubling trick: after pass ``p`` every element holds the
    maximum of the ``2**p`` elements ending at it, giving the full prefix
    maximum in ``ceil(log2 n)`` vector passes.
    """
    n = int(values.shape[0])
    result = values
    shift = 1
    while shift < n:
        result = xp.concat(
            [result[:shift], xp.maximum(result[shift:], result[: n - shift])]
        )
        shift *= 2
    return result


def _stable_argsort(xp: Any, values: Any) -> Any:
    return xp.argsort(values, stable=True)


def _take_along_rows(xp: Any, matrix: Any, indices: Any) -> Any:
    """``take_along_axis(matrix, indices, axis=1)`` with a flat fallback."""
    if hasattr(xp, "take_along_axis"):
        return xp.take_along_axis(matrix, indices, axis=1)
    rows, columns = matrix.shape
    offsets = xp.reshape(xp.arange(rows) * columns, (rows, 1))
    flat = xp.take(xp.reshape(matrix, (-1,)), xp.reshape(indices + offsets, (-1,)))
    return xp.reshape(flat, indices.shape)


def _lindley_xp(xp: Any, arrivals: Any, services: Any) -> Any:
    """Portable Lindley scan on backend arrays (arrivals sorted ascending)."""
    cumulative = _cumsum(xp, services)
    idle_offsets = _running_max(xp, arrivals - (cumulative - services))
    return cumulative + idle_offsets


def _lindley_numpy(arrivals: np.ndarray, services: np.ndarray) -> np.ndarray:
    """NumPy fast path: the pre-kernel inline implementation, verbatim."""
    cumulative = np.cumsum(services)
    idle_offsets = np.maximum.accumulate(arrivals - (cumulative - services))
    return cumulative + idle_offsets


# ----------------------------------------------------------------------
# Lindley FIFO departures
# ----------------------------------------------------------------------


def lindley_departures(
    arrivals: np.ndarray,
    services: np.ndarray,
    *,
    backend: BackendLike = None,
) -> np.ndarray:
    """Closed-form single-server FIFO departure times.

    ``arrivals`` must be sorted ascending; ``services`` holds the matching
    service draws.  Returns the departure time of every job, in order.
    """
    resolved = resolve_kernel_backend(backend)
    if resolved.native_numpy:
        return _lindley_numpy(
            np.asarray(arrivals, dtype=float), np.asarray(services, dtype=float)
        )
    xp = resolved.xp
    departures = _lindley_xp(
        xp, resolved.asarray(arrivals, float), resolved.asarray(services, float)
    )
    return resolved.to_numpy(departures)


def fifo_departures_grouped(
    groups: np.ndarray,
    times: np.ndarray,
    services: np.ndarray,
    num_groups: int,
    *,
    backend: BackendLike = None,
) -> np.ndarray:
    """Departure times of per-group single-server FIFO queues.

    Parameters
    ----------
    groups:
        Queue index of each entry (``0 <= groups < num_groups``).
    times:
        Arrival time of each entry (any order).
    services:
        Service time of each entry.
    num_groups:
        Number of queues.
    backend:
        Optional kernel-backend override.

    Entries of one queue are served in ``(time, input position)`` order;
    the returned departures are aligned with the input arrays.
    """
    groups = np.asarray(groups)
    times = np.asarray(times, dtype=float)
    services = np.asarray(services, dtype=float)
    if not (groups.shape == times.shape == services.shape):
        raise SimulationError("groups, times and services must align")
    resolved = resolve_kernel_backend(backend)
    if resolved.native_numpy:
        order = np.lexsort((np.arange(times.size), times, groups))
        sorted_groups = groups[order]
        sorted_times = times[order]
        sorted_services = services[order]
        boundaries = np.searchsorted(sorted_groups, np.arange(num_groups + 1))
        departures_sorted = np.empty_like(sorted_times)
        for group in range(num_groups):
            low, high = int(boundaries[group]), int(boundaries[group + 1])
            if low == high:
                continue
            departures_sorted[low:high] = _lindley_numpy(
                sorted_times[low:high], sorted_services[low:high]
            )
        departures = np.empty_like(departures_sorted)
        departures[order] = departures_sorted
        return departures

    xp = resolved.xp
    g = resolved.asarray(groups, np.int64)
    t = resolved.asarray(times, float)
    s = resolved.asarray(services, float)
    # lexsort((position, times, groups)) == stable sort by times, then a
    # stable re-sort by groups (stability supplies the position tiebreak).
    order = _stable_argsort(xp, t)
    order = xp.take(order, _stable_argsort(xp, xp.take(g, order)))
    sorted_groups = xp.take(g, order)
    sorted_times = xp.take(t, order)
    sorted_services = xp.take(s, order)
    boundaries = resolved.to_numpy(
        xp.searchsorted(sorted_groups, resolved.asarray(np.arange(num_groups + 1), np.int64))
    )
    parts = []
    for group in range(num_groups):
        low, high = int(boundaries[group]), int(boundaries[group + 1])
        if low == high:
            continue
        parts.append(
            _lindley_xp(xp, sorted_times[low:high], sorted_services[low:high])
        )
    if not parts:
        return np.empty(0, dtype=float)
    departures_sorted = xp.concat(parts) if len(parts) > 1 else parts[0]
    # Scatter back to input order via the inverse permutation (gathers
    # only: fancy-index assignment is not portable array-API).
    inverse = _stable_argsort(xp, order)
    return resolved.to_numpy(xp.take(departures_sorted, inverse))


def multi_server_departures(
    times: np.ndarray,
    service: float,
    num_servers: int,
    *,
    backend: BackendLike = None,
) -> np.ndarray:
    """Departures of a FIFO queue with ``c`` servers and constant service.

    ``times`` must be sorted ascending.  Jobs are dispatched to the
    earliest-free server; with a constant service time this is equivalent
    to ``c`` interleaved single-server Lindley lanes, so the whole queue
    costs two vector scans per lane.
    """
    if num_servers < 1:
        raise SimulationError("num_servers must be at least 1")
    times = np.asarray(times, dtype=float)
    if times.size == 0:
        return np.empty(0, dtype=float)
    resolved = resolve_kernel_backend(backend)
    if resolved.native_numpy:
        departures = np.empty_like(times)
        for lane in range(num_servers):
            lane_times = times[lane::num_servers]
            lane_services = np.full(lane_times.size, float(service))
            departures[lane::num_servers] = _lindley_numpy(lane_times, lane_services)
        return departures

    xp = resolved.xp
    t = resolved.asarray(times, float)
    n = int(times.size)
    lane_departures = []
    lane_positions = []
    for lane in range(num_servers):
        lane_times = t[lane::num_servers]
        lane_services = xp.full(lane_times.shape, float(service), dtype=lane_times.dtype)
        lane_departures.append(_lindley_xp(xp, lane_times, lane_services))
        lane_positions.append(resolved.asarray(np.arange(lane, n, num_servers), np.int64))
    all_departures = xp.concat(lane_departures)
    all_positions = xp.concat(lane_positions)
    inverse = _stable_argsort(xp, all_positions)
    return resolved.to_numpy(xp.take(all_departures, inverse))


# ----------------------------------------------------------------------
# Segmented reductions (fork-join maxima, per-file sums)
# ----------------------------------------------------------------------


def segment_max(
    values: np.ndarray,
    starts: np.ndarray,
    *,
    backend: BackendLike = None,
) -> np.ndarray:
    """Per-segment maxima over contiguous segments of ``values``.

    ``starts`` holds the strictly-increasing start offset of every segment
    (``starts[0] == 0``); segment ``i`` spans ``values[starts[i]:starts[i+1]]``
    and the last segment runs to the end.  Every segment must be non-empty.
    This is the fork-join reduction of the replay engines: one maximum per
    request over its chunk departures.
    """
    values = np.asarray(values)
    starts = np.asarray(starts, dtype=np.int64)
    resolved = resolve_kernel_backend(backend)
    if resolved.native_numpy:
        return np.maximum.reduceat(values, starts)
    xp = resolved.xp
    v = resolved.asarray(values, float)
    boundaries = starts.tolist() + [int(values.shape[0])]
    maxima = [
        xp.max(v[boundaries[index] : boundaries[index + 1]])
        for index in range(len(boundaries) - 1)
    ]
    return resolved.to_numpy(xp.stack(maxima))


def segment_sum(
    values: np.ndarray,
    starts: np.ndarray,
    *,
    backend: BackendLike = None,
) -> np.ndarray:
    """Per-segment sums over contiguous segments (see :func:`segment_max`).

    The portable path computes all segments at once as differences of the
    cumulative sum, so non-NumPy backends keep a fully vectorised path.
    """
    values = np.asarray(values)
    starts = np.asarray(starts, dtype=np.int64)
    resolved = resolve_kernel_backend(backend)
    if resolved.native_numpy:
        return np.add.reduceat(values, starts)
    xp = resolved.xp
    v = resolved.asarray(values, float)
    cumulative = _cumsum(xp, v)
    starts_b = resolved.asarray(starts, np.int64)
    total = int(values.shape[0])
    ends = xp.concat([starts_b[1:], resolved.asarray([total], np.int64)])
    totals = xp.take(cumulative, ends - 1)
    previous = xp.take(cumulative, xp.where(starts_b > 0, starts_b - 1, starts_b))
    previous = xp.where(starts_b > 0, previous, xp.zeros_like(previous))
    return resolved.to_numpy(totals - previous)


def fork_join_max(
    values: np.ndarray,
    num_segments: int,
    width: int,
    *,
    backend: BackendLike = None,
) -> np.ndarray:
    """Equal-width fork-join maxima: ``values`` reshaped ``(n, w)``, max per row.

    Used when every request in a group reads the same number of chunks
    (the batch engine's per-group layout), where the dense reshape beats
    the ragged :func:`segment_max`.
    """
    resolved = resolve_kernel_backend(backend)
    if resolved.native_numpy:
        return np.asarray(values).reshape(num_segments, width).max(axis=1)
    xp = resolved.xp
    v = resolved.asarray(values, float)
    return resolved.to_numpy(xp.max(xp.reshape(v, (num_segments, width)), axis=1))


# ----------------------------------------------------------------------
# Batched systematic sampling
# ----------------------------------------------------------------------


def systematic_sample_positions(
    probabilities: np.ndarray,
    order_uniforms: np.ndarray,
    grid_uniforms: np.ndarray,
    size: int,
    *,
    backend: BackendLike = None,
) -> np.ndarray:
    """Pure-array core of batched systematic inclusion sampling.

    Parameters
    ----------
    probabilities:
        ``(num_draws, num_keys)`` inclusion probabilities, each row summing
        (numerically) to ``size``.
    order_uniforms:
        ``(num_draws, num_keys)`` i.i.d. uniforms whose per-row argsort
        supplies the independent random key orderings.
    grid_uniforms:
        ``(num_draws, 1)`` uniform grid offsets.
    size:
        The common per-row set size.

    Returns the selected key positions, shape ``(num_draws, size)``, with
    distinct entries per row.  All randomness is pre-drawn by the caller
    (:func:`repro.scheduling.sampling.batch_systematic_inclusion_sample`),
    so the kernel is deterministic and identical across backends up to
    floating-point rounding.
    """
    probabilities = np.asarray(probabilities, dtype=float)
    num_draws, num_keys = probabilities.shape
    resolved = resolve_kernel_backend(backend)
    if resolved.native_numpy:
        order = np.argsort(order_uniforms, axis=1)
        shuffled = np.take_along_axis(probabilities, order, axis=1)
        cumulative = np.cumsum(shuffled, axis=1)
        # Rescale so each row's total is exactly `size` despite rounding.
        cumulative *= size / cumulative[:, -1:]
        grid = grid_uniforms + np.arange(size, dtype=float)
        # Flatten the per-row searchsorted: row r's values live in
        # (r*(size+1), r*(size+1)+size], its grid in [r*(size+1), ...+size).
        row_base = (np.arange(num_draws, dtype=float) * (size + 1))[:, None]
        flat_cumulative = (cumulative + row_base).ravel()
        flat_grid = (grid + row_base).ravel()
        flat_positions = np.searchsorted(flat_cumulative, flat_grid, side="right")
        positions = flat_positions.reshape(num_draws, size) - (
            np.arange(num_draws)[:, None] * num_keys
        )
        np.clip(positions, 0, num_keys - 1, out=positions)
        return np.take_along_axis(order, positions, axis=1)

    xp = resolved.xp
    probs = resolved.asarray(probabilities, float)
    order = xp.argsort(resolved.asarray(order_uniforms, float), axis=1)
    shuffled = _take_along_rows(xp, probs, order)
    if hasattr(xp, "cumulative_sum"):
        cumulative = xp.cumulative_sum(shuffled, axis=1)
    else:
        cumulative = xp.cumsum(shuffled, axis=1)
    cumulative = cumulative * (size / cumulative[:, -1:])
    grid = resolved.asarray(grid_uniforms, float) + resolved.asarray(
        np.arange(size, dtype=float), float
    )
    row_base = xp.reshape(
        resolved.asarray(np.arange(num_draws, dtype=float) * (size + 1), float),
        (num_draws, 1),
    )
    flat_cumulative = xp.reshape(cumulative + row_base, (-1,))
    flat_grid = xp.reshape(grid + row_base, (-1,))
    flat_positions = xp.searchsorted(flat_cumulative, flat_grid, side="right")
    positions = xp.reshape(flat_positions, (num_draws, size)) - xp.reshape(
        resolved.asarray(np.arange(num_draws), np.int64) * num_keys, (num_draws, 1)
    )
    positions = xp.clip(positions, 0, num_keys - 1)
    selected = _take_along_rows(xp, order, positions)
    return resolved.to_numpy(selected).astype(np.int64)


# ----------------------------------------------------------------------
# Epoch-segment folds
# ----------------------------------------------------------------------


def last_access_fold(
    positions: np.ndarray,
    *,
    backend: BackendLike = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Collapse a run of accesses into its per-object summary.

    Returns ``(unique_positions, counts, last_offsets)`` where
    ``unique_positions`` are the distinct object positions of the run
    ordered by *last* access (earliest last-access first), ``counts`` are
    the per-object access multiplicities and ``last_offsets`` the offset of
    each object's final access within the run.  Feeding the result to
    :meth:`ChunkCachingPolicy.touch_epoch` reproduces the final policy
    state of per-request processing for a pure hit run.
    """
    positions = np.asarray(positions)
    resolved = resolve_kernel_backend(backend)
    if resolved.native_numpy:
        unique, rev_first, counts = np.unique(
            positions[::-1], return_index=True, return_counts=True
        )
        last_offsets = positions.size - 1 - rev_first
        order = np.argsort(last_offsets)
        return unique[order], counts[order], last_offsets[order]
    xp = resolved.xp
    p = resolved.asarray(positions, np.int64)
    reversed_run = xp.flip(p)
    result = xp.unique_all(reversed_run)
    last_offsets = (int(positions.size) - 1) - result.indices
    order = xp.argsort(last_offsets)
    return (
        resolved.to_numpy(xp.take(result.values, order)).astype(positions.dtype),
        resolved.to_numpy(xp.take(result.counts, order)).astype(np.int64),
        resolved.to_numpy(xp.take(last_offsets, order)).astype(np.int64),
    )
