"""Array-API backend resolution for the shared queueing kernels.

Every kernel in :mod:`repro.kernels.queueing` is written twice over:

* a **NumPy fast path** that is byte-for-byte the inline implementation the
  simulation engines carried before the kernel layer existed (ufunc
  ``accumulate`` / ``reduceat`` scans, ``lexsort``), and
* a **portable path** written against the Python array-API standard
  (``cumulative_sum``, stable ``argsort``, ``searchsorted``, gathers via
  ``take`` instead of fancy-index scatters), used by every other backend.

A :class:`KernelBackend` bundles the resolved array namespace with the
capability flag that selects between the two paths, plus the boundary
converters (``asarray`` / ``to_numpy``): kernels accept NumPy arrays at the
edge, compute in the backend's namespace, and hand NumPy arrays back, so the
engines stay backend-agnostic.

Backends are *named* and live in the :data:`repro.api.registry.KERNEL_BACKENDS`
registry (``numpy`` always; ``array_api_strict``, ``cupy`` and ``jax`` when
importable), so they are selectable via ``Scenario(backend=...)``, the
experiments CLI ``--backend`` flag, or the ``REPRO_KERNEL_BACKEND``
environment variable.  Third-party namespaces register with
:func:`repro.api.registry.register_kernel_backend`.

This module deliberately imports nothing from :mod:`repro.api` at module
scope -- the registry is resolved lazily inside the lookup helpers -- so the
kernel layer can be imported by the engines without creating an import
cycle through the facade.
"""

from __future__ import annotations

import importlib
import importlib.util
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

import numpy as np

from repro.exceptions import RegistryError

#: Environment variable naming the process-wide default backend.
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"


@dataclass(frozen=True)
class KernelBackend:
    """A resolved kernel backend: array namespace plus capability flags.

    Attributes
    ----------
    name:
        Registry name of the backend (``"numpy"``, ``"array_api_strict"``...).
    xp:
        The array namespace the kernels compute in.
    native_numpy:
        Whether ``xp`` *is* NumPy, enabling the ufunc fast paths
        (``np.maximum.accumulate``, ``np.add.reduceat``, ``np.lexsort``)
        that the array-API standard has no equivalent for.
    to_host:
        Optional converter from a backend array to something
        ``np.asarray`` accepts (e.g. ``cupy.asnumpy``); when ``None`` the
        generic ``__array__`` / DLPack route is used.
    """

    name: str
    xp: Any
    native_numpy: bool = False
    to_host: Optional[Callable[[Any], Any]] = field(default=None, compare=False)

    # -- boundary converters -------------------------------------------

    def asarray(self, values: Any, dtype: Any = None) -> Any:
        """Convert ``values`` into this backend's array type."""
        if self.native_numpy:
            return np.asarray(values, dtype=dtype)
        if dtype is not None:
            dtype = getattr(self.xp, np.dtype(dtype).name)
        return self.xp.asarray(np.asarray(values), dtype=dtype)

    def to_numpy(self, array: Any) -> np.ndarray:
        """Convert a backend array back into a NumPy array."""
        if self.native_numpy:
            return np.asarray(array)
        if self.to_host is not None:
            return np.asarray(self.to_host(array))
        try:
            return np.asarray(array)
        except (TypeError, ValueError):
            # Strict array-API objects may refuse __array__; DLPack is the
            # standard's zero-copy escape hatch for CPU-resident data.
            return np.asarray(np.from_dlpack(array))


# ----------------------------------------------------------------------
# Built-in backend loaders (registered by repro.api.registry)
# ----------------------------------------------------------------------


def load_numpy_backend() -> KernelBackend:
    """NumPy reference backend (ufunc fast paths; always available)."""
    return KernelBackend(name="numpy", xp=np, native_numpy=True)


def load_array_api_strict_backend() -> KernelBackend:
    """array-api-strict conformance backend (portable paths only)."""
    xp = importlib.import_module("array_api_strict")
    return KernelBackend(name="array_api_strict", xp=xp)


def load_cupy_backend() -> KernelBackend:
    """CuPy GPU backend via its array-API-compatible namespace."""
    cupy = importlib.import_module("cupy")
    try:
        xp = importlib.import_module("array_api_compat.cupy")
    except ImportError:
        xp = cupy
    return KernelBackend(name="cupy", xp=xp, to_host=cupy.asnumpy)


def load_jax_backend() -> KernelBackend:
    """JAX backend via ``jax.numpy`` (immutable arrays; portable paths)."""
    jnp = importlib.import_module("jax.numpy")
    return KernelBackend(name="jax", xp=jnp)


def module_available(module_name: str) -> bool:
    """Whether ``module_name`` is importable (cheap ``find_spec`` probe)."""
    try:
        return importlib.util.find_spec(module_name) is not None
    except (ImportError, ValueError):
        return False


# ----------------------------------------------------------------------
# Active-backend state
# ----------------------------------------------------------------------

#: Resolved backends by name (a backend is loaded at most once).
_resolved: Dict[str, KernelBackend] = {}

#: Stack of backends activated via :func:`use_kernel_backend`.
_active: List[KernelBackend] = []

#: The process default (lazy; honours :data:`BACKEND_ENV_VAR` on first use).
_default: Optional[KernelBackend] = None

BackendLike = Union[None, str, KernelBackend]


def _registry():
    # Lazy: repro.api imports the engines, which import this module.
    from repro.api import registry

    return registry.KERNEL_BACKENDS


def resolve_kernel_backend(backend: BackendLike = None) -> KernelBackend:
    """Resolve ``backend`` (name, instance or ``None``) to a backend.

    ``None`` returns the active backend: the innermost
    :func:`use_kernel_backend` context if one is open, otherwise the
    process default (``numpy`` unless overridden by
    :func:`set_default_kernel_backend` or ``REPRO_KERNEL_BACKEND``).
    """
    if backend is None:
        return get_kernel_backend()
    if isinstance(backend, KernelBackend):
        return backend
    if backend not in _resolved:
        spec = _registry().get(backend)
        try:
            _resolved[backend] = spec.load()
        except ImportError as error:
            raise RegistryError(
                f"kernel backend {backend!r} is registered but failed to "
                f"import: {error}"
            ) from error
    return _resolved[backend]


def get_kernel_backend() -> KernelBackend:
    """The currently active kernel backend."""
    if _active:
        return _active[-1]
    global _default
    if _default is None:
        _default = resolve_kernel_backend(
            os.environ.get(BACKEND_ENV_VAR, "numpy")
        )
    return _default


def active_kernel_backend_name() -> str:
    """Name of the currently active kernel backend."""
    return get_kernel_backend().name


def set_default_kernel_backend(backend: BackendLike) -> KernelBackend:
    """Set (and return) the process-wide default kernel backend."""
    global _default
    _default = resolve_kernel_backend(backend)
    return _default


@contextmanager
def use_kernel_backend(backend: BackendLike) -> Iterator[KernelBackend]:
    """Context manager activating ``backend`` for the enclosed kernels.

    Nests: the innermost context wins, and the previous backend is
    restored on exit.  ``None`` re-activates the current backend (a
    no-op wrapper, convenient for optional ``backend=`` plumbing).
    """
    resolved = resolve_kernel_backend(backend)
    _active.append(resolved)
    try:
        yield resolved
    finally:
        _active.pop()
