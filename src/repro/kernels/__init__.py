"""Shared array-API queueing kernels with pluggable backends.

This package is the single home of the vectorised queueing primitives the
simulation and replay engines previously each carried inline:

* :mod:`repro.kernels.queueing` -- the kernels themselves (Lindley FIFO
  departure scans, grouped per-OSD queues, interleaved constant-service
  SSD lanes, segmented fork-join reductions, batched systematic sampling,
  epoch-segment folds).
* :mod:`repro.kernels.backends` -- backend resolution: a
  :class:`KernelBackend` bundles an array namespace with the capability
  flags that pick between the bit-exact NumPy fast path and the portable
  array-API path.

Backend selection::

    from repro.kernels import use_kernel_backend, lindley_departures

    with use_kernel_backend("array_api_strict"):
        departures = lindley_departures(arrivals, services)

or per call via ``backend=``, process-wide via
:func:`set_default_kernel_backend` / the ``REPRO_KERNEL_BACKEND``
environment variable, and per run via ``Scenario(backend=...)`` or the
experiments CLI ``--backend`` flag.
"""

from repro.kernels.backends import (
    BACKEND_ENV_VAR,
    BackendLike,
    KernelBackend,
    active_kernel_backend_name,
    get_kernel_backend,
    module_available,
    resolve_kernel_backend,
    set_default_kernel_backend,
    use_kernel_backend,
)
from repro.kernels.queueing import (
    fifo_departures_grouped,
    fork_join_max,
    last_access_fold,
    lindley_departures,
    multi_server_departures,
    segment_max,
    segment_sum,
    systematic_sample_positions,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "BackendLike",
    "KernelBackend",
    "active_kernel_backend_name",
    "get_kernel_backend",
    "module_available",
    "resolve_kernel_backend",
    "set_default_kernel_backend",
    "use_kernel_backend",
    "fifo_departures_grouped",
    "fork_join_max",
    "last_access_fold",
    "lindley_departures",
    "multi_server_departures",
    "segment_max",
    "segment_sum",
    "systematic_sample_positions",
]
