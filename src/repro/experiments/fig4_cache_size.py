"""Fig. 4: average latency versus cache size.

The paper sweeps the cache size of the default 1000-file model from 0 to
4000 chunks (4000 = every file keeps all four of its chunks in the cache)
and plots the optimized average latency: it decreases convexly and reaches
(approximately) zero at 4000 chunks, showing diminishing returns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.api.deprecation import deprecated_entry_point
from repro.api.experiments import register_experiment
from repro.core.algorithm import CacheOptimizer
from repro.core.bound import SolutionState
from repro.core.vectorized import VectorizedSystem
from repro.exec import ProgressLike, sweep_scan
from repro.workloads.defaults import paper_default_model


@dataclass
class CacheSizePoint:
    """One point of the latency-vs-cache-size curve."""

    cache_size: int
    latency: float
    cached_chunks: int


@dataclass
class Fig4Result:
    """The full latency-vs-cache-size sweep."""

    points: List[CacheSizePoint] = field(default_factory=list)
    num_files: int = 0

    def latencies(self) -> List[float]:
        """Latency series in sweep order."""
        return [point.latency for point in self.points]

    def is_nonincreasing(self, tolerance: float = 1e-6) -> bool:
        """Whether latency never increases as the cache grows."""
        series = self.latencies()
        return all(b <= a + tolerance for a, b in zip(series, series[1:]))


@deprecated_entry_point("fig4")
@register_experiment(
    "fig4",
    title="Latency vs cache size (Fig. 4)",
    description="converged latency bound as the cache grows from 0 to full",
    scales={"fast": {"num_files": 100}},
)
def run(
    cache_sizes: Optional[Sequence[int]] = None,
    num_files: int = 1000,
    seed: int = 2016,
    tolerance: float = 0.01,
    pi_max_iterations: int = 80,
    rounding_fraction: float = 0.3,
    progress: ProgressLike = None,
) -> Fig4Result:
    """Run the Fig. 4 cache-size sweep.

    ``cache_sizes`` defaults to 0..4k in steps of k/2 files' worth of chunks
    scaled to ``num_files`` (so a 100-file run sweeps 0..400).  Each size
    warm-starts from the previous converged solution, so the sweep is a
    sequential ``sweep_scan``, never a parallel fan-out.
    """
    if cache_sizes is None:
        full_cache = 4 * num_files
        step = max(full_cache // 8, 1)
        cache_sizes = list(range(0, full_cache + 1, step))
    base_model = paper_default_model(
        num_files=num_files, cache_capacity=0, seed=seed
    )

    def solve_size(cache_size, carry):
        warm_start, system = carry if carry is not None else (None, None)
        # One model instance and one compiled system serve the whole sweep:
        # only the cache capacity changes between the points.
        model = base_model.copy_with_cache_capacity(cache_size)
        optimizer = CacheOptimizer(
            model,
            tolerance=tolerance,
            pi_max_iterations=pi_max_iterations,
            rounding_fraction=rounding_fraction,
            system=system,
        )
        outcome = optimizer.optimize(initial_state=warm_start)
        placement = outcome.placement
        point = CacheSizePoint(
            cache_size=cache_size,
            latency=placement.objective,
            cached_chunks=placement.total_cached_chunks,
        )
        next_start = SolutionState(
            probabilities=[
                dict(entry.scheduling_probabilities) for entry in placement.files
            ],
            z_values=[0.0] * model.num_files,
        )
        return point, (next_start, optimizer.system)

    points = sweep_scan(
        solve_size, list(cache_sizes), label="fig4", progress=progress
    )
    return Fig4Result(points=points, num_files=num_files)


def format_result(result: Fig4Result) -> str:
    """Render the sweep as the rows behind Fig. 4."""
    lines = [
        f"Fig. 4 -- average latency vs cache size (r={result.num_files} files)",
        f"{'C (chunks)':>12} {'avg latency (s)':>16} {'chunks cached':>14}",
    ]
    for point in result.points:
        lines.append(
            f"{point.cache_size:>12} {point.latency:>16.3f} {point.cached_chunks:>14}"
        )
    lines.append(
        "latency non-increasing in cache size: "
        f"{result.is_nonincreasing()} (paper: convex decreasing to ~0)"
    )
    return "\n".join(lines)
