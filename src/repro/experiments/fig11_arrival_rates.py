"""Fig. 11: average access latency vs workload intensity, optimal vs LRU.

The object size is fixed at 64 MB (1000 objects, 10 GB cache) and the
aggregate read arrival rate is swept over 0.5, 1.0, 2.0, 4.0 and 8.0
requests per second.  The paper reports that the optimized functional
caching beats the LRU cache tier at every intensity, by roughly 24% on
average, with the absolute gap widening as the load grows.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.api.deprecation import deprecated_entry_point
from repro.api.experiments import register_experiment
from repro.cluster.cluster import CephLikeCluster, ClusterConfig
from repro.core.algorithm import CacheOptimizer
from repro.exec import CacheLike, ProgressLike, sweep_map
from repro.experiments._sweep import dataclass_codec, experiment_cache_key
from repro.experiments.fig10_object_sizes import _analytical_model
from repro.simulation.simulator import SimulationConfig, StorageSimulator
from repro.workloads.traces import aggregate_rate_to_per_object


@dataclass
class ArrivalRateComparison:
    """Latency comparison at one aggregate arrival rate."""

    aggregate_rate: float
    optimal_latency_ms: float
    baseline_latency_ms: float
    analytical_bound_ms: float
    chunks_cached: int
    simulated_latency_ms: Optional[float] = None

    @property
    def improvement(self) -> float:
        """Relative latency reduction of optimal caching vs the baseline."""
        if self.baseline_latency_ms <= 0:
            return 0.0
        return 1.0 - self.optimal_latency_ms / self.baseline_latency_ms


@dataclass
class Fig11Result:
    """Comparisons for every tested workload intensity."""

    comparisons: List[ArrivalRateComparison] = field(default_factory=list)
    object_size_mb: int = 64
    num_objects: int = 0
    cache_capacity_mb: int = 0

    def mean_improvement(self) -> float:
        """Average relative improvement across the intensities."""
        if not self.comparisons:
            return 0.0
        return float(np.mean([c.improvement for c in self.comparisons]))

    def latencies_increase_with_load(self) -> bool:
        """Whether both curves are non-decreasing in the arrival rate."""
        optimal = [c.optimal_latency_ms for c in self.comparisons]
        baseline = [c.baseline_latency_ms for c in self.comparisons]
        non_decreasing = lambda series: all(  # noqa: E731 - tiny local helper
            b >= a * 0.95 for a, b in zip(series, series[1:])
        )
        return non_decreasing(optimal) and non_decreasing(baseline)


def run_for_rate(
    aggregate_rate: float,
    object_size_mb: int = 64,
    num_objects: int = 1000,
    cache_capacity_mb: int = 10 * 1024,
    duration_s: float = 1800.0,
    seed: int = 2016,
    tolerance: float = 0.5,
    rate_divisor: float = 1.0,
    simulate: bool = False,
    engine: str = "batch",
    baseline_policy: str = "lru",
) -> ArrivalRateComparison:
    """Run the Fig. 11 comparison for one aggregate arrival rate.

    Parameters
    ----------
    rate_divisor:
        Optional scaling knob that divides every arrival rate, useful for
        quick runs on very small emulated clusters.  With the default of 1
        the paper's aggregate rates are used verbatim; 64 MB objects have
        16 MB chunks (about 148 ms per read, Table IV), so even the highest
        sweep point keeps the 12 single-queue OSDs inside their stability
        region while clearly showing queueing growth with load.
    simulate:
        Also replay the optimized placement through the fork-join storage
        simulator (``engine`` selects the event or batch engine) and record
        the simulated mean latency as a cross-check of the analytical bound.
    """
    arrival_rates = aggregate_rate_to_per_object(
        aggregate_rate / rate_divisor, num_objects
    )
    config = ClusterConfig(
        object_size_mb=object_size_mb,
        cache_capacity_mb=cache_capacity_mb,
        seed=seed,
    )

    cluster_optimal = CephLikeCluster(config)
    model = _analytical_model(cluster_optimal, arrival_rates, config)
    optimizer = CacheOptimizer(model, tolerance=tolerance)
    placement = optimizer.optimize().placement
    object_pool_map = placement.cached_chunks()

    cluster_optimal.setup_optimal_caching(object_pool_map)
    optimal_result = cluster_optimal.run_read_benchmark(
        arrival_rates, duration_s, mode="optimal", seed=seed
    )

    cluster_baseline = CephLikeCluster(config)
    cluster_baseline.setup_baseline(sorted(arrival_rates), policy=baseline_policy)
    baseline_result = cluster_baseline.run_read_benchmark(
        arrival_rates, duration_s, mode="baseline", seed=seed
    )

    simulated_latency: Optional[float] = None
    if simulate:
        simulator = StorageSimulator(model, placement, engine=engine)
        sim_config = SimulationConfig(
            horizon=duration_s * 1000.0,
            seed=seed,
            warmup=duration_s * 100.0,
        )
        simulated_latency = simulator.run(sim_config).mean_latency()

    return ArrivalRateComparison(
        aggregate_rate=aggregate_rate,
        optimal_latency_ms=optimal_result.mean_latency_ms(),
        baseline_latency_ms=baseline_result.mean_latency_ms(),
        analytical_bound_ms=placement.objective,
        chunks_cached=placement.total_cached_chunks,
        simulated_latency_ms=simulated_latency,
    )


@deprecated_entry_point("fig11")
@register_experiment(
    "fig11",
    title="Latency vs workload intensity, optimal vs LRU (Fig. 11)",
    description="emulated-cluster latency across the aggregate rate sweep, both tiers",
    scales={
        "fast": {
            "aggregate_rates": (0.5, 1.0, 2.0),
            "num_objects": 200,
            "duration_s": 600.0,
        }
    },
)
def run(
    aggregate_rates: Sequence[float] = (0.5, 1.0, 2.0, 4.0, 8.0),
    object_size_mb: int = 64,
    num_objects: int = 1000,
    cache_capacity_mb: int = 10 * 1024,
    duration_s: float = 1800.0,
    seed: int = 2016,
    rate_divisor: float = 1.0,
    simulate: bool = False,
    engine: str = "batch",
    baseline_policy: str = "lru",
    jobs: Optional[int] = None,
    cache: CacheLike = None,
    progress: ProgressLike = None,
) -> Fig11Result:
    """Run the full Fig. 11 workload-intensity sweep.

    The rate points are independent, so the sweep fans out over
    ``sweep_map`` (``jobs`` workers, bit-equal to serial) and each
    point's comparison can be served from the result cache.
    """
    params = {
        "object_size_mb": object_size_mb,
        "num_objects": num_objects,
        "cache_capacity_mb": cache_capacity_mb,
        "duration_s": duration_s,
        "seed": seed,
        "rate_divisor": rate_divisor,
        "simulate": simulate,
        "engine": engine,
        "baseline_policy": baseline_policy,
    }
    encode, decode = dataclass_codec(ArrivalRateComparison)
    comparisons = sweep_map(
        functools.partial(run_for_rate, **params),
        list(aggregate_rates),
        jobs=jobs,
        label="fig11",
        progress=progress,
        cache=cache,
        cache_key=experiment_cache_key("fig11", params),
        encode=encode,
        decode=decode,
    )
    return Fig11Result(
        comparisons=comparisons,
        object_size_mb=object_size_mb,
        num_objects=num_objects,
        cache_capacity_mb=cache_capacity_mb,
    )


@dataclass
class EngineSpeedup:
    """Timing comparison of the two simulation engines on one workload."""

    aggregate_rate: float
    num_objects: int
    requests: int
    event_seconds: float
    batch_seconds: float
    event_mean_latency_ms: float
    batch_mean_latency_ms: float

    @property
    def speedup(self) -> float:
        """Wall-clock speedup of the batch engine over the event engine."""
        if self.batch_seconds <= 0:
            return float("inf")
        return self.event_seconds / self.batch_seconds

    @property
    def latency_relative_gap(self) -> float:
        """Relative difference of the two engines' mean latencies."""
        if self.event_mean_latency_ms <= 0:
            return 0.0
        return abs(
            self.batch_mean_latency_ms - self.event_mean_latency_ms
        ) / self.event_mean_latency_ms

    def requests_per_second(self, engine: str) -> float:
        """Simulated requests processed per wall-clock second."""
        seconds = self.event_seconds if engine == "event" else self.batch_seconds
        if seconds <= 0:
            return float("inf")
        return self.requests / seconds


def measure_engine_speedup(
    aggregate_rate: float = 8.0,
    object_size_mb: int = 64,
    num_objects: int = 400,
    cache_capacity_mb: int = 10 * 1024,
    duration_s: float = 1800.0,
    seed: int = 2016,
    tolerance: float = 0.5,
) -> EngineSpeedup:
    """Time the event vs batch engines on the Fig. 11 simulation workload.

    Builds the same analytical model Fig. 11 optimizes, then replays the
    optimized placement through both simulation engines under identical
    configurations and reports wall-clock times and mean latencies.  Used by
    the benchmark suite to track the batch-engine speedup across revisions.
    """
    arrival_rates = aggregate_rate_to_per_object(aggregate_rate, num_objects)
    config = ClusterConfig(
        object_size_mb=object_size_mb,
        cache_capacity_mb=cache_capacity_mb,
        seed=seed,
    )
    cluster = CephLikeCluster(config)
    model = _analytical_model(cluster, arrival_rates, config)
    placement = CacheOptimizer(model, tolerance=tolerance).optimize().placement
    sim_config = SimulationConfig(
        horizon=duration_s * 1000.0,
        seed=seed,
        warmup=duration_s * 100.0,
    )

    start = time.perf_counter()
    event_result = StorageSimulator(model, placement, engine="event").run(sim_config)
    event_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batch_result = StorageSimulator(model, placement, engine="batch").run(sim_config)
    batch_seconds = time.perf_counter() - start

    return EngineSpeedup(
        aggregate_rate=aggregate_rate,
        num_objects=num_objects,
        requests=event_result.requests_completed,
        event_seconds=event_seconds,
        batch_seconds=batch_seconds,
        event_mean_latency_ms=event_result.mean_latency(),
        batch_mean_latency_ms=batch_result.mean_latency(),
    )


def format_result(result: Fig11Result) -> str:
    """Render the latency-vs-intensity comparison of Fig. 11."""
    lines = [
        "Fig. 11 -- average access latency vs aggregate arrival rate "
        f"({result.num_objects} x {result.object_size_mb} MB objects, "
        f"cache = {result.cache_capacity_mb} MB)",
        f"{'rate (req/s)':>13} {'optimal (ms)':>13} {'baseline (ms)':>14} "
        f"{'bound (ms)':>11} {'improvement':>12}",
    ]
    for comparison in result.comparisons:
        lines.append(
            f"{comparison.aggregate_rate:>13.2f} "
            f"{comparison.optimal_latency_ms:>13.1f} "
            f"{comparison.baseline_latency_ms:>14.1f} "
            f"{comparison.analytical_bound_ms:>11.1f} "
            f"{comparison.improvement:>11.1%}"
        )
    lines.append(
        f"mean improvement of optimal caching over LRU: "
        f"{result.mean_improvement():.1%} (paper: ~23.86%)"
    )
    return "\n".join(lines)
