"""Fig. 7: chunk requests served from cache vs storage per time slot.

The experiment runs 1000 objects of 200 MB (chunk size 50 MB under a (7,4)
code) with a 62.5 GB cache (1250 chunks), under two per-object arrival
rates (0.0225/s and 0.0384/s).  A 100-second time bin is divided into twenty
5-second slots and the number of chunk requests sent to the cache and to the
storage nodes is counted in every slot.  Because every object has the same
arrival rate, the fraction of chunks served from the cache is governed by
the cache-to-data ratio (1250 cached chunks out of 4000 total, roughly a
third), which is the ~33% the paper reports for both workloads; the absolute
counts scale with the arrival rate.

Note that the chunk *counts* depend only on the arrival process and the
cache allocation, not on the service times, so the figure's shape is
insensitive to how loaded the storage nodes are; the OSD service times used
here are the Table-IV measurements for the nearest chunk size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.api.deprecation import deprecated_entry_point
from repro.api.experiments import register_experiment
from repro.cluster.devices import hdd_service_for_chunk_size, nearest_measured_chunk_size
from repro.core.algorithm import CacheOptimizer
from repro.core.model import FileSpec, StorageSystemModel
from repro.simulation.simulator import SimulationConfig, StorageSimulator


@dataclass
class SlotSeries:
    """Per-slot chunk counts for one arrival rate."""

    per_object_rate: float
    slots: List[Dict[str, float]] = field(default_factory=list)
    cache_fraction: float = 0.0
    expected_cache_fraction: float = 0.0


@dataclass
class Fig7Result:
    """Slot series for every arrival rate tested."""

    series: List[SlotSeries] = field(default_factory=list)
    num_objects: int = 0
    cache_capacity_chunks: int = 0


def _build_model(
    num_objects: int,
    cache_capacity_chunks: int,
    per_object_rate: float,
    chunk_size_mb: int,
    seed: int,
) -> StorageSystemModel:
    n, k = 7, 4
    num_nodes = 12
    rng = np.random.default_rng(seed)
    measured_size = nearest_measured_chunk_size(chunk_size_mb)
    service = hdd_service_for_chunk_size(measured_size)
    services = [service for _ in range(num_nodes)]
    files = []
    for index in range(num_objects):
        placement = [int(x) for x in rng.choice(num_nodes, size=n, replace=False)]
        files.append(
            FileSpec(
                file_id=f"obj-{index}",
                n=n,
                k=k,
                placement=placement,
                arrival_rate=per_object_rate,
                chunk_size=chunk_size_mb,
            )
        )
    return StorageSystemModel(
        services=services, files=files, cache_capacity=cache_capacity_chunks
    )


@deprecated_entry_point("fig7")
@register_experiment(
    "fig7",
    title="Cache vs storage chunk scheduling (Fig. 7)",
    description="simulated per-slot chunk counts served from cache vs storage",
    scales={"fast": {"num_objects": 200, "cache_capacity_chunks": 250}},
)
def run(
    per_object_rates: Sequence[float] = (0.0225, 0.0384),
    num_objects: int = 1000,
    cache_capacity_chunks: int = 1250,
    time_bin_length: float = 100.0,
    slot_length: float = 5.0,
    chunk_size_mb: int = 50,
    seed: int = 2016,
    tolerance: float = 0.05,
    engine: str = "batch",
) -> Fig7Result:
    """Run the Fig. 7 chunk-scheduling experiment.

    Service times are in milliseconds (Table-IV scale) while arrivals are in
    seconds, matching the testbed set-up the figure comes from.  The
    simulation defaults to the vectorised batch engine; pass
    ``engine="event"`` for the per-arrival discrete-event loop.
    """
    result = Fig7Result(
        num_objects=num_objects, cache_capacity_chunks=cache_capacity_chunks
    )
    for per_object_rate in per_object_rates:
        # The model works in one consistent time unit.  Table-IV service
        # times are in milliseconds, so arrival rates are converted to
        # requests per millisecond and the horizon / slot length to ms.
        model = _build_model(
            num_objects,
            cache_capacity_chunks,
            per_object_rate / 1000.0,
            chunk_size_mb,
            seed,
        )
        optimizer = CacheOptimizer(model, tolerance=tolerance)
        placement = optimizer.optimize().placement
        simulator = StorageSimulator(model, placement, engine=engine)
        config = SimulationConfig(
            horizon=time_bin_length * 1000.0,
            seed=seed,
            slot_length=slot_length * 1000.0,
        )
        sim_result = simulator.run(config)
        slot_counter = sim_result.slot_counter
        expected_fraction = cache_capacity_chunks / (4.0 * num_objects)
        series = SlotSeries(
            per_object_rate=per_object_rate,
            slots=slot_counter.as_rows() if slot_counter is not None else [],
            cache_fraction=sim_result.cache_chunk_fraction(),
            expected_cache_fraction=expected_fraction,
        )
        result.series.append(series)
    return result


def format_result(result: Fig7Result) -> str:
    """Render the per-slot cache/storage chunk counts."""
    lines = [
        "Fig. 7 -- chunk requests served from cache vs storage per 5-s slot "
        f"({result.num_objects} objects, cache = {result.cache_capacity_chunks} chunks)"
    ]
    for series in result.series:
        lines.append(
            f"per-object arrival rate {series.per_object_rate}: cache fraction = "
            f"{series.cache_fraction:.1%} "
            f"(cache/data ratio = {series.expected_cache_fraction:.1%}, paper: ~33%)"
        )
        lines.append(f"{'slot':>5} {'cache chunks':>13} {'storage chunks':>15}")
        for row in series.slots:
            lines.append(
                f"{int(row['slot']):>5} {int(row['cache_chunks']):>13} "
                f"{int(row['storage_chunks']):>15}"
            )
    return "\n".join(lines)
