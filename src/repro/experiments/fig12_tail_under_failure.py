"""Fig. 12: tail latency under OSD failures, functional caching vs baselines.

The failure-suite companion of Fig. 11: the same emulated cluster replays
the same Poisson read trace while a seeded ``osd_crash`` schedule takes
OSDs down at increasing crash rates.  Reads whose preferred chunks land on
a crashed OSD re-route through CRUSH to surviving OSDs with the k-of-n
repair fan-out, so every crash both widens the per-read fan-out and
removes a server -- the tail (p99/p99.9) degrades much faster than the
mean.  Three cache configurations are compared:

* ``functional`` -- the optimized static functional allocation (Algorithm
  1 on the matching analytical model),
* ``static`` -- the uniform round-robin functional allocation,
* ``lru`` -- the Ceph-like LRU cache tier.

The cached chunks shield reads from the storage tier entirely, so the
configurations separate most visibly at the tail under failures.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.experiments import register_experiment
from repro.cluster.cluster import ClusterConfig
from repro.cluster.replay import ClusterReplay, ReplayTrace
from repro.core.algorithm import CacheOptimizer
from repro.exec import CacheLike, ProgressLike, sweep_map
from repro.experiments._sweep import dataclass_codec, experiment_cache_key
from repro.experiments.fig10_object_sizes import _analytical_model
from repro.policies.functional import StaticFunctionalPolicy
from repro.workloads.catalog import aggregate_rate_to_per_object


@dataclass
class TailPoint:
    """Tail statistics of one (crash rate, cache configuration) replay."""

    crash_rate: float
    policy: str
    mean_ms: float
    p99_ms: float
    p999_ms: float
    served: int
    degraded_reads: int
    failed_reads: int


@dataclass
class Fig12Result:
    """Tail-latency sweep over crash rates for every cache configuration."""

    points: List[TailPoint] = field(default_factory=list)
    crash_rates: Sequence[float] = ()
    policies: Sequence[str] = ()
    num_objects: int = 0
    duration_s: float = 0.0
    downtime_ms: float = 0.0

    def points_for(self, policy: str) -> List[TailPoint]:
        """The policy's points in crash-rate order."""
        return sorted(
            (point for point in self.points if point.policy == policy),
            key=lambda point: point.crash_rate,
        )

    def tail_inflation(self, policy: str) -> float:
        """p99 at the highest crash rate over p99 when healthy."""
        points = self.points_for(policy)
        if len(points) < 2 or points[0].p99_ms <= 0:
            return 1.0
        return points[-1].p99_ms / points[0].p99_ms


def _resolve_policy(policy: str, allocation: Optional[Dict[str, int]]):
    """The cache-policy factory of one configuration, picklable for pool
    dispatch (``functools.partial`` of the policy class, never a closure)."""
    if policy == "functional":
        return functools.partial(StaticFunctionalPolicy, allocation=allocation)
    if policy == "static":
        return StaticFunctionalPolicy
    return policy


def run_tail_point(
    point: Tuple[float, str],
    config: ClusterConfig,
    object_names: Sequence[str],
    trace: ReplayTrace,
    allocation: Optional[Dict[str, int]],
    engine: str,
    seed: int,
    downtime_ms: float,
) -> TailPoint:
    """Replay one (crash rate, cache configuration) grid point.

    Each point rebuilds its ``ClusterReplay`` from the shared config --
    construction is deterministic and ``run`` builds a fresh policy per
    replay, so per-point reconstruction is bit-equal to the old shared
    per-policy replays while keeping the grid embarrassingly parallel.
    """
    crash_rate, policy = point
    replay = ClusterReplay(
        config, list(object_names), policy=_resolve_policy(policy, allocation)
    )
    outcome = replay.run(
        trace,
        engine=engine,
        seed=seed + 1,
        faults="osd_crash",
        fault_params={
            "crash_rate": float(crash_rate),
            "downtime_ms": float(downtime_ms),
        },
    )
    return TailPoint(
        crash_rate=float(crash_rate),
        policy=policy,
        mean_ms=outcome.mean_latency_ms(),
        p99_ms=outcome.percentile_ms(99.0),
        p999_ms=outcome.percentile_ms(99.9),
        served=outcome.served,
        degraded_reads=outcome.degraded_reads,
        failed_reads=outcome.failed_reads,
    )


@register_experiment(
    "fig12",
    title="Tail latency under OSD failures (Fig. 12)",
    description="p99/p99.9 vs crash rate, functional vs static vs LRU",
    scales={
        "fast": {
            "crash_rates": (0.0, 2e-5, 1e-4),
            "num_objects": 80,
            "cache_capacity_mb": 1024,
            "duration_s": 240.0,
        }
    },
)
def run(
    crash_rates: Sequence[float] = (0.0, 5e-6, 2e-5, 1e-4),
    num_objects: int = 200,
    aggregate_rate: float = 4.0,
    duration_s: float = 600.0,
    cache_capacity_mb: int = 2 * 1024,
    downtime_ms: float = 60_000.0,
    object_size_mb: int = 64,
    seed: int = 2016,
    tolerance: float = 0.5,
    engine: str = "epoch",
    policies: Sequence[str] = ("functional", "static", "lru"),
    jobs: Optional[int] = None,
    cache: CacheLike = None,
    progress: ProgressLike = None,
) -> Fig12Result:
    """Sweep OSD crash rates and record the tail per cache configuration.

    All configurations replay the *same* seeded trace under the *same*
    seeded fault schedule, so the only varying factor per crash rate is
    the cache; ``crash_rate`` is per OSD per second and ``downtime_ms``
    the repair time, so ``crash_rate * downtime_ms / 1000`` is each OSD's
    expected unavailability fraction.  The (crash rate x policy) grid is
    embarrassingly parallel and fans out over ``sweep_map``.
    """
    arrival_rates = aggregate_rate_to_per_object(aggregate_rate, num_objects)
    config = ClusterConfig(
        object_size_mb=object_size_mb,
        cache_capacity_mb=cache_capacity_mb,
        seed=seed,
    )
    trace = ReplayTrace.from_rates(arrival_rates, duration_s, seed=seed + 101)

    allocation: Optional[Dict[str, int]] = None
    if "functional" in policies:
        from repro.cluster.cluster import CephLikeCluster

        model = _analytical_model(CephLikeCluster(config), arrival_rates, config)
        placement = CacheOptimizer(model, tolerance=tolerance).optimize().placement
        allocation = placement.cached_chunks()

    grid = [
        (float(crash_rate), policy)
        for crash_rate in crash_rates
        for policy in policies
    ]
    key_params = {
        "num_objects": num_objects,
        "aggregate_rate": aggregate_rate,
        "duration_s": duration_s,
        "cache_capacity_mb": cache_capacity_mb,
        "downtime_ms": downtime_ms,
        "object_size_mb": object_size_mb,
        "seed": seed,
        "tolerance": tolerance,
        "engine": engine,
    }
    encode, decode = dataclass_codec(TailPoint)
    points = sweep_map(
        functools.partial(
            run_tail_point,
            config=config,
            object_names=sorted(arrival_rates),
            trace=trace,
            allocation=allocation,
            engine=engine,
            seed=seed,
            downtime_ms=downtime_ms,
        ),
        grid,
        jobs=jobs,
        label="fig12",
        progress=progress,
        cache=cache,
        cache_key=experiment_cache_key("fig12", key_params),
        encode=encode,
        decode=decode,
    )
    return Fig12Result(
        points=points,
        crash_rates=tuple(crash_rates),
        policies=tuple(policies),
        num_objects=num_objects,
        duration_s=duration_s,
        downtime_ms=downtime_ms,
    )


def format_result(result: Fig12Result) -> str:
    """Render the tail-latency sweep as a per-crash-rate table."""
    lines = [
        "Fig. 12 -- tail latency vs OSD crash rate "
        f"({result.num_objects} objects, {result.duration_s:.0f} s replay, "
        f"downtime {result.downtime_ms / 1000.0:.0f} s)",
        f"{'crash rate':>11} {'policy':>11} {'mean (ms)':>10} {'p99 (ms)':>10} "
        f"{'p99.9 (ms)':>11} {'degraded':>9} {'failed':>7}",
    ]
    for crash_rate in result.crash_rates:
        for point in result.points:
            if point.crash_rate != crash_rate:
                continue
            lines.append(
                f"{point.crash_rate:>11.1e} {point.policy:>11} "
                f"{point.mean_ms:>10.1f} {point.p99_ms:>10.1f} "
                f"{point.p999_ms:>11.1f} {point.degraded_reads:>9d} "
                f"{point.failed_reads:>7d}"
            )
    for policy in result.policies:
        lines.append(
            f"p99 inflation ({policy}): {result.tail_inflation(policy):.2f}x "
            "from healthy to the highest crash rate"
        )
    return "\n".join(lines)
