"""Module entry point: ``python -m repro.experiments <experiment>``."""

import sys

from repro.experiments.runner import main

if __name__ == "__main__":
    sys.exit(main())
