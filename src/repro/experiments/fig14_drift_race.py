"""Fig. 14 (extension): the drift race -- online controller vs baselines.

The paper re-optimizes at every time-bin boundary but leaves open *how* a
deployed system would notice the boundary and afford the re-solve (the
Section VI future-work note).  This experiment races three strategies over
the same non-stationary request stream:

* **online** -- the :class:`~repro.control.controller.OnlineController`:
  streaming drift detection, warm-started re-solves, bounded churn;
* **cold** -- the same drift trigger, but every re-solve starts from
  scratch (the per-bin Algorithm-1 discipline of the paper, made online);
* **static** -- the bootstrap placement held fixed for the whole run (what
  a system that never re-optimizes would serve).

All three arms see the same sampled stream, so the warm and cold arms open
the same bins.  Each bin's frozen measured rates then score every arm: the
arm's scheduling probabilities are evaluated under those rates on a shared
:class:`~repro.core.vectorized.VectorizedSystem`, giving the analytic
latency bound each strategy actually tracked through the drift.  The race
reports that tracked bound next to the per-bin re-solve cost, which is the
trade the controller exists to win: cold quality at warm cost.

The paper's operating point for the re-solve deadline is one time bin;
:data:`PAPER_BIN_WIDTH_S` records the width the benchmark gate holds the
steady-state warm re-solve of a 10^5-file system against.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.api.experiments import register_experiment
from repro.api.registry import CONTROLLERS, WORKLOADS
from repro.api.scenario import Scenario
from repro.control import OnlineController
from repro.core.vectorized import VectorizedSystem
from repro.exec import ProgressLike, sweep_map

#: The fig14 time-bin width (seconds): the re-solve deadline an online
#: controller must meet for the paper's per-bin discipline to be viable.
#: The online-resolve benchmark gates the steady-state warm re-solve of a
#: 10^5-file system against this width.
PAPER_BIN_WIDTH_S = 300.0


@dataclass
class ArmResult:
    """One strategy's trajectory through the race."""

    name: str
    num_bins: int = 0
    num_drift_events: int = 0
    solve_seconds: List[float] = field(default_factory=list)
    objectives: List[float] = field(default_factory=list)  # tracked bound/bin
    relaxed_objectives: List[float] = field(default_factory=list)
    dropped_chunks: int = 0
    added_chunks: int = 0
    deferred_chunks: int = 0
    fallbacks: int = 0

    @property
    def mean_objective(self) -> float:
        """Mean tracked latency bound across the scored bins."""
        return float(np.mean(self.objectives)) if self.objectives else float("nan")

    @property
    def total_solve_seconds(self) -> float:
        """Total wall-clock spent re-solving."""
        return float(np.sum(self.solve_seconds))

    def mean_resolve_seconds(self) -> float:
        """Mean per-bin re-solve cost, bootstrap excluded."""
        tail = self.solve_seconds[1:]
        return float(np.mean(tail)) if tail else 0.0


@dataclass
class Fig14Result:
    """Outcome of the drift race."""

    workload: str
    num_files: int
    cache_capacity: int
    duration: float
    num_requests: int
    churn_budget: Optional[int]
    arms: Dict[str, ArmResult] = field(default_factory=dict)
    bin_times: List[float] = field(default_factory=list)
    #: Max relative warm/cold relaxed-objective gap across coinciding bins.
    #: This measures trajectory divergence (each arm alternates its own z),
    #: NOT the warm-start parity guarantee -- that is gated at shared
    #: carried z by the online-resolve benchmark.
    relaxed_gap: float = 0.0
    warm_speedup: float = float("nan")  # cold / warm mean re-solve seconds

    def arm(self, name: str) -> ArmResult:
        """One arm's trajectory by name."""
        return self.arms[name]


def _evaluate(system: VectorizedSystem, pi: np.ndarray, rates: np.ndarray) -> float:
    """The analytic latency bound of ``pi`` under ``rates``."""
    system.set_arrival_rates(rates)
    return float(system.objective(pi, system.optimal_z(pi)))


def _run_arm(
    arm: str,
    model: Any,
    stream: Any,
    num_chunks: int,
    controller: Optional[str],
    controller_params: Optional[Dict[str, object]],
    controller_knobs: Dict[str, Any],
) -> Dict[str, Any]:
    """Run one race arm (the primary controller or the cold baseline).

    The two arms consume the same pre-sampled stream independently, so
    they fan out over ``sweep_map``; each worker builds its controller
    from the shared model.
    """
    if arm == "primary":
        spec = CONTROLLERS.get(controller or "online")
        accepted = spec.accepted_params()
        build_params = {
            key: value
            for key, value in controller_knobs.items()
            if accepted is None or key in accepted
        }
        build_params.update(dict(controller_params or {}))
        spec.validate_params(build_params)
        built_controller = spec.build(model, **build_params)
        return {
            "name": spec.name,
            "run": built_controller.run(stream, num_chunks=num_chunks),
            "churn_budget": built_controller.planner.churn_budget,
        }
    built_controller = OnlineController(model, warm=False, **controller_knobs)
    return {
        "name": "cold",
        "run": built_controller.run(stream, num_chunks=num_chunks),
        "churn_budget": None,
    }


@register_experiment(
    "fig14",
    title="Drift race: online controller vs cold re-solve vs static (Fig. 14)",
    scales={
        "fast": {
            "num_files": 60,
            "cache_capacity": 60,
            "duration": 4_000.0,
            "window": 400.0,
            "shift_every": 800.0,
            "rate_scale": 0.5,
        },
        "paper": {
            "num_files": 2_000,
            "cache_capacity": 2_000,
            "duration": 40_000.0,
            "window": 2_000.0,
            "shift_every": 4_000.0,
            "rate_scale": 0.5,
        },
    },
    description="race drift-triggered warm, cold and static placements over "
    "one non-stationary stream",
)
def run(
    workload: str = "drift",
    num_files: int = 60,
    cache_capacity: int = 60,
    duration: float = 4_000.0,
    window: float = 400.0,
    change_threshold: float = 0.5,
    min_observations: int = 5,
    churn_budget: Optional[float] = None,
    shift_every: Optional[float] = None,
    rate_scale: float = 0.5,
    seed: int = 2016,
    num_chunks: int = 64,
    controller: Optional[str] = None,
    controller_params: Optional[Dict[str, object]] = None,
    jobs: Optional[int] = None,
    progress: ProgressLike = None,
) -> Fig14Result:
    """Race the three strategies over one sampled non-stationary stream.

    Parameters
    ----------
    workload:
        A registered non-stationary workload (``drift`` or ``flash_crowd``
        are the canonical choices).
    duration:
        Stream horizon in seconds.
    window, change_threshold, min_observations:
        Drift-trigger knobs shared by the primary and cold arms.
    churn_budget:
        Per-bin cap on chunks scheduled for lazy addition (``None`` =
        unbounded).
    shift_every:
        Popularity-rotation period of the ``drift`` workload (forwarded as
        a workload parameter; ignored for workloads without it).
    rate_scale:
        Load multiplier on the workload's aggregate rate.
    controller, controller_params:
        Registered controller racing as the primary arm (default
        ``online``).  The drift-triggered cold re-solver and the static
        bootstrap stay fixed baselines, so ``--controller periodic`` races
        interval-based re-optimization against them.
    """
    workload_params: Dict[str, object] = {}
    if shift_every is not None and workload == "drift":
        workload_params["shift_every"] = float(shift_every)
    scenario = Scenario(
        workload=workload,
        num_files=num_files,
        cache_capacity=cache_capacity,
        simulate=False,
        seed=seed,
        rate_scale=rate_scale,
        workload_params=workload_params,
    )
    built = WORKLOADS.get(workload).create(scenario)
    model = built.model()
    rng = np.random.default_rng(np.random.SeedSequence(seed).spawn(6)[5])
    stream = built.sample(rng, horizon=duration)

    controller_knobs = dict(
        window=window,
        change_threshold=change_threshold,
        min_observations=min_observations,
        churn_budget=churn_budget,
    )
    arm_results = sweep_map(
        functools.partial(
            _run_arm,
            model=model,
            stream=stream,
            num_chunks=num_chunks,
            controller=controller,
            controller_params=controller_params,
            controller_knobs=controller_knobs,
        ),
        ["primary", "cold"],
        jobs=jobs,
        label="fig14",
        progress=progress,
    )
    primary_arm, cold_arm = arm_results
    primary_run = primary_arm["run"]
    cold_run = cold_arm["run"]

    result = Fig14Result(
        workload=workload,
        num_files=num_files,
        cache_capacity=cache_capacity,
        duration=float(duration),
        num_requests=stream.num_requests,
        churn_budget=primary_arm["churn_budget"],
    )
    arms = {
        "online": ArmResult(primary_arm["name"]),
        "cold": ArmResult("cold"),
        "static": ArmResult("static"),
    }
    static_pi = primary_run.bins[0].report.pinned_pi

    # Score every bin the primary arm opened: the bin's frozen measured
    # rates evaluate each arm's scheduling probabilities on a shared
    # system.  With the default online primary the cold arm opened the
    # same bins (same stream, same trigger), so its trajectory is indexed
    # in lockstep; the static arm always serves the bootstrap
    # probabilities.
    scorer = VectorizedSystem(model)
    parity = 0.0
    for position, record in enumerate(primary_run.bins):
        result.bin_times.append(record.opened_at)
        cold_record = (
            cold_run.bins[position] if position < len(cold_run.bins) else None
        )
        arms["online"].objectives.append(
            _evaluate(scorer, record.report.pinned_pi, record.rates)
        )
        arms["static"].objectives.append(
            _evaluate(scorer, static_pi, record.rates)
        )
        if cold_record is not None:
            arms["cold"].objectives.append(
                _evaluate(scorer, cold_record.report.pinned_pi, record.rates)
            )
            if np.array_equal(record.rates, cold_record.rates):
                # Same measured rates, but each arm alternates z along its
                # own trajectory, so this gap measures how far the two
                # histories drift apart -- not the shared-z warm-start
                # parity, which the online-resolve benchmark gates at
                # 1e-6.  (A non-online primary opens different bins, so
                # the pair never coincides and the gap stays 0.)
                gap = abs(
                    record.report.relaxed_objective
                    - cold_record.report.relaxed_objective
                ) / max(abs(cold_record.report.relaxed_objective), 1.0)
                parity = max(parity, gap)

    for name, run_result in (("online", primary_run), ("cold", cold_run)):
        arm = arms[name]
        arm.num_bins = run_result.num_bins
        arm.num_drift_events = run_result.num_drift_events
        arm.solve_seconds = run_result.solve_seconds()
        arm.relaxed_objectives = [
            record.report.relaxed_objective for record in run_result.bins
        ]
        arm.dropped_chunks = run_result.total_dropped_chunks
        arm.added_chunks = run_result.total_added_chunks
        arm.deferred_chunks = run_result.total_deferred_chunks
        arm.fallbacks = sum(
            1 for record in run_result.bins if record.report.fallback
        )
    arms["static"].num_bins = 1
    arms["static"].solve_seconds = primary_run.solve_seconds()[:1]
    result.arms = arms
    result.relaxed_gap = parity
    cold_mean = arms["cold"].mean_resolve_seconds()
    warm_mean = arms["online"].mean_resolve_seconds()
    result.warm_speedup = cold_mean / warm_mean if warm_mean > 0 else float("nan")
    return result


def format_result(result: Fig14Result) -> str:
    """Render the race as a per-arm table plus the headline ratios."""
    lines = [
        f"Fig. 14 -- drift race on '{result.workload}' "
        f"({result.num_files} files, C={result.cache_capacity} chunks, "
        f"{result.num_requests} requests over {result.duration:.0f} s, "
        f"churn budget "
        f"{result.churn_budget if result.churn_budget is not None else 'unbounded'})",
        f"{'arm':>8} {'bins':>5} {'mean bound':>11} {'total solve':>12} "
        f"{'mean re-solve':>14} {'churn -/+':>12}",
    ]
    for key in ("online", "cold", "static"):
        arm = result.arms[key]
        lines.append(
            f"{arm.name:>8} {arm.num_bins:>5} {arm.mean_objective:>11.4f} "
            f"{arm.total_solve_seconds:>11.3f}s "
            f"{arm.mean_resolve_seconds() * 1000.0:>12.1f}ms "
            f"{'-%d/+%d' % (arm.dropped_chunks, arm.added_chunks):>12}"
        )
    lines.append(
        f"warm re-solve speedup over cold: {result.warm_speedup:.2f}x; "
        f"warm/cold trajectory gap (relaxed objective): {result.relaxed_gap:.2e}"
    )
    static_excess = (
        result.arms["static"].mean_objective
        - result.arms["online"].mean_objective
    )
    lines.append(
        f"static placement excess latency bound vs online: {static_excess:+.4f}"
    )
    return "\n".join(lines)
