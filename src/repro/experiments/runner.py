"""Command-line runner for the experiment harness.

``python -m repro.experiments <name>`` (or the ``sprout-experiments``
console script) regenerates any table or figure of the paper.  Each
experiment accepts a ``--scale`` option: ``fast`` runs a reduced but
shape-preserving configuration in seconds; ``paper`` runs the full
configuration of the paper (1000 files, 1800-second benchmarks), which takes
considerably longer.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Tuple

from repro.experiments import (
    fig3_convergence,
    fig4_cache_size,
    fig5_evolution,
    fig6_placement,
    fig7_scheduling,
    fig9_service_cdf,
    fig10_object_sizes,
    fig11_arrival_rates,
    tables,
)


def _run_fig3(scale: str) -> str:
    if scale == "paper":
        result = fig3_convergence.run()
    else:
        result = fig3_convergence.run(
            cache_sizes=(20, 40, 60, 80, 100), num_files=100
        )
    return fig3_convergence.format_result(result)


def _run_fig4(scale: str) -> str:
    if scale == "paper":
        result = fig4_cache_size.run()
    else:
        result = fig4_cache_size.run(num_files=100)
    return fig4_cache_size.format_result(result)


def _run_fig5(scale: str) -> str:
    result = fig5_evolution.run()
    return fig5_evolution.format_result(result)


def _run_fig6(scale: str) -> str:
    result = fig6_placement.run()
    return fig6_placement.format_result(result)


def _run_fig7(scale: str) -> str:
    if scale == "paper":
        result = fig7_scheduling.run()
    else:
        result = fig7_scheduling.run(num_objects=200, cache_capacity_chunks=250)
    return fig7_scheduling.format_result(result)


def _run_fig9(scale: str) -> str:
    samples = 20000 if scale == "paper" else 5000
    result = fig9_service_cdf.run(samples_per_size=samples)
    return fig9_service_cdf.format_result(result)


def _run_fig10(scale: str) -> str:
    if scale == "paper":
        result = fig10_object_sizes.run()
    else:
        result = fig10_object_sizes.run(
            object_sizes_mb=(4, 16, 64),
            num_objects=200,
            duration_s=600.0,
            rate_scale=5.0,
        )
    return fig10_object_sizes.format_result(result)


def _run_fig11(scale: str) -> str:
    if scale == "paper":
        result = fig11_arrival_rates.run()
    else:
        result = fig11_arrival_rates.run(
            aggregate_rates=(0.5, 1.0, 2.0),
            num_objects=200,
            duration_s=600.0,
        )
    return fig11_arrival_rates.format_result(result)


def _run_tables(scale: str) -> str:
    samples = 20000 if scale == "paper" else 5000
    result = tables.run(samples=samples)
    return tables.format_result(result)


EXPERIMENTS: Dict[str, Tuple[str, Callable[[str], str]]] = {
    "fig3": ("Convergence of Algorithm 1 (Fig. 3)", _run_fig3),
    "fig4": ("Latency vs cache size (Fig. 4)", _run_fig4),
    "fig5": ("Cache content evolution over time bins (Fig. 5 / Table I)", _run_fig5),
    "fig6": ("Placement and arrival-rate impact (Fig. 6)", _run_fig6),
    "fig7": ("Cache vs storage chunk scheduling (Fig. 7)", _run_fig7),
    "fig9": ("Chunk service-time CDF (Fig. 9 / Table IV)", _run_fig9),
    "fig10": ("Latency per object size, optimal vs LRU (Fig. 10)", _run_fig10),
    "fig11": ("Latency vs workload intensity, optimal vs LRU (Fig. 11)", _run_fig11),
    "tables": ("Tables I, III, IV, V", _run_tables),
}


def build_parser() -> argparse.ArgumentParser:
    """Build the command-line parser."""
    parser = argparse.ArgumentParser(
        prog="sprout-experiments",
        description="Regenerate the tables and figures of the Sprout paper.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which experiment to run ('all' runs every one)",
    )
    parser.add_argument(
        "--scale",
        choices=["fast", "paper"],
        default="fast",
        help="'fast' runs a reduced shape-preserving configuration; "
        "'paper' runs the full-size configuration",
    )
    return parser


def run_experiment(name: str, scale: str) -> str:
    """Run one experiment by name and return its formatted report."""
    description, runner = EXPERIMENTS[name]
    started = time.time()
    report = runner(scale)
    elapsed = time.time() - started
    header = f"=== {name}: {description} (scale={scale}, {elapsed:.1f}s) ==="
    return f"{header}\n{report}\n"


def main(argv=None) -> int:
    """Entry point of the ``sprout-experiments`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(run_experiment(name, args.scale))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI
    sys.exit(main())
