"""Command-line runner for the declarative experiment registry.

``python -m repro.experiments <name>`` (or the ``sprout-experiments``
console script) regenerates any table or figure of the paper through the
:mod:`repro.api` experiment registry.  Each experiment carries per-scale
parameter sets: ``--scale fast`` runs a reduced but shape-preserving
configuration in seconds; ``--scale paper`` runs the full configuration of
the paper (1000 files, 1800-second benchmarks), which takes considerably
longer.  Uniform flags forwarded to every experiment that supports them:

* ``--engine {batch,event,...}`` -- override the simulation engine,
* ``--backend {numpy,...}`` -- select the kernel backend the run's
  queueing kernels compute in (``repro.api.list_kernel_backends()``),
* ``--seed N`` -- override the experiment's root seed,
* ``--fault NAME`` / ``--fault-param KEY=VALUE`` -- inject a registered
  fault schedule into experiments that replay the emulated cluster
  (``repro.api.list_faults()``),
* ``--controller NAME`` / ``--controller-param KEY=VALUE`` -- drive the
  workload stream through a registered online controller in experiments
  that support one (``repro.api.list_controllers()``),
* ``--jobs N`` -- run sweep points on N worker processes (default: all
  cores; results are bit-identical to ``--jobs 1``),
* ``--cache`` / ``--no-cache`` -- serve per-point results from the
  content-addressed cache under ``~/.cache/repro`` (``REPRO_CACHE_DIR``
  overrides the directory),
* ``--progress`` -- report completed/total sweep points on stderr,
* ``--json`` -- emit the machine-readable result instead of the text report,
* ``--list`` -- show every registered experiment, solver, engine, baseline,
  kernel backend, fault generator, controller and workload.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict, Optional, Tuple

# Importing the package registers every experiment module with the registry.
import repro.experiments  # noqa: F401  (self-registration side effect)
from repro.api.registry import (
    BASELINES,
    CONTROLLERS,
    ENGINES,
    EXPERIMENTS as EXPERIMENT_REGISTRY,
    FAULTS,
    KERNEL_BACKENDS,
    POLICIES,
    SOLVERS,
    WORKLOADS,
)
from repro.api.serialize import json_dumps
from repro.kernels import use_kernel_backend


def run_experiment(
    name: str,
    scale: str = "fast",
    *,
    engine: Optional[str] = None,
    backend: Optional[str] = None,
    seed: Optional[int] = None,
    workload: Optional[str] = None,
    workload_params: Optional[Dict[str, object]] = None,
    faults: Optional[str] = None,
    fault_params: Optional[Dict[str, object]] = None,
    controller: Optional[str] = None,
    controller_params: Optional[Dict[str, object]] = None,
    jobs: Optional[int] = None,
    cache: Optional[bool] = None,
    progress: Optional[bool] = None,
    as_json: bool = False,
) -> str:
    """Run one registered experiment and return its formatted report.

    ``backend`` selects the kernel backend active for the whole run (every
    queueing kernel the experiment reaches computes in that namespace);
    ``None`` keeps the process default.  ``workload``/``workload_params``
    select a registered workload for experiments that take one (the
    ``scenario`` experiment; dropped otherwise, like ``engine``/``seed``).
    ``faults``/``fault_params`` inject a registered fault schedule into
    experiments that replay the emulated cluster (same drop rule);
    ``controller``/``controller_params`` drive the workload stream through
    a registered online controller (same drop rule).  ``jobs`` fans sweep
    points out over that many worker processes, ``cache`` serves repeated
    points from the content-addressed result cache and ``progress``
    reports completed/total points on stderr (all three follow the same
    drop rule).  With ``as_json=True``
    the report is a JSON document carrying the full typed result; otherwise
    it is the experiment's text rendering under a timing header.
    """
    spec = EXPERIMENT_REGISTRY.get(name)
    started = time.time()
    with use_kernel_backend(backend) as active_backend:
        result = spec.run(
            scale=scale,
            engine=engine,
            seed=seed,
            workload=workload,
            workload_params=workload_params or None,
            faults=faults,
            fault_params=fault_params or None,
            controller=controller,
            controller_params=controller_params or None,
            jobs=jobs,
            cache=cache,
            progress=progress,
        )
    elapsed = time.time() - started
    if as_json:
        return json_dumps(
            {
                "experiment": name,
                "title": spec.title,
                "scale": scale,
                # Uniform flags the experiment does not accept are dropped by
                # spec.run; null them here so the payload never claims an
                # engine/seed the run did not actually use.
                "engine": engine if engine is not None and spec.accepts("engine") else None,
                "seed": seed if seed is not None and spec.accepts("seed") else None,
                "backend": active_backend.name,
                "elapsed_seconds": elapsed,
                "result": result,
            }
        )
    header = f"=== {name}: {spec.title} (scale={scale}, {elapsed:.1f}s) ==="
    return f"{header}\n{spec.format(result)}\n"


def parse_param_pairs(
    pairs: Optional[list], flag: str = "--workload-param"
) -> Dict[str, object]:
    """Parse repeated ``KEY=VALUE`` flags into a parameter dict.

    Values are JSON-decoded when possible (``amplitude=0.5`` -> float,
    ``hot=[1,2]`` -> list) and kept as plain strings otherwise
    (``path=trace.csv``).  ``flag`` only names the offending option in the
    error message.
    """
    params: Dict[str, object] = {}
    for pair in pairs or []:
        key, separator, raw = pair.partition("=")
        if not separator or not key:
            raise ValueError(f"{flag} expects KEY=VALUE, got {pair!r}")
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    return params


def parse_workload_params(pairs: Optional[list]) -> Dict[str, object]:
    """Parse repeated ``--workload-param KEY=VALUE`` flags (see above)."""
    return parse_param_pairs(pairs, "--workload-param")


def _section_lines(entries) -> list:
    """Sorted, de-duplicated ``name  description`` lines for one section."""
    unique = {}
    for name, description in entries:
        unique.setdefault(name, description)
    if not unique:
        return ["  <none>"]
    width = max(len(name) for name in unique)
    return [
        f"  {name:<{width}}  {unique[name]}".rstrip()
        for name in sorted(unique)
    ]


def format_listing() -> str:
    """Render every registered component as the ``--list`` report.

    Each section is sorted and de-duplicated by name; experiments show
    their one-line description from the :class:`ExperimentSpec` next to
    the title.
    """
    lines = ["Registered experiments:"]
    lines.extend(
        _section_lines(
            (
                name,
                f"{spec.title} -- {spec.description}" if spec.description else spec.title,
            )
            for name, spec in EXPERIMENT_REGISTRY.items()
        )
    )
    sections = (
        ("solvers", SOLVERS),
        ("engines", ENGINES),
        ("kernel backends", KERNEL_BACKENDS),
        ("baselines", BASELINES),
        ("cache policies", POLICIES),
        ("fault generators", FAULTS),
        ("controllers", CONTROLLERS),
    )
    for label, registry in sections:
        lines.append("")
        lines.append(f"Registered {label}:")
        lines.extend(
            _section_lines(
                (name, spec.description) for name, spec in registry.items()
            )
        )
    # Workloads additionally show their kind (stationary / non-stationary /
    # trace), so the zoo is legible at a glance.
    lines.append("")
    lines.append("Registered workloads:")
    lines.extend(
        _section_lines(
            (name, f"[{spec.kind}] {spec.description}".rstrip())
            for name, spec in WORKLOADS.items()
        )
    )
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    """Build the command-line parser."""
    parser = argparse.ArgumentParser(
        prog="sprout-experiments",
        description="Regenerate the tables and figures of the Sprout paper.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        choices=EXPERIMENT_REGISTRY.names() + ["all"],
        help="which experiment to run ('all' runs every one)",
    )
    parser.add_argument(
        "--scale",
        choices=["fast", "paper"],
        default="fast",
        help="'fast' runs a reduced shape-preserving configuration; "
        "'paper' runs the full-size configuration",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES.names(),
        default=None,
        help="override the simulation engine for experiments that simulate",
    )
    parser.add_argument(
        "--backend",
        choices=KERNEL_BACKENDS.names(),
        default=None,
        help="kernel backend the run's queueing kernels compute in "
        "(default: the process default, usually numpy)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the experiment's root random seed",
    )
    parser.add_argument(
        "--workload",
        choices=WORKLOADS.names(),
        default=None,
        help="registered workload for experiments that take one "
        "(the 'scenario' experiment)",
    )
    parser.add_argument(
        "--workload-param",
        action="append",
        default=None,
        metavar="KEY=VALUE",
        dest="workload_params",
        help="workload builder parameter (repeatable); values are parsed "
        "as JSON with plain-string fallback, e.g. "
        "--workload-param path=trace.csv --workload-param amplitude=0.5",
    )
    parser.add_argument(
        "--fault",
        choices=FAULTS.names(),
        default=None,
        dest="faults",
        help="registered fault schedule injected into experiments that "
        "replay the emulated cluster (the 'scenario', 'fig12' and "
        "'fig13' experiments)",
    )
    parser.add_argument(
        "--fault-param",
        action="append",
        default=None,
        metavar="KEY=VALUE",
        dest="fault_params",
        help="fault generator parameter (repeatable); values are parsed "
        "as JSON with plain-string fallback, e.g. "
        "--fault-param crash_rate=1e-4 --fault-param downtime_ms=30000",
    )
    parser.add_argument(
        "--controller",
        choices=CONTROLLERS.names(),
        default=None,
        help="registered online controller driving the workload stream in "
        "experiments that support one (the 'scenario' and 'fig14' "
        "experiments)",
    )
    parser.add_argument(
        "--controller-param",
        action="append",
        default=None,
        metavar="KEY=VALUE",
        dest="controller_params",
        help="controller builder parameter (repeatable); values are parsed "
        "as JSON with plain-string fallback, e.g. "
        "--controller-param window=300 --controller-param churn_budget=64",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for sweep-style experiments (default: all "
        "cores; results are bit-identical to --jobs 1)",
    )
    parser.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="serve repeated sweep points from the content-addressed "
        "result cache under ~/.cache/repro (REPRO_CACHE_DIR overrides "
        "the directory); --no-cache forces fresh solves",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        default=None,
        help="report completed/total sweep points on stderr while running",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the machine-readable JSON result instead of the text report",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_components",
        help="list every registered experiment, solver, engine, kernel "
        "backend, baseline, cache policy, fault generator and workload",
    )
    return parser


def main(argv=None) -> int:
    """Entry point of the ``sprout-experiments`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_components:
        print(format_listing())
        return 0
    if args.experiment is None:
        parser.error("an experiment name (or 'all', or --list) is required")
    try:
        workload_params = parse_workload_params(args.workload_params)
        fault_params = parse_param_pairs(args.fault_params, "--fault-param")
        controller_params = parse_param_pairs(
            args.controller_params, "--controller-param"
        )
    except ValueError as error:
        parser.error(str(error))
    names = EXPERIMENT_REGISTRY.names() if args.experiment == "all" else [args.experiment]
    reports = [
        run_experiment(
            name,
            args.scale,
            engine=args.engine,
            backend=args.backend,
            seed=args.seed,
            workload=args.workload,
            workload_params=workload_params,
            faults=args.faults,
            fault_params=fault_params,
            controller=args.controller,
            controller_params=controller_params,
            jobs=args.jobs,
            cache=args.cache,
            progress=args.progress,
            as_json=args.as_json,
        )
        for name in names
    ]
    if args.as_json and len(reports) > 1:
        # Keep 'all --json' a single valid JSON document.
        print("[\n" + ",\n".join(reports) + "\n]")
    else:
        for report in reports:
            print(report)
    return 0


def _legacy_runner(name: str) -> Callable[[str], str]:
    def run(scale: str) -> str:
        spec = EXPERIMENT_REGISTRY.get(name)
        return spec.format(spec.run(scale=scale))

    return run


#: Backwards-compatible view of the registry under the pre-1.1 public name:
#: name -> (description, runner), exactly the dict this module used to hold.
EXPERIMENTS: Dict[str, Tuple[str, Callable[[str], str]]] = {
    name: (spec.title, _legacy_runner(name))
    for name, spec in EXPERIMENT_REGISTRY.items()
}


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI
    sys.exit(main())
