"""Fig. 10: average access latency per object size, optimal vs LRU caching.

For every object size of Table III (4 MB to 1 GB, 1000 active objects, 10 GB
cache) the paper compares three quantities:

* the measured latency of the optimized functional-caching configuration
  (equivalent-code pools),
* the measured latency of Ceph's LRU replicated cache tier (baseline),
* the analytical latency bound of the optimization ("numerical").

The optimal configuration wins for every size, by about 26% on average, and
the gap grows with object size (i.e. with load).  This experiment rebuilds
the three series on the emulated cluster.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.api.deprecation import deprecated_entry_point
from repro.api.experiments import register_experiment
from repro.cluster.cluster import CephLikeCluster, ClusterConfig
from repro.cluster.devices import chunk_size_for_object, hdd_service_for_chunk_size
from repro.core.algorithm import CacheOptimizer
from repro.core.model import FileSpec, StorageSystemModel
from repro.exec import CacheLike, ProgressLike, sweep_map
from repro.experiments._sweep import dataclass_codec, experiment_cache_key
from repro.simulation.simulator import SimulationConfig, StorageSimulator
from repro.workloads.traces import TABLE_III_WORKLOAD, table_iii_arrival_rates


@dataclass
class ObjectSizeComparison:
    """Latency comparison for one object size."""

    object_size_mb: int
    optimal_latency_ms: float
    baseline_latency_ms: float
    analytical_bound_ms: float
    cache_hit_ratio_baseline: float
    chunks_cached: int
    simulated_latency_ms: Optional[float] = None

    @property
    def improvement(self) -> float:
        """Relative latency reduction of optimal caching vs the baseline."""
        if self.baseline_latency_ms <= 0:
            return 0.0
        return 1.0 - self.optimal_latency_ms / self.baseline_latency_ms


@dataclass
class Fig10Result:
    """Comparisons for every object size."""

    comparisons: List[ObjectSizeComparison] = field(default_factory=list)
    num_objects: int = 0
    cache_capacity_mb: int = 0

    def mean_improvement(self) -> float:
        """Average relative improvement across the sizes."""
        if not self.comparisons:
            return 0.0
        return float(np.mean([c.improvement for c in self.comparisons]))


def _analytical_model(
    cluster: CephLikeCluster,
    arrival_rates: Dict[str, float],
    config: ClusterConfig,
) -> StorageSystemModel:
    """Build the analytical model matching the emulated cluster."""
    from repro.queueing.distributions import EmpiricalMomentsService

    chunk_size = chunk_size_for_object(config.object_size_mb, config.k)
    base_service = hdd_service_for_chunk_size(chunk_size)
    inflation = config.service_time_inflation
    effective_service = EmpiricalMomentsService(
        mean=base_service.mean * inflation,
        variance=base_service.variance * inflation**2,
    )
    services = []
    for osd_id in sorted(cluster.osds):
        # Per-OSD speed differences are small; the analytical model uses the
        # common measured distribution scaled by the same concurrency
        # inflation as the emulated OSDs (what the paper's algorithm also
        # does with its measured moments).
        services.append(effective_service)
    rng = np.random.default_rng(config.seed)
    files = []
    num_nodes = config.num_osds
    for object_name, rate in arrival_rates.items():
        placement = [int(x) for x in rng.choice(num_nodes, size=config.n, replace=False)]
        files.append(
            FileSpec(
                file_id=object_name,
                n=config.n,
                k=config.k,
                placement=placement,
                arrival_rate=rate / 1000.0,  # rates are per second; model in ms
                chunk_size=chunk_size,
            )
        )
    return StorageSystemModel(
        services=services,
        files=files,
        cache_capacity=config.cache_capacity_chunks,
    )


def run_for_object_size(
    object_size_mb: int,
    num_objects: int = 1000,
    cache_capacity_mb: int = 10 * 1024,
    duration_s: float = 1800.0,
    rate_scale: float = 1.0,
    seed: int = 2016,
    tolerance: float = 0.5,
    simulate: bool = False,
    engine: str = "batch",
    baseline_policy: str = "lru",
) -> ObjectSizeComparison:
    """Run the Fig. 10 comparison for a single object size.

    With ``simulate=True`` the optimized placement is additionally replayed
    through the fork-join storage simulator (``engine`` picks the event or
    batch engine) as a cross-check of the analytical bound.
    ``baseline_policy`` selects the cache-tier policy of the baseline
    configuration from the policy registry (Ceph's agent is LRU).
    """
    arrival_rates = table_iii_arrival_rates(
        object_size_mb, num_objects, rate_scale=rate_scale
    )
    config = ClusterConfig(
        object_size_mb=object_size_mb,
        cache_capacity_mb=cache_capacity_mb,
        seed=seed,
    )

    # --- Optimize the cache placement analytically.
    cluster_optimal = CephLikeCluster(config)
    model = _analytical_model(cluster_optimal, arrival_rates, config)
    optimizer = CacheOptimizer(model, tolerance=tolerance)
    placement = optimizer.optimize().placement
    object_pool_map = placement.cached_chunks()

    # --- Optimal-caching benchmark on the emulated cluster.
    cluster_optimal.setup_optimal_caching(object_pool_map)
    optimal_result = cluster_optimal.run_read_benchmark(
        arrival_rates, duration_s, mode="optimal", seed=seed
    )

    # --- Baseline (LRU cache tier) benchmark on a fresh cluster.
    cluster_baseline = CephLikeCluster(config)
    cluster_baseline.setup_baseline(sorted(arrival_rates), policy=baseline_policy)
    baseline_result = cluster_baseline.run_read_benchmark(
        arrival_rates, duration_s, mode="baseline", seed=seed
    )

    simulated_latency: Optional[float] = None
    if simulate:
        simulator = StorageSimulator(model, placement, engine=engine)
        sim_config = SimulationConfig(
            horizon=duration_s * 1000.0,
            seed=seed,
            warmup=duration_s * 100.0,
        )
        simulated_latency = simulator.run(sim_config).mean_latency()

    hits = baseline_result.cache_hits
    misses = baseline_result.cache_misses
    hit_ratio = hits / (hits + misses) if hits + misses else 0.0
    return ObjectSizeComparison(
        object_size_mb=object_size_mb,
        optimal_latency_ms=optimal_result.mean_latency_ms(),
        baseline_latency_ms=baseline_result.mean_latency_ms(),
        analytical_bound_ms=placement.objective,
        cache_hit_ratio_baseline=hit_ratio,
        chunks_cached=placement.total_cached_chunks,
        simulated_latency_ms=simulated_latency,
    )


@deprecated_entry_point("fig10")
@register_experiment(
    "fig10",
    title="Latency per object size, optimal vs LRU (Fig. 10)",
    description="emulated-cluster latency per Table-III object size, both tiers",
    scales={
        "fast": {
            "object_sizes_mb": (4, 16, 64),
            "num_objects": 200,
            "duration_s": 600.0,
            "rate_scale": 5.0,
        }
    },
)
def run(
    object_sizes_mb: Optional[Sequence[int]] = None,
    num_objects: int = 1000,
    cache_capacity_mb: int = 10 * 1024,
    duration_s: float = 1800.0,
    rate_scale: float = 1.0,
    seed: int = 2016,
    simulate: bool = False,
    engine: str = "batch",
    baseline_policy: str = "lru",
    jobs: Optional[int] = None,
    cache: CacheLike = None,
    progress: ProgressLike = None,
) -> Fig10Result:
    """Run the full Fig. 10 object-size sweep (parallel over sizes)."""
    if object_sizes_mb is None:
        object_sizes_mb = sorted(TABLE_III_WORKLOAD)
    params = {
        "num_objects": num_objects,
        "cache_capacity_mb": cache_capacity_mb,
        "duration_s": duration_s,
        "rate_scale": rate_scale,
        "seed": seed,
        "simulate": simulate,
        "engine": engine,
        "baseline_policy": baseline_policy,
    }
    encode, decode = dataclass_codec(ObjectSizeComparison)
    comparisons = sweep_map(
        functools.partial(run_for_object_size, **params),
        [int(size) for size in object_sizes_mb],
        jobs=jobs,
        label="fig10",
        progress=progress,
        cache=cache,
        cache_key=experiment_cache_key("fig10", params),
        encode=encode,
        decode=decode,
    )
    return Fig10Result(
        comparisons=comparisons,
        num_objects=num_objects,
        cache_capacity_mb=cache_capacity_mb,
    )


def format_result(result: Fig10Result) -> str:
    """Render the three latency series of Fig. 10."""
    lines = [
        "Fig. 10 -- average access latency per object size "
        f"({result.num_objects} objects, cache = {result.cache_capacity_mb} MB)",
        f"{'size (MB)':>10} {'optimal (ms)':>13} {'baseline (ms)':>14} "
        f"{'bound (ms)':>11} {'improvement':>12} {'LRU hit %':>10}",
    ]
    for comparison in result.comparisons:
        lines.append(
            f"{comparison.object_size_mb:>10} "
            f"{comparison.optimal_latency_ms:>13.1f} "
            f"{comparison.baseline_latency_ms:>14.1f} "
            f"{comparison.analytical_bound_ms:>11.1f} "
            f"{comparison.improvement:>11.1%} "
            f"{comparison.cache_hit_ratio_baseline:>9.1%}"
        )
    lines.append(
        f"mean improvement of optimal caching over LRU: "
        f"{result.mean_improvement():.1%} (paper: ~26%)"
    )
    return "\n".join(lines)
