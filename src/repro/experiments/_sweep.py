"""Shared ``sweep_map`` plumbing for the experiment modules.

Every figure threads the same three execution knobs (``jobs``, ``cache``,
``progress``) into :func:`repro.exec.sweep_map`; this module holds the
two pieces they would otherwise each duplicate: a dataclass<->JSON codec
for cached per-point results and the content-addressed key builder that
mixes the experiment name and its full parameter set into each point's
cache key.
"""

from __future__ import annotations

from dataclasses import asdict, is_dataclass
from typing import Any, Callable, Mapping, Tuple, Type

from repro.exec import ResultCache, experiment_point_key


def dataclass_codec(
    cls: Type[Any],
) -> Tuple[Callable[[Any], Any], Callable[[Any], Any]]:
    """(encode, decode) storing instances of ``cls`` as plain JSON dicts.

    ``encode`` is :func:`dataclasses.asdict`; ``decode`` rebuilds the
    dataclass from the stored mapping.  Only flat dataclasses (no nested
    dataclass fields needing their own reconstruction) should use this.
    """

    def encode(result: Any) -> Any:
        if not is_dataclass(result):
            raise TypeError(f"expected a {cls.__name__}, got {type(result)!r}")
        return asdict(result)

    def decode(payload: Any) -> Any:
        return cls(**payload)

    return encode, decode


def experiment_cache_key(
    experiment: str, params: Mapping[str, Any]
) -> Callable[[ResultCache, Any, int], str]:
    """A ``cache_key`` callable binding the experiment name and params.

    ``params`` must carry everything besides the point that shapes the
    point's result (seed, sizes, durations, engine, ...); the point index
    is NOT part of the key, so reordering or subsetting the point list
    still hits.  Experiments that spawn per-index seeds must put the
    spawned seed itself into the point or params.
    """

    frozen = dict(params)

    def cache_key(cache: ResultCache, point: Any, index: int) -> str:
        return experiment_point_key(cache, experiment, point, frozen)

    return cache_key
