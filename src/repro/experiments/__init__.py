"""Experiment harness: one module per table / figure of the paper.

Every experiment module exposes a ``run(...)`` function returning a plain
data structure (rows / series) that mirrors what the paper reports, plus a
``format_*`` helper that renders it as text.  ``python -m repro.experiments
<name>`` (see :mod:`repro.experiments.runner`) regenerates any of them from
the command line, and the benchmarks in ``benchmarks/`` wrap the same
functions.
"""

from repro.experiments import (
    fig3_convergence,
    fig4_cache_size,
    fig5_evolution,
    fig6_placement,
    fig7_scheduling,
    fig9_service_cdf,
    fig10_object_sizes,
    fig11_arrival_rates,
    fig12_tail_under_failure,
    fig13_degraded_reads,
    fig14_drift_race,
    scenario_run,
    tables,
)

__all__ = [
    "fig3_convergence",
    "fig4_cache_size",
    "fig5_evolution",
    "fig6_placement",
    "fig7_scheduling",
    "fig9_service_cdf",
    "fig10_object_sizes",
    "fig11_arrival_rates",
    "fig12_tail_under_failure",
    "fig13_degraded_reads",
    "fig14_drift_race",
    "scenario_run",
    "tables",
]
