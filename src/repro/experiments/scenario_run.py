"""The ``scenario`` experiment: run one declarative Scenario end-to-end.

This is the CLI face of :func:`repro.api.run_scenario` -- pick any
registered workload (``--workload``), feed it builder parameters
(``--workload-param key=value``) and get the full
optimize -> schedule -> simulate pipeline::

    python -m repro.experiments scenario --workload diurnal \
        --workload-param amplitude=0.5 --workload-param period=3600

    python -m repro.experiments scenario --workload trace \
        --workload-param path=trace.csv --workload-param schema=cdn

Fault schedules ride along the same way (``--fault`` /
``--fault-param key=value``) and add a fault-aware cluster-replay stage::

    python -m repro.experiments scenario --fault osd_crash \
        --fault-param crash_rate=1e-4

So do online controllers (``--controller`` /
``--controller-param key=value``), adding the control stage -- streaming
drift detection, warm re-solves, bounded-churn swaps::

    python -m repro.experiments scenario --workload drift \
        --controller online --controller-param churn_budget=16
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.api.experiments import register_experiment
from repro.api.scenario import Scenario
from repro.api.session import run_scenario
from repro.exec import CacheLike


@register_experiment(
    "scenario",
    title="One declarative scenario end-to-end",
    scales={"fast": {"scale": "fast"}, "paper": {"scale": "paper"}},
    description="run any registered workload through the full pipeline",
)
def run(
    workload: str = "paper_default",
    workload_params: Optional[Mapping[str, Any]] = None,
    num_files: int = 100,
    cache_capacity: int = 50,
    engine: Optional[str] = None,
    seed: Optional[int] = None,
    faults: Optional[str] = None,
    fault_params: Optional[Mapping[str, Any]] = None,
    controller: Optional[str] = None,
    controller_params: Optional[Mapping[str, Any]] = None,
    cache: CacheLike = None,
    scale: str = "fast",
) -> Dict[str, Any]:
    """Run one scenario and return its JSON-safe result payload."""
    fields: Dict[str, Any] = {
        "workload": workload,
        "num_files": num_files,
        "cache_capacity": cache_capacity,
        "scale": scale,
    }
    if workload_params:
        fields["workload_params"] = dict(workload_params)
    if engine is not None:
        fields["engine"] = engine
    if seed is not None:
        fields["seed"] = seed
    if faults is not None:
        fields["faults"] = faults
        if fault_params:
            fields["fault_params"] = dict(fault_params)
    if controller is not None:
        fields["controller"] = controller
        if controller_params:
            fields["controller_params"] = dict(controller_params)
    result = run_scenario(Scenario(**fields), cache=cache)
    payload = result.to_dict()
    payload["summary"] = result.summary()
    return payload


def format_result(payload: Mapping[str, Any]) -> str:
    """Render the scenario run as its multi-line summary."""
    return str(payload["summary"])
