"""Fig. 13: read-latency CDF healthy vs degraded vs repairing.

One cluster state at a time, the same seeded trace three times:

* **healthy** -- no faults; the reference CDF,
* **degraded** -- a correlated ``degraded_read`` outage (an AZ or rack
  down for the whole run): reads whose preferred chunks lived on the down
  OSDs re-route through CRUSH to the survivors with the k-of-n repair
  fan-out, so the CDF shifts right and grows a heavier tail,
* **repairing** -- the same outage plus ``repair_traffic``: background
  chunk reconstructions spliced into the surviving OSD queues as constant
  service work, pushing the whole distribution further out (the classic
  "repair storms hurt the tail" effect).

Latencies are summarized as a fixed quantile grid per mode, i.e. the CDF
sampled at those probabilities.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.api.experiments import register_experiment
from repro.cluster.cluster import ClusterConfig
from repro.cluster.replay import ClusterReplay, ReplayTrace
from repro.exec import CacheLike, ProgressLike, sweep_map
from repro.experiments._sweep import dataclass_codec, experiment_cache_key
from repro.faults import GeneratedFaultSchedule
from repro.workloads.catalog import aggregate_rate_to_per_object

#: CDF sample points (percentiles) reported per cluster state.
QUANTILES = (10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9)


@dataclass
class LatencyCDF:
    """The latency CDF of one cluster state, sampled at :data:`QUANTILES`."""

    mode: str
    quantiles: Sequence[float]
    latencies_ms: List[float]
    mean_ms: float
    served: int
    degraded_reads: int
    failed_reads: int
    repair_jobs: int

    @property
    def median_ms(self) -> float:
        """The 50th-percentile latency."""
        return self.latencies_ms[list(self.quantiles).index(50.0)]


@dataclass
class Fig13Result:
    """One :class:`LatencyCDF` per cluster state (healthy first)."""

    cdfs: List[LatencyCDF] = field(default_factory=list)
    policy: str = "lru"
    outage_fraction: float = 0.0
    repair_rate: float = 0.0
    num_objects: int = 0
    duration_s: float = 0.0

    def cdf(self, mode: str) -> LatencyCDF:
        """The CDF of one mode (``healthy``/``degraded``/``repairing``)."""
        for entry in self.cdfs:
            if entry.mode == mode:
                return entry
        raise KeyError(mode)

    def degradation(self, quantile: float = 99.0) -> float:
        """Latency ratio degraded/healthy at one quantile."""
        index = list(QUANTILES).index(quantile)
        healthy = self.cdf("healthy").latencies_ms[index]
        degraded = self.cdf("degraded").latencies_ms[index]
        return degraded / healthy if healthy > 0 else 1.0


def _mode_faults(mode: str, outage_fraction: float, repair_rate: float):
    """The fault schedule of one cluster state (rebuilt in each worker)."""
    if mode == "healthy":
        return None
    outage = GeneratedFaultSchedule(
        "degraded_read", {"fraction": float(outage_fraction)}
    )
    if mode == "degraded":
        return outage
    repairs = GeneratedFaultSchedule("repair_traffic", {"rate": float(repair_rate)})
    return [outage, repairs]


def run_mode(
    mode: str,
    config: ClusterConfig,
    object_names: Sequence[str],
    trace: ReplayTrace,
    policy: str,
    engine: str,
    seed: int,
    outage_fraction: float,
    repair_rate: float,
) -> LatencyCDF:
    """Replay the shared trace under one cluster state."""
    replay = ClusterReplay(config, list(object_names), policy=policy)
    faults = _mode_faults(mode, outage_fraction, repair_rate)
    outcome = replay.run(trace, engine=engine, seed=seed + 1, faults=faults)
    return LatencyCDF(
        mode=mode,
        quantiles=QUANTILES,
        latencies_ms=[outcome.percentile_ms(q) for q in QUANTILES],
        mean_ms=outcome.mean_latency_ms(),
        served=outcome.served,
        degraded_reads=outcome.degraded_reads,
        failed_reads=outcome.failed_reads,
        repair_jobs=outcome.repair_jobs,
    )


@register_experiment(
    "fig13",
    title="Degraded-read latency CDF (Fig. 13)",
    description="latency CDF healthy vs degraded vs repairing cluster",
    scales={
        "fast": {
            "num_objects": 80,
            "cache_capacity_mb": 1024,
            "duration_s": 240.0,
        }
    },
)
def run(
    num_objects: int = 200,
    aggregate_rate: float = 4.0,
    duration_s: float = 600.0,
    cache_capacity_mb: int = 2 * 1024,
    outage_fraction: float = 0.25,
    repair_rate: float = 0.5,
    object_size_mb: int = 64,
    seed: int = 2016,
    engine: str = "epoch",
    policy: str = "lru",
    jobs: Optional[int] = None,
    cache: CacheLike = None,
    progress: ProgressLike = None,
) -> Fig13Result:
    """Replay the same trace against the three cluster states.

    ``outage_fraction`` is the fraction of OSDs in the correlated outage;
    ``repair_rate`` the background reconstruction arrival rate (jobs per
    second across the cluster).  ``policy`` is any registered cache policy.
    The three states are independent replays of the same trace, so they
    fan out over ``sweep_map``.
    """
    arrival_rates = aggregate_rate_to_per_object(aggregate_rate, num_objects)
    config = ClusterConfig(
        object_size_mb=object_size_mb,
        cache_capacity_mb=cache_capacity_mb,
        seed=seed,
    )
    trace = ReplayTrace.from_rates(arrival_rates, duration_s, seed=seed + 101)

    key_params = {
        "num_objects": num_objects,
        "aggregate_rate": aggregate_rate,
        "duration_s": duration_s,
        "cache_capacity_mb": cache_capacity_mb,
        "outage_fraction": outage_fraction,
        "repair_rate": repair_rate,
        "object_size_mb": object_size_mb,
        "seed": seed,
        "engine": engine,
        "policy": policy,
    }
    encode, decode = dataclass_codec(LatencyCDF)
    cdfs = sweep_map(
        functools.partial(
            run_mode,
            config=config,
            object_names=sorted(arrival_rates),
            trace=trace,
            policy=policy,
            engine=engine,
            seed=seed,
            outage_fraction=float(outage_fraction),
            repair_rate=float(repair_rate),
        ),
        ["healthy", "degraded", "repairing"],
        jobs=jobs,
        label="fig13",
        progress=progress,
        cache=cache,
        cache_key=experiment_cache_key("fig13", key_params),
        encode=encode,
        decode=decode,
    )
    return Fig13Result(
        cdfs=cdfs,
        policy=policy,
        outage_fraction=float(outage_fraction),
        repair_rate=float(repair_rate),
        num_objects=num_objects,
        duration_s=duration_s,
    )


def format_result(result: Fig13Result) -> str:
    """Render the three CDFs as a quantile table."""
    lines = [
        "Fig. 13 -- read-latency CDF, healthy vs degraded vs repairing "
        f"(policy={result.policy}, outage={result.outage_fraction:.0%} of OSDs, "
        f"repairs={result.repair_rate:g}/s, {result.duration_s:.0f} s replay)",
        f"{'mode':>10} "
        + " ".join(f"p{q:g}".rjust(9) for q in QUANTILES)
        + f" {'mean':>9} {'degraded':>9} {'failed':>7} {'repairs':>8}",
    ]
    for cdf in result.cdfs:
        lines.append(
            f"{cdf.mode:>10} "
            + " ".join(f"{value:>9.1f}" for value in cdf.latencies_ms)
            + f" {cdf.mean_ms:>9.1f} {cdf.degraded_reads:>9d} "
            f"{cdf.failed_reads:>7d} {cdf.repair_jobs:>8d}"
        )
    lines.append(
        f"p99 degradation (degraded/healthy): {result.degradation(99.0):.2f}x"
    )
    return "\n".join(lines)
