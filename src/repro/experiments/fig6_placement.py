"""Fig. 6: impact of content placement and arrival rate on cache allocation.

Ten files are stored on 12 servers with a deliberately skewed layout: the
first three files live on servers 0-6 and the remaining seven on servers
5-11, so servers 5 and 6 hold chunks of every file.  The arrival rates of
the last eight files are fixed and the common rate of the first two files is
swept upward.  The paper's point: even though the first two files have the
highest arrival rate, they get no cache space at the low end of the sweep
because their servers are lightly loaded; only as their rate grows do their
chunks displace the other files' chunks in the cache.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.api.deprecation import deprecated_entry_point
from repro.api.experiments import register_experiment
from repro.core.algorithm import CacheOptimizer
from repro.exec import CacheLike, ProgressLike, sweep_map
from repro.experiments._sweep import dataclass_codec, experiment_cache_key
from repro.simulation.simulator import SimulationConfig, StorageSimulator
from repro.workloads.defaults import ten_file_model

#: The arrival rates the paper sweeps for the first two files (requests/s).
PAPER_SWEEP_RATES: List[float] = [
    0.0001250,
    0.0001563,
    0.0001786,
    0.0002083,
    0.0002500,
    0.0002778,
]

#: Fixed rates of the remaining files: files 2-3 at 0.0000962/s and files
#: 4-9 at 0.0001042/s, as described in Section V-B.
FIXED_RATE_FILES_2_3 = 0.0000962
FIXED_RATE_FILES_4_9 = 0.0001042


@dataclass
class SweepPoint:
    """Cache allocation at one arrival rate of the first two files."""

    rate_first_two: float
    chunks_first_two: int
    chunks_files_2_3: int
    chunks_last_six: int
    total_cached: int
    simulated_latency: Optional[float] = None


@dataclass
class Fig6Result:
    """The full arrival-rate sweep."""

    points: List[SweepPoint] = field(default_factory=list)
    cache_capacity: int = 0

    def first_two_series(self) -> List[int]:
        """Chunks cached for the first two files across the sweep."""
        return [point.chunks_first_two for point in self.points]

    def last_six_series(self) -> List[int]:
        """Chunks cached for the last six files across the sweep."""
        return [point.chunks_last_six for point in self.points]


def _arrival_rates(rate_first_two: float) -> List[float]:
    rates = [rate_first_two, rate_first_two]
    rates += [FIXED_RATE_FILES_2_3] * 2
    rates += [FIXED_RATE_FILES_4_9] * 6
    return rates


def run_for_sweep_rate(
    rate: float,
    cache_capacity: int = 10,
    rate_scale: float = 80.0,
    tolerance: float = 0.001,
    seed: int = 2016,
    simulate: bool = False,
    engine: str = "batch",
    horizon: float = 5000.0,
) -> SweepPoint:
    """Solve one sweep point: the allocation at one first-two rate."""
    model = ten_file_model(
        cache_capacity=cache_capacity,
        arrival_rates=_arrival_rates(rate),
        placement_mode="split",
        seed=seed,
        rate_scale=rate_scale,
    )
    optimizer = CacheOptimizer(model, tolerance=tolerance)
    placement = optimizer.optimize().placement
    cached = placement.cached_chunks()
    chunks_first_two = cached["file-0"] + cached["file-1"]
    chunks_files_2_3 = cached["file-2"] + cached["file-3"]
    chunks_last_six = sum(cached[f"file-{index}"] for index in range(4, 10))
    simulated_latency: Optional[float] = None
    if simulate:
        simulator = StorageSimulator(model, placement, engine=engine)
        config = SimulationConfig(horizon=horizon, seed=seed, warmup=horizon * 0.1)
        simulated_latency = simulator.run(config).mean_latency()
    return SweepPoint(
        rate_first_two=rate,
        chunks_first_two=chunks_first_two,
        chunks_files_2_3=chunks_files_2_3,
        chunks_last_six=chunks_last_six,
        total_cached=placement.total_cached_chunks,
        simulated_latency=simulated_latency,
    )


@deprecated_entry_point("fig6")
@register_experiment(
    "fig6",
    title="Placement and arrival-rate impact (Fig. 6)",
    description="cache allocation shift as two files heat up on the 10-file model",
)
def run(
    sweep_rates: Sequence[float] = tuple(PAPER_SWEEP_RATES),
    cache_capacity: int = 10,
    rate_scale: float = 80.0,
    tolerance: float = 0.001,
    seed: int = 2016,
    simulate: bool = False,
    engine: str = "batch",
    horizon: float = 5000.0,
    jobs: Optional[int] = None,
    cache: CacheLike = None,
    progress: ProgressLike = None,
) -> Fig6Result:
    """Run the Fig. 6 placement/arrival-rate sweep (parallel over rates).

    ``rate_scale`` plays the same role as in the Fig. 5 experiment: the
    Table rates are scaled so that queueing (and hence caching) matters on a
    10-file system without background load, while preserving the relative
    ordering the figure is about.  With ``simulate=True`` each sweep point's
    optimized placement is additionally replayed through the storage
    simulator (``engine`` picks the backend, batch by default) and the
    simulated mean latency recorded per point.
    """
    params = {
        "cache_capacity": cache_capacity,
        "rate_scale": rate_scale,
        "tolerance": tolerance,
        "seed": seed,
        "simulate": simulate,
        "engine": engine,
        "horizon": horizon,
    }
    encode, decode = dataclass_codec(SweepPoint)
    points = sweep_map(
        functools.partial(run_for_sweep_rate, **params),
        [float(rate) for rate in sweep_rates],
        jobs=jobs,
        label="fig6",
        progress=progress,
        cache=cache,
        cache_key=experiment_cache_key("fig6", params),
        encode=encode,
        decode=decode,
    )
    return Fig6Result(points=points, cache_capacity=cache_capacity)


def format_result(result: Fig6Result) -> str:
    """Render the sweep as the grouped bars of Fig. 6."""
    lines = [
        "Fig. 6 -- cache allocation vs arrival rate of the first two files "
        f"(cache capacity = {result.cache_capacity} chunks)",
        f"{'rate (first two)':>18} {'first two':>10} {'files 2-3':>10} "
        f"{'last six':>10} {'total':>7}",
    ]
    for point in result.points:
        lines.append(
            f"{point.rate_first_two:>18.7f} {point.chunks_first_two:>10} "
            f"{point.chunks_files_2_3:>10} {point.chunks_last_six:>10} "
            f"{point.total_cached:>7}"
        )
    lines.append(
        "expected shape: first-two allocation grows with their arrival rate, "
        "displacing the last-six files' chunks"
    )
    return "\n".join(lines)
