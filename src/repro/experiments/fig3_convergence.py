"""Fig. 3: convergence of Algorithm 1 for different cache sizes.

The paper runs the cache optimization on the default 1000-file model for
cache sizes C = 100..700 chunks, warm-starting each size from the previous
one's converged solution, and plots the objective (average latency bound)
against the iteration count; every run converges in fewer than 20 iterations
with a 0.01 s tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.api.deprecation import deprecated_entry_point
from repro.api.experiments import register_experiment
from repro.core.algorithm import CacheOptimizer
from repro.core.bound import SolutionState
from repro.core.vectorized import VectorizedSystem
from repro.exec import ProgressLike, sweep_scan
from repro.workloads.defaults import paper_default_model


@dataclass
class ConvergenceCurve:
    """Objective trace of one cache-size run."""

    cache_size: int
    objective_trace: List[float]
    converged: bool
    outer_iterations: int

    @property
    def final_latency(self) -> float:
        """The converged latency bound (seconds)."""
        return self.objective_trace[-1]


@dataclass
class Fig3Result:
    """All convergence curves of the experiment."""

    curves: List[ConvergenceCurve] = field(default_factory=list)
    num_files: int = 0
    tolerance: float = 0.01

    def max_iterations(self) -> int:
        """Largest iteration count over all cache sizes."""
        return max(curve.outer_iterations for curve in self.curves)


@deprecated_entry_point("fig3")
@register_experiment(
    "fig3",
    title="Convergence of Algorithm 1 (Fig. 3)",
    description="objective trace of the alternating minimization per cache size",
    scales={"fast": {"cache_sizes": (20, 40, 60, 80, 100), "num_files": 100}},
)
def run(
    cache_sizes: Sequence[int] = (100, 200, 300, 400, 500, 600, 700),
    num_files: int = 1000,
    tolerance: float = 0.01,
    seed: int = 2016,
    pi_max_iterations: int = 80,
    rounding_fraction: float = 0.3,
    progress: ProgressLike = None,
) -> Fig3Result:
    """Run the Fig. 3 convergence experiment.

    Parameters
    ----------
    cache_sizes:
        Cache sizes (in chunks) to sweep; the converged solution of each size
        warm-starts the next, exactly as in the paper.  The chain is
        inherently sequential (each point's warm start IS the previous
        solution), so it runs as a ``sweep_scan``, never in parallel.
    num_files:
        Number of files (1000 in the paper; smaller values give a faster,
        shape-preserving run for CI).
    """
    base_model = paper_default_model(
        num_files=num_files, cache_capacity=cache_sizes[0], seed=seed
    )

    def solve_size(cache_size, carry):
        warm_start, system = carry if carry is not None else (None, None)
        # One model instance and one compiled system serve the whole sweep:
        # only the cache capacity changes between the sizes.
        model = base_model.copy_with_cache_capacity(cache_size)
        optimizer = CacheOptimizer(
            model,
            tolerance=tolerance,
            pi_max_iterations=pi_max_iterations,
            rounding_fraction=rounding_fraction,
            system=system,
        )
        outcome = optimizer.optimize(initial_state=warm_start)
        curve = ConvergenceCurve(
            cache_size=cache_size,
            objective_trace=list(outcome.objective_trace),
            converged=outcome.converged,
            outer_iterations=outcome.outer_iterations,
        )
        # Warm-start the next size from this converged solution.
        placement = outcome.placement
        next_start = SolutionState(
            probabilities=[
                dict(entry.scheduling_probabilities) for entry in placement.files
            ],
            z_values=[0.0] * model.num_files,
        )
        return curve, (next_start, optimizer.system)

    curves = sweep_scan(
        solve_size, list(cache_sizes), label="fig3", progress=progress
    )
    return Fig3Result(curves=curves, num_files=num_files, tolerance=tolerance)


def format_result(result: Fig3Result) -> str:
    """Render the convergence curves as the series the paper plots."""
    lines = [
        f"Fig. 3 -- convergence of Algorithm 1 "
        f"(r={result.num_files} files, tolerance={result.tolerance})",
        f"{'C (chunks)':>12} {'iterations':>11} {'final latency (s)':>18}  trace",
    ]
    for curve in result.curves:
        trace = ", ".join(f"{value:.2f}" for value in curve.objective_trace)
        lines.append(
            f"{curve.cache_size:>12} {curve.outer_iterations:>11} "
            f"{curve.final_latency:>18.3f}  [{trace}]"
        )
    lines.append(
        f"max iterations over all cache sizes: {result.max_iterations()} "
        "(paper: < 20)"
    )
    return "\n".join(lines)
