"""Fig. 9 / Table IV: chunk service-time distribution per chunk size.

The paper measures the read service time of chunks of 1, 4, 16, 64 and
256 MB at the HDD-backed OSDs of its testbed, plots the CDFs (Fig. 9) and
tabulates the mean and variance of each size (Table IV); those moments feed
the optimization.  The emulated cluster draws its OSD service times from
distributions fitted to exactly those moments, so this experiment samples
the emulated devices, rebuilds the empirical CDFs and compares the sample
moments against the table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.api.deprecation import deprecated_entry_point
from repro.api.experiments import register_experiment
from repro.cluster.devices import HDD_SERVICE_TABLE, hdd_service_for_chunk_size


@dataclass
class ServiceTimeCdf:
    """Empirical CDF of one chunk size's service time."""

    chunk_size_mb: int
    samples_ms: np.ndarray
    table_mean_ms: float
    table_variance_ms2: float

    @property
    def sample_mean_ms(self) -> float:
        """Mean of the sampled service times."""
        return float(self.samples_ms.mean())

    @property
    def sample_variance_ms2(self) -> float:
        """Variance of the sampled service times."""
        return float(self.samples_ms.var())

    def cdf_at(self, value_ms: float) -> float:
        """Empirical CDF evaluated at ``value_ms``."""
        return float(np.mean(self.samples_ms <= value_ms))

    def percentile(self, q: float) -> float:
        """Latency percentile of the sample."""
        return float(np.percentile(self.samples_ms, q))


@dataclass
class Fig9Result:
    """Empirical CDFs for every measured chunk size."""

    cdfs: List[ServiceTimeCdf] = field(default_factory=list)
    samples_per_size: int = 0

    def table_iv_rows(self) -> List[Dict[str, float]]:
        """Rows comparing sampled vs published moments (Table IV)."""
        rows = []
        for cdf in self.cdfs:
            rows.append(
                {
                    "chunk_size_mb": cdf.chunk_size_mb,
                    "paper_mean_ms": cdf.table_mean_ms,
                    "measured_mean_ms": cdf.sample_mean_ms,
                    "paper_variance": cdf.table_variance_ms2,
                    "measured_variance": cdf.sample_variance_ms2,
                }
            )
        return rows


def _simulated_service_samples(
    service, samples_per_size: int, seed: int, engine: str, utilization: float = 0.02
) -> np.ndarray:
    """Draw service samples by replaying reads through a simulation engine.

    A single (1,1)-coded probe file on one OSD-like node is read at low
    utilization, so the recorded per-request latencies are (almost pure)
    service-time draws from the emulated device -- the full read path of the
    chosen engine rather than a direct call to ``service.sample``.
    """
    from repro.core.model import FileSpec, StorageSystemModel
    from repro.simulation.simulator import SimulationConfig, StorageSimulator

    arrival_rate = utilization / service.mean
    model = StorageSystemModel(
        services=[service],
        files=[
            FileSpec(
                file_id="probe",
                n=1,
                k=1,
                placement=[0],
                arrival_rate=arrival_rate,
            )
        ],
        cache_capacity=0,
    )
    horizon = samples_per_size / arrival_rate
    simulator = StorageSimulator(model, placement=None, engine=engine)
    result = simulator.run(SimulationConfig(horizon=horizon, seed=seed))
    return result.metrics.all_latencies()


@deprecated_entry_point("fig9")
@register_experiment(
    "fig9",
    title="Chunk service-time CDF (Fig. 9 / Table IV)",
    description="emulated HDD service-time distributions against the measured moments",
    scales={"fast": {"samples_per_size": 5000}, "paper": {"samples_per_size": 20000}},
)
def run(
    chunk_sizes_mb: Sequence[int] = (1, 4, 16, 64, 256),
    samples_per_size: int = 5000,
    seed: int = 2016,
    via_simulator: bool = False,
    engine: str = "batch",
) -> Fig9Result:
    """Sample the emulated HDD service-time distributions.

    With ``via_simulator=True`` the samples are produced by replaying reads
    of a single-chunk probe file through the chosen simulation ``engine``
    instead of sampling the distribution object directly, exercising the
    full emulated read path.
    """
    rng = np.random.default_rng(seed)
    result = Fig9Result(samples_per_size=samples_per_size)
    for chunk_size in chunk_sizes_mb:
        service = hdd_service_for_chunk_size(chunk_size)
        if via_simulator:
            samples = _simulated_service_samples(
                service, samples_per_size, seed, engine
            )
        else:
            samples = np.asarray(
                service.sample(rng, size=samples_per_size), dtype=float
            )
        table_row = HDD_SERVICE_TABLE[chunk_size]
        result.cdfs.append(
            ServiceTimeCdf(
                chunk_size_mb=chunk_size,
                samples_ms=samples,
                table_mean_ms=table_row["mean_ms"],
                table_variance_ms2=table_row["variance_ms2"],
            )
        )
    return result


def format_result(result: Fig9Result) -> str:
    """Render Table IV (paper vs emulated moments) and CDF landmarks."""
    lines = [
        "Fig. 9 / Table IV -- chunk service time at HDD OSDs "
        f"({result.samples_per_size} samples per size)",
        f"{'chunk (MB)':>11} {'paper mean':>11} {'emul mean':>11} "
        f"{'paper var':>12} {'emul var':>12} {'p50 (ms)':>10} {'p95 (ms)':>10}",
    ]
    for cdf in result.cdfs:
        lines.append(
            f"{cdf.chunk_size_mb:>11} {cdf.table_mean_ms:>11.2f} "
            f"{cdf.sample_mean_ms:>11.2f} {cdf.table_variance_ms2:>12.2f} "
            f"{cdf.sample_variance_ms2:>12.2f} {cdf.percentile(50):>10.2f} "
            f"{cdf.percentile(95):>10.2f}"
        )
    return "\n".join(lines)
