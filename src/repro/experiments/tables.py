"""Tables of the evaluation section: Table III, Table IV and Table V.

Tables I (time-bin arrival rates) and II (COSBench configuration) are pure
inputs and live in :mod:`repro.workloads`; this module regenerates the
measurement tables from the emulated devices and renders all of them.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.api.deprecation import deprecated_entry_point
from repro.api.experiments import register_experiment
from repro.cluster.devices import (
    HDD_SERVICE_TABLE,
    SSD_CACHE_LATENCY_TABLE,
    hdd_service_for_chunk_size,
    ssd_service_for_chunk_size,
)
from repro.exec import CacheLike, ProgressLike, spawn_point_seeds, sweep_map
from repro.experiments._sweep import dataclass_codec, experiment_cache_key
from repro.workloads.traces import TABLE_I_ARRIVAL_RATES, TABLE_III_WORKLOAD


@dataclass
class TableIVRow:
    """One row of Table IV: measured chunk service time at HDD OSDs."""

    chunk_size_mb: int
    paper_mean_ms: float
    paper_variance: float
    emulated_mean_ms: float
    emulated_variance: float


@dataclass
class TableVRow:
    """One row of Table V: chunk read latency from the SSD cache."""

    chunk_size_mb: int
    paper_latency_ms: float
    emulated_latency_ms: float


@dataclass
class TablesResult:
    """All regenerated tables."""

    table_iii: Dict[int, float] = field(default_factory=dict)
    table_iv: List[TableIVRow] = field(default_factory=list)
    table_v: List[TableVRow] = field(default_factory=list)


def run_table_iv_row(point: Tuple[int, int], samples: int) -> TableIVRow:
    """Sample one Table IV row from its own spawned seed.

    Rows used to draw from one shared generator in sequence; giving each
    row an independent ``SeedSequence``-spawned seed (keyed by row index)
    makes the rows order-independent, so the sweep parallelizes and each
    row is individually cacheable.
    """
    chunk_size, row_seed = point
    row = HDD_SERVICE_TABLE[chunk_size]
    service = hdd_service_for_chunk_size(chunk_size)
    rng = np.random.default_rng(row_seed)
    draws = np.asarray(service.sample(rng, size=samples), dtype=float)
    return TableIVRow(
        chunk_size_mb=chunk_size,
        paper_mean_ms=row["mean_ms"],
        paper_variance=row["variance_ms2"],
        emulated_mean_ms=float(draws.mean()),
        emulated_variance=float(draws.var()),
    )


@deprecated_entry_point("tables")
@register_experiment(
    "tables",
    title="Tables I, III, IV, V",
    description="workload and device measurement tables regenerated from the emulation",
    scales={"fast": {"samples": 5000}, "paper": {"samples": 20000}},
)
def run(
    samples: int = 20000,
    seed: int = 2016,
    jobs: Optional[int] = None,
    cache: CacheLike = None,
    progress: ProgressLike = None,
) -> TablesResult:
    """Regenerate Tables III-V (sampling the emulated devices for IV/V)."""
    chunk_sizes = sorted(HDD_SERVICE_TABLE)
    row_seeds = spawn_point_seeds(seed, len(chunk_sizes))
    points = list(zip(chunk_sizes, row_seeds))
    encode, decode = dataclass_codec(TableIVRow)
    table_iv = sweep_map(
        functools.partial(run_table_iv_row, samples=samples),
        points,
        jobs=jobs,
        label="tables",
        progress=progress,
        cache=cache,
        cache_key=experiment_cache_key("tables", {"samples": samples}),
        encode=encode,
        decode=decode,
    )
    result = TablesResult(table_iii=dict(TABLE_III_WORKLOAD), table_iv=table_iv)
    for chunk_size, latency in sorted(SSD_CACHE_LATENCY_TABLE.items()):
        service = ssd_service_for_chunk_size(chunk_size)
        result.table_v.append(
            TableVRow(
                chunk_size_mb=chunk_size,
                paper_latency_ms=latency,
                emulated_latency_ms=float(service.mean),
            )
        )
    return result


def format_result(result: TablesResult) -> str:
    """Render Tables I and III-V."""
    lines = ["Table I -- arrival rates (requests/s) of 10 files in 3 time bins"]
    file_ids = sorted(TABLE_I_ARRIVAL_RATES[0], key=lambda f: int(f.split("-")[1]))
    header = f"{'bin':>4} " + " ".join(f"{fid.split('-')[1]:>9}" for fid in file_ids)
    lines.append(header)
    for index, rates in enumerate(TABLE_I_ARRIVAL_RATES):
        lines.append(
            f"{index + 1:>4} "
            + " ".join(f"{rates[fid]:>9.6f}" for fid in file_ids)
        )

    lines.append("")
    lines.append("Table III -- 24-hour workload: per-object read arrival rate by size")
    lines.append(f"{'object size (MB)':>17} {'arrival rate (req/s)':>21}")
    for size, rate in sorted(result.table_iii.items()):
        lines.append(f"{size:>17} {rate:>21.8f}")

    lines.append("")
    lines.append("Table IV -- chunk service time at HDD OSDs (ms)")
    lines.append(
        f"{'chunk (MB)':>11} {'paper mean':>11} {'emul mean':>11} "
        f"{'paper var':>12} {'emul var':>12}"
    )
    for row in result.table_iv:
        lines.append(
            f"{row.chunk_size_mb:>11} {row.paper_mean_ms:>11.2f} "
            f"{row.emulated_mean_ms:>11.2f} {row.paper_variance:>12.2f} "
            f"{row.emulated_variance:>12.2f}"
        )

    lines.append("")
    lines.append("Table V -- chunk read latency from the SSD cache (ms)")
    lines.append(f"{'chunk (MB)':>11} {'paper':>9} {'emulated':>9}")
    for row in result.table_v:
        lines.append(
            f"{row.chunk_size_mb:>11} {row.paper_latency_ms:>9.2f} "
            f"{row.emulated_latency_ms:>9.2f}"
        )
    return "\n".join(lines)
