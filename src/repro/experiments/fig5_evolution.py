"""Fig. 5 / Table I: evolution of cache content across three time bins.

Ten files are simulated over three time bins whose per-file arrival rates
follow Table I; the cache placement is re-optimized at every bin boundary.
The paper's observation is that the cache tracks the hot files of each bin
(files with increased rates gain chunks, cooled-down files lose them), but
placement and server speeds also matter, so the hottest files are not always
fully cached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.api.deprecation import deprecated_entry_point
from repro.api.experiments import register_experiment
from repro.control import OnlineController
from repro.exec import ProgressLike, sweep_scan
from repro.simulation.simulator import SimulationConfig, StorageSimulator
from repro.workloads.defaults import ten_file_model
from repro.workloads.traces import TABLE_I_ARRIVAL_RATES, table_i_time_bins


@dataclass
class Fig5Result:
    """Cache contents per time bin."""

    cache_per_bin: List[Dict[str, int]] = field(default_factory=list)
    arrival_rates_per_bin: List[Dict[str, float]] = field(default_factory=list)
    latency_per_bin: List[float] = field(default_factory=list)
    simulated_latency_per_bin: List[float] = field(default_factory=list)
    cache_capacity: int = 0

    def chunks_for(self, file_id: str) -> List[int]:
        """Cache allocation of one file across the bins."""
        return [bin_content.get(file_id, 0) for bin_content in self.cache_per_bin]


@deprecated_entry_point("fig5")
@register_experiment(
    "fig5",
    title="Cache content evolution over time bins (Fig. 5 / Table I)",
    description="per-bin optimal cache content under the Table-I rate shifts",
)
def run(
    cache_capacity: int = 10,
    rate_scale: float = 65.0,
    tolerance: float = 0.001,
    seed: int = 2016,
    simulate_bins: bool = False,
    engine: str = "batch",
    horizon: float = 5000.0,
    progress: ProgressLike = None,
) -> Fig5Result:
    """Run the three-time-bin cache-evolution experiment.

    Parameters
    ----------
    cache_capacity:
        Cache size in chunks shared by the ten files.
    rate_scale:
        Factor applied to the Table-I rates.  The raw rates produce an almost
        idle 10-file system in which caching is irrelevant; the paper's
        experiment (which keeps the 12-server testbed busy with background
        load) is emulated by scaling the ten files' rates so the relative
        popularity ordering of Table I is preserved while queueing matters.
    simulate_bins:
        Also replay each bin's placement through the storage simulator
        (under that bin's arrival rates) and record the simulated mean
        latency as a cross-check of the analytical per-bin bound.
    engine:
        Simulation engine for the per-bin replays (``"batch"`` default).
    horizon:
        Simulated duration of each bin replay, in seconds.
    """
    model = ten_file_model(
        cache_capacity=cache_capacity, seed=seed, rate_scale=rate_scale
    )
    controller = OnlineController(model, alternation_tolerance=tolerance)
    result = Fig5Result(cache_capacity=cache_capacity)

    # The controller carries its warm state from bin to bin, so the bins
    # form a sequential scan (the carry is the controller itself).
    def process_time_bin(time_bin, carry):
        scaled = {
            file_id: rate * rate_scale
            for file_id, rate in time_bin.arrival_rates.items()
        }
        record = carry.process_bin(scaled, index=time_bin.index)
        simulated = None
        if simulate_bins:
            bin_model = model.copy_with_arrival_rates(scaled)
            simulator = StorageSimulator(bin_model, record.placement, engine=engine)
            config = SimulationConfig(
                horizon=horizon, seed=seed, warmup=horizon * 0.1
            )
            simulated = simulator.run(config).mean_latency()
        return (scaled, record, simulated), carry

    for scaled, record, simulated in sweep_scan(
        process_time_bin,
        table_i_time_bins(),
        carry=controller,
        label="fig5",
        progress=progress,
    ):
        result.cache_per_bin.append(record.placement.cached_chunks())
        result.arrival_rates_per_bin.append(dict(scaled))
        result.latency_per_bin.append(record.placement.objective)
        if simulated is not None:
            result.simulated_latency_per_bin.append(simulated)
    return result


def format_result(result: Fig5Result) -> str:
    """Render the per-bin cache contents (the bars of Fig. 5)."""
    file_ids = sorted(
        {file_id for bin_content in result.cache_per_bin for file_id in bin_content},
        key=lambda name: int(name.split("-")[1]),
    )
    lines = [
        "Fig. 5 / Table I -- cache content evolution over 3 time bins "
        f"(cache capacity = {result.cache_capacity} chunks)",
        f"{'file':>8} " + " ".join(f"bin{b + 1:>2}" for b in range(len(result.cache_per_bin))),
    ]
    for file_id in file_ids:
        chunks = result.chunks_for(file_id)
        lines.append(f"{file_id:>8} " + " ".join(f"{c:>4}" for c in chunks))
    lines.append(
        "latency per bin: "
        + ", ".join(f"{latency:.2f}s" for latency in result.latency_per_bin)
    )
    if result.simulated_latency_per_bin:
        lines.append(
            "simulated latency per bin: "
            + ", ".join(f"{latency:.2f}s" for latency in result.simulated_latency_per_bin)
        )
    return "\n".join(lines)


def hottest_files_per_bin(result: Fig5Result, top: int = 4) -> List[List[str]]:
    """The ``top`` most popular files of each bin (by that bin's rates)."""
    hottest = []
    for rates in result.arrival_rates_per_bin:
        ranked = sorted(rates, key=lambda file_id: rates[file_id], reverse=True)
        hottest.append(ranked[:top])
    return hottest


def table_i_rates() -> List[Dict[str, float]]:
    """The raw Table-I arrival rates (for reports and tests)."""
    return [dict(rates) for rates in TABLE_I_ARRIVAL_RATES]
