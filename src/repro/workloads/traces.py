"""Workload tables reproduced from the paper's evaluation section.

* ``TABLE_I_ARRIVAL_RATES`` -- the per-file arrival rates of the ten files in
  the three time bins used for the cache-evolution experiment (Table I /
  Fig. 5).
* ``TABLE_III_WORKLOAD`` -- the 24-hour production-trace summary: the most
  popular object sizes and the average per-object read arrival rate of each
  size (Table III), which drives the prototype benchmarks (Figs. 10-11).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.timebins import TimeBin
from repro.exceptions import WorkloadError

#: Table I: request arrival rates (requests/second) of the ten files in the
#: three consecutive time bins of the cache-evolution experiment.
TABLE_I_ARRIVAL_RATES: List[Dict[str, float]] = [
    {  # time bin 1
        "file-0": 0.000156,
        "file-1": 0.000156,
        "file-2": 0.000125,
        "file-3": 0.000167,
        "file-4": 0.000104,
        "file-5": 0.000156,
        "file-6": 0.000156,
        "file-7": 0.000125,
        "file-8": 0.000167,
        "file-9": 0.000104,
    },
    {  # time bin 2: files 3/8 cool down, files 4/9 heat up
        "file-0": 0.000156,
        "file-1": 0.000156,
        "file-2": 0.000125,
        "file-3": 0.000125,
        "file-4": 0.000125,
        "file-5": 0.000156,
        "file-6": 0.000156,
        "file-7": 0.000125,
        "file-8": 0.000125,
        "file-9": 0.000125,
    },
    {  # time bin 3: files 1/6 become the hottest, files 0/5 cool down
        "file-0": 0.000125,
        "file-1": 0.00025,
        "file-2": 0.000125,
        "file-3": 0.000167,
        "file-4": 0.000104,
        "file-5": 0.000125,
        "file-6": 0.00025,
        "file-7": 0.000125,
        "file-8": 0.000167,
        "file-9": 0.000104,
    },
]

#: Table III: the 24-hour real storage workload -- object sizes (MB) and the
#: average read request arrival rate per object of that size (requests/s).
TABLE_III_WORKLOAD: Dict[int, float] = {
    4: 0.00029868,
    16: 0.00010824,
    64: 0.00051852,
    256: 0.0000078,
    1024: 0.0000024,
}


def table_i_time_bins(duration: float = 100.0) -> List[TimeBin]:
    """The three time bins of Table I as :class:`TimeBin` objects."""
    return [
        TimeBin(index=index + 1, duration=duration, arrival_rates=dict(rates))
        for index, rates in enumerate(TABLE_I_ARRIVAL_RATES)
    ]


def table_iii_arrival_rates(
    object_size_mb: int,
    num_objects: int,
    rate_scale: float = 1.0,
) -> Dict[str, float]:
    """Per-object arrival rates for a Table-III object size.

    Each of the ``num_objects`` active objects of the given size receives
    the table's average per-object rate (scaled by ``rate_scale``); the
    paper's prototype uses 1000 active objects per size.
    """
    if object_size_mb not in TABLE_III_WORKLOAD:
        raise WorkloadError(
            f"object size {object_size_mb} MB not in Table III; "
            f"known sizes: {sorted(TABLE_III_WORKLOAD)}"
        )
    if num_objects <= 0:
        raise WorkloadError("num_objects must be positive")
    rate = TABLE_III_WORKLOAD[object_size_mb] * rate_scale
    return {f"obj-{object_size_mb}mb-{index}": rate for index in range(num_objects)}


def aggregate_rate_to_per_object(
    aggregate_rate: float, num_objects: int
) -> Dict[str, float]:
    """Split an aggregate arrival rate evenly over ``num_objects`` objects.

    Fig. 11 sweeps aggregate read rates of 0.5-8.0 requests/s over 1000
    64-MB objects; this helper produces the per-object rates for that sweep.
    """
    if aggregate_rate < 0:
        raise WorkloadError("aggregate rate must be non-negative")
    if num_objects <= 0:
        raise WorkloadError("num_objects must be positive")
    per_object = aggregate_rate / num_objects
    return {f"obj-{index}": per_object for index in range(num_objects)}
