"""Deprecated facade over :mod:`repro.workloads.catalog` (Table I/III rates).

The rate-table helpers moved to :mod:`repro.workloads.catalog` when every
workload was unified behind the :class:`~repro.workloads.base.Workload`
protocol; direct calls through this module keep working but emit a
:class:`DeprecationWarning`.  Real trace files are ingested by
:mod:`repro.workloads.ingest` (``Scenario(workload="trace")``), which is
unrelated to these paper tables.
"""

from __future__ import annotations

from repro.api.deprecation import deprecated
from repro.workloads.catalog import (  # noqa: F401  (constant re-exports)
    TABLE_I_ARRIVAL_RATES,
    TABLE_III_WORKLOAD,
)
from repro.workloads.catalog import (
    aggregate_rate_to_per_object as _aggregate_rate_to_per_object,
)
from repro.workloads.catalog import table_i_time_bins as _table_i_time_bins
from repro.workloads.catalog import table_iii_arrival_rates as _table_iii_arrival_rates

table_i_time_bins = deprecated(
    "repro.workloads.catalog.table_i_time_bins",
    name="repro.workloads.traces.table_i_time_bins",
)(_table_i_time_bins)

table_iii_arrival_rates = deprecated(
    "repro.workloads.catalog.table_iii_arrival_rates",
    name="repro.workloads.traces.table_iii_arrival_rates",
)(_table_iii_arrival_rates)

aggregate_rate_to_per_object = deprecated(
    "repro.workloads.catalog.aggregate_rate_to_per_object",
    name="repro.workloads.traces.aggregate_rate_to_per_object",
)(_aggregate_rate_to_per_object)

__all__ = [
    "TABLE_I_ARRIVAL_RATES",
    "TABLE_III_WORKLOAD",
    "table_i_time_bins",
    "table_iii_arrival_rates",
    "aggregate_rate_to_per_object",
]
