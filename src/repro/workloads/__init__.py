"""Workload definitions behind the unified :class:`Workload` protocol.

Every workload -- the paper's stationary defaults, the non-stationary
synthetic zoo (diurnal cycles, flash crowds, popularity drift) and
ingested real traces -- implements the same protocol: ``model()`` yields
the stationary system description and ``sample(rng, horizon)`` draws a
:class:`RequestStream` the engines replay.  Select workloads by name via
``Scenario(workload=...)``; the legacy free functions in
:mod:`repro.workloads.defaults` / :mod:`repro.workloads.traces` remain as
deprecation shims over :mod:`repro.workloads.catalog`.
"""

from repro.workloads.base import (
    RequestStream,
    StationaryWorkload,
    Workload,
    as_workload,
    zipf_weights,
)
from repro.workloads.catalog import (
    DEFAULT_ARRIVAL_RATE_PATTERN,
    DEFAULT_CHUNK_SIZE_MB,
    DEFAULT_CODE,
    DEFAULT_SERVICE_RATES,
    TABLE_I_ARRIVAL_RATES,
    TABLE_III_WORKLOAD,
    aggregate_rate_to_per_object,
    paper_default_model,
    table_i_time_bins,
    table_iii_arrival_rates,
    ten_file_model,
)
from repro.workloads.generator import CosbenchWorkload, WorkloadStage
from repro.workloads.rates import SlidingWindowRateEstimator
from repro.workloads.zoo import (
    DiurnalWorkload,
    FlashCrowdWorkload,
    PopularityDriftWorkload,
)

__all__ = [
    # protocol
    "Workload",
    "RequestStream",
    "StationaryWorkload",
    "as_workload",
    "zipf_weights",
    # catalog (canonical constants and builders)
    "DEFAULT_ARRIVAL_RATE_PATTERN",
    "DEFAULT_CHUNK_SIZE_MB",
    "DEFAULT_CODE",
    "DEFAULT_SERVICE_RATES",
    "paper_default_model",
    "ten_file_model",
    "TABLE_I_ARRIVAL_RATES",
    "TABLE_III_WORKLOAD",
    "table_i_time_bins",
    "table_iii_arrival_rates",
    "aggregate_rate_to_per_object",
    # the zoo
    "DiurnalWorkload",
    "FlashCrowdWorkload",
    "PopularityDriftWorkload",
    # misc drivers
    "SlidingWindowRateEstimator",
    "CosbenchWorkload",
    "WorkloadStage",
]
