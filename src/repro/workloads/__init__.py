"""Workload definitions: the paper's default simulation setup, the Table-I
time-bin rates, the Table-III 24-hour object-size workload, a COSBench-style
benchmark driver and a sliding-window arrival-rate estimator.
"""

from repro.workloads.defaults import (
    DEFAULT_ARRIVAL_RATE_PATTERN,
    DEFAULT_SERVICE_RATES,
    paper_default_model,
    ten_file_model,
)
from repro.workloads.traces import (
    TABLE_I_ARRIVAL_RATES,
    TABLE_III_WORKLOAD,
    table_i_time_bins,
    table_iii_arrival_rates,
)
from repro.workloads.rates import SlidingWindowRateEstimator
from repro.workloads.generator import CosbenchWorkload, WorkloadStage

__all__ = [
    "DEFAULT_ARRIVAL_RATE_PATTERN",
    "DEFAULT_SERVICE_RATES",
    "paper_default_model",
    "ten_file_model",
    "TABLE_I_ARRIVAL_RATES",
    "TABLE_III_WORKLOAD",
    "table_i_time_bins",
    "table_iii_arrival_rates",
    "SlidingWindowRateEstimator",
    "CosbenchWorkload",
    "WorkloadStage",
]
