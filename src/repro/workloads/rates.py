"""Sliding-window arrival-rate estimation and time-bin detection.

The paper assumes a rate monitoring oracle that detects when per-file
arrival rates change enough to warrant a new time bin (Section III and the
future-work note in Section VI).  This module implements the simple
sliding-window estimator the paper describes: request arrivals are counted
in a moving window, per-file rates are the windowed averages, and a new time
bin is triggered when any file's estimated rate moves by more than a
threshold relative to the rate used for the current bin.

Estimates divide by the *effective* window ``min(window, elapsed)`` (time
since the first recorded arrival), so they are well-defined and unbiased in
every degenerate regime: an empty window yields rate 0, zero elapsed time
falls back to the configured window as the divisor (finite, never a
division by zero), and a window longer than the observed stream no longer
deflates the estimate by the unobserved remainder.

For high-throughput streams see the vectorized, chunk-consuming
generalization :class:`repro.control.estimator.StreamingRateEstimator`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.exceptions import WorkloadError


@dataclass
class RateChangeEvent:
    """A detected rate change that opens a new time bin."""

    time: float
    file_id: str
    previous_rate: float
    new_rate: float


class SlidingWindowRateEstimator:
    """Estimates per-file arrival rates over a sliding time window.

    Parameters
    ----------
    window:
        Window length in seconds.  Small windows react quickly but are noisy;
        large windows low-pass filter the estimate (the trade-off the paper
        discusses in Section III).
    change_threshold:
        Relative change in a file's estimated rate (compared with the rate
        frozen at the start of the current time bin) that triggers a new
        time bin.
    min_observations:
        Minimum number of arrivals of a file inside the window before its
        estimate is considered trustworthy.
    """

    def __init__(
        self,
        window: float,
        change_threshold: float = 0.5,
        min_observations: int = 5,
    ):
        if window <= 0:
            raise WorkloadError("window must be positive")
        if change_threshold <= 0:
            raise WorkloadError("change_threshold must be positive")
        if min_observations < 1:
            raise WorkloadError("min_observations must be at least 1")
        self._window = float(window)
        self._change_threshold = float(change_threshold)
        self._min_observations = int(min_observations)
        self._arrivals: Dict[str, Deque[float]] = {}
        self._bin_rates: Dict[str, float] = {}
        self._events: List[RateChangeEvent] = []
        self._current_bin = 1
        self._first_time: Optional[float] = None
        self._last_time: Optional[float] = None

    @property
    def window(self) -> float:
        """Window length in seconds."""
        return self._window

    @property
    def current_bin(self) -> int:
        """Index of the current time bin (starts at 1)."""
        return self._current_bin

    @property
    def change_events(self) -> List[RateChangeEvent]:
        """All detected rate-change events."""
        return list(self._events)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def record_arrival(self, file_id: str, time: float) -> Optional[RateChangeEvent]:
        """Record one request arrival; returns a change event if one fires."""
        if time < 0:
            raise WorkloadError("arrival time must be non-negative")
        queue = self._arrivals.setdefault(file_id, deque())
        if queue and time < queue[-1]:
            raise WorkloadError("arrivals must be recorded in non-decreasing time order")
        queue.append(time)
        if self._first_time is None:
            self._first_time = time
        self._last_time = time if self._last_time is None else max(self._last_time, time)
        self._expire(file_id, time)
        return self._maybe_trigger(file_id, time)

    def _expire(self, file_id: str, now: float) -> None:
        queue = self._arrivals[file_id]
        cutoff = now - self._window
        while queue and queue[0] < cutoff:
            queue.popleft()

    def _effective_window(self, now: Optional[float] = None) -> float:
        """The divisor for rate estimates: ``min(window, elapsed)``.

        ``elapsed`` runs from the first recorded arrival; before anything
        was recorded, or when no time has elapsed yet, the configured
        window is used so the divisor is always finite and positive.
        """
        if self._first_time is None:
            return self._window
        if now is None:
            now = self._last_time
        elapsed = float(now) - self._first_time
        effective = min(self._window, elapsed)
        return effective if effective > 0.0 else self._window

    def estimated_rate(self, file_id: str, now: Optional[float] = None) -> float:
        """Current rate estimate of ``file_id`` (arrivals / effective window)."""
        queue = self._arrivals.get(file_id)
        if not queue:
            return 0.0
        if now is not None:
            self._expire(file_id, now)
            queue = self._arrivals[file_id]
        return len(queue) / self._effective_window(now)

    def estimated_rates(self, now: Optional[float] = None) -> Dict[str, float]:
        """Windowed rate estimates of all observed files."""
        return {
            file_id: self.estimated_rate(file_id, now) for file_id in self._arrivals
        }

    # ------------------------------------------------------------------
    # Time-bin logic
    # ------------------------------------------------------------------

    def freeze_bin_rates(self, rates: Dict[str, float]) -> None:
        """Record the per-file rates used for the current bin's optimization."""
        self._bin_rates = dict(rates)

    def _maybe_trigger(self, file_id: str, now: float) -> Optional[RateChangeEvent]:
        queue = self._arrivals[file_id]
        if len(queue) < self._min_observations:
            return None
        estimate = len(queue) / self._effective_window(now)
        reference = self._bin_rates.get(file_id)
        if reference is None or reference == 0.0:
            # No reference yet: adopt the estimate silently.
            self._bin_rates[file_id] = estimate
            return None
        relative_change = abs(estimate - reference) / reference
        if relative_change <= self._change_threshold:
            return None
        event = RateChangeEvent(
            time=now, file_id=file_id, previous_rate=reference, new_rate=estimate
        )
        self._events.append(event)
        self._bin_rates[file_id] = estimate
        self._current_bin += 1
        return event

    def replay(
        self, arrivals: List[Tuple[float, str]]
    ) -> List[RateChangeEvent]:
        """Feed a chronological ``(time, file_id)`` stream; return fired events."""
        fired = []
        for time, file_id in arrivals:
            event = self.record_arrival(file_id, time)
            if event is not None:
                fired.append(event)
        return fired
