"""COSBench-style workload generator.

The paper benchmarks its Ceph testbed with COSBench workloads consisting of
an initial/prepare stage (100% writes, no clean-up) followed by timed read
stages at the Table-III arrival rates.  This module mirrors that structure
for the emulated cluster: a :class:`CosbenchWorkload` is a list of
:class:`WorkloadStage` objects, and :func:`CosbenchWorkload.run` executes it
against a :class:`~repro.cluster.cluster.CephLikeCluster`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.cluster import CephLikeCluster, ReadResult
from repro.exceptions import WorkloadError


@dataclass
class WorkloadStage:
    """One stage of a COSBench workload.

    Attributes
    ----------
    name:
        Stage label (``"prepare"``, ``"main"``...).
    operation:
        ``"write"`` or ``"read"``.
    duration_s:
        Stage duration in seconds (ignored for write stages, which simply
        populate every object once, mirroring COSBench prepare stages).
    arrival_rates:
        Per-object read arrival rates (read stages only).
    """

    name: str
    operation: str
    duration_s: float = 0.0
    arrival_rates: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.operation not in {"read", "write"}:
            raise WorkloadError(f"unknown operation {self.operation!r}")
        if self.operation == "read":
            if self.duration_s <= 0:
                raise WorkloadError("read stages need a positive duration")
            if not self.arrival_rates:
                raise WorkloadError("read stages need arrival rates")


@dataclass
class StageResult:
    """Result of one executed stage."""

    stage: WorkloadStage
    read_result: Optional[ReadResult] = None
    objects_written: int = 0


class CosbenchWorkload:
    """A multi-stage benchmark workload against the emulated cluster.

    Parameters
    ----------
    stages:
        The stages to execute in order.
    mode:
        ``"optimal"`` (equivalent-code pools) or ``"baseline"`` (LRU cache
        tier); must match how the cluster was set up.
    """

    def __init__(self, stages: List[WorkloadStage], mode: str):
        if mode not in {"optimal", "baseline"}:
            raise WorkloadError(f"unknown mode {mode!r}")
        if not stages:
            raise WorkloadError("a workload needs at least one stage")
        self._stages = list(stages)
        self._mode = mode

    @property
    def stages(self) -> List[WorkloadStage]:
        """The workload stages."""
        return list(self._stages)

    @property
    def mode(self) -> str:
        """Which cluster configuration the workload targets."""
        return self._mode

    def run(
        self,
        cluster: CephLikeCluster,
        object_pool_map: Optional[Dict[str, int]] = None,
        seed: Optional[int] = None,
    ) -> List[StageResult]:
        """Execute all stages against ``cluster``.

        Parameters
        ----------
        cluster:
            The emulated cluster.
        object_pool_map:
            Required in ``"optimal"`` mode: the object -> cache-allocation
            map produced by the optimization.
        """
        results: List[StageResult] = []
        prepared = False
        for stage in self._stages:
            if stage.operation == "write":
                if self._mode == "optimal":
                    if object_pool_map is None:
                        raise WorkloadError(
                            "optimal mode requires an object_pool_map for the write stage"
                        )
                    cluster.setup_optimal_caching(object_pool_map)
                    written = len(object_pool_map)
                else:
                    object_names = sorted(
                        {
                            name
                            for read_stage in self._stages
                            if read_stage.operation == "read"
                            for name in read_stage.arrival_rates
                        }
                    )
                    cluster.setup_lru_baseline(object_names)
                    written = len(object_names)
                prepared = True
                results.append(StageResult(stage=stage, objects_written=written))
            else:
                if not prepared:
                    raise WorkloadError(
                        "a write/prepare stage must run before any read stage"
                    )
                read_result = cluster.run_read_benchmark(
                    arrival_rates=stage.arrival_rates,
                    duration_s=stage.duration_s,
                    mode=self._mode,
                    seed=seed,
                )
                results.append(StageResult(stage=stage, read_result=read_result))
        return results


def standard_read_workload(
    arrival_rates: Dict[str, float],
    duration_s: float,
    mode: str,
) -> CosbenchWorkload:
    """The paper's standard two-stage workload: prepare (write) then read."""
    stages = [
        WorkloadStage(name="prepare", operation="write"),
        WorkloadStage(
            name="main",
            operation="read",
            duration_s=duration_s,
            arrival_rates=dict(arrival_rates),
        ),
    ]
    return CosbenchWorkload(stages, mode=mode)
