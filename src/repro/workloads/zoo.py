"""The workload zoo: non-stationary synthetic request-stream generators.

Three generators cover the canonical ways production traffic deviates from
the paper's stationary Poisson setup:

* :class:`DiurnalWorkload` -- every object's rate follows a common
  day/night cycle, ``rate_i(t) = base_i * (1 + amplitude * sin(2*pi*(t +
  phase) / period))``.  Sampled by exact thinning of a dominating
  homogeneous process (no discretization of the rate function).

* :class:`FlashCrowdWorkload` -- stationary background traffic plus a
  flash crowd: at ``flash_time`` a hot set of objects receives an extra
  aggregate rate ``spike_rate`` that decays exponentially with time
  constant ``decay``.  The spike component is thinned independently and
  merged with the background stream.

* :class:`PopularityDriftWorkload` -- the total rate is constant but the
  Zipf popularity ranking rotates over the object table every
  ``shift_every`` seconds, so the working set slowly migrates (the
  "popularity churn" pattern CDN caches see across days).

All three are seeded-deterministic (the stream is a pure function of the
generator state and horizon), expose the time-averaged rates through
``model()`` so Algorithm 1 and the baselines still optimize a stationary
description, and return :class:`~repro.workloads.base.RequestStream`
arrays the batch and replay engines consume directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.core.model import StorageSystemModel
from repro.exceptions import WorkloadError
from repro.workloads.base import RequestStream, Workload, zipf_weights
from repro.workloads.catalog import paper_default_model


def _merge_streams(
    parts_times: Tuple[np.ndarray, ...], parts_positions: Tuple[np.ndarray, ...]
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge independent component streams into one chronological stream."""
    times = np.concatenate(parts_times)
    positions = np.concatenate(parts_positions)
    order = np.argsort(times, kind="stable")
    return times[order], positions[order]


def _categorical(
    weights: np.ndarray, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Vectorised categorical draw: inverse-CDF via ``searchsorted``."""
    cdf = np.cumsum(weights)
    cdf[-1] = 1.0  # guard against round-off excluding the last object
    return np.searchsorted(cdf, rng.random(count), side="right").astype(np.int64)


@dataclass(frozen=True)
class _ZooWorkload(Workload):
    """Shared scaffolding: a lazily built paper-default backing model."""

    num_files: int = 100
    cache_capacity: int = 50
    code: Tuple[int, int] = (7, 4)
    seed: int = 2016
    name: str = ""
    stationary: bool = field(default=False, init=False)

    def _mean_rates(self) -> np.ndarray:
        """Per-object time-averaged arrival rates (requests/second)."""
        raise NotImplementedError

    def model(self) -> StorageSystemModel:
        """Stationary description with the time-averaged per-object rates."""
        n, k = self.code
        rates = self._mean_rates()
        return paper_default_model(
            num_files=self.num_files,
            cache_capacity=self.cache_capacity,
            n=n,
            k=k,
            arrival_rate_pattern=list(rates),
            seed=self.seed,
        )

    def _object_ids(self) -> Tuple[str, ...]:
        return tuple(f"file-{index}" for index in range(self.num_files))

    def _require_horizon(self, horizon: Optional[float]) -> float:
        if horizon is None:
            raise WorkloadError(
                f"workload {self.name or type(self).__name__!r} has no natural "
                f"horizon; pass one to sample()"
            )
        if horizon <= 0:
            raise WorkloadError("horizon must be positive")
        return float(horizon)


@dataclass(frozen=True)
class DiurnalWorkload(_ZooWorkload):
    """Day/night cycle: all rates modulated by a common sinusoid.

    ``rate_i(t) = base_i * (1 + amplitude * sin(2*pi*(t + phase) / period))``
    with ``base_i`` Zipf(``alpha``)-distributed over the aggregate
    ``total_rate``.  ``amplitude`` must lie in [0, 1] so rates stay
    non-negative.
    """

    total_rate: float = 0.14
    alpha: float = 0.9
    period: float = 86_400.0
    amplitude: float = 0.8
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.total_rate < 0:
            raise WorkloadError("total_rate must be non-negative")
        if not 0.0 <= self.amplitude <= 1.0:
            raise WorkloadError(
                f"amplitude must lie in [0, 1], got {self.amplitude}"
            )
        if self.period <= 0:
            raise WorkloadError("period must be positive")

    def _mean_rates(self) -> np.ndarray:
        # The sinusoid integrates to zero over a full period: the mean rate
        # is the base rate.
        return self.total_rate * zipf_weights(self.num_files, self.alpha)

    def rate_at(self, times: np.ndarray) -> np.ndarray:
        """The aggregate arrival rate at each of ``times`` (vectorised)."""
        modulation = 1.0 + self.amplitude * np.sin(
            2.0 * np.pi * (np.asarray(times, dtype=np.float64) + self.phase)
            / self.period
        )
        return self.total_rate * modulation

    def sample(
        self, rng: np.random.Generator, horizon: Optional[float] = None
    ) -> RequestStream:
        horizon = self._require_horizon(horizon)
        # Exact thinning: dominate with the peak rate, accept with
        # probability rate(t) / peak.
        peak = self.total_rate * (1.0 + self.amplitude)
        count = int(rng.poisson(peak * horizon))
        times = np.sort(horizon * rng.random(count))
        accept = rng.random(count) * peak <= self.rate_at(times)
        times = times[accept]
        # Popularity is time-invariant here, so object assignment is one
        # categorical draw per accepted arrival.
        weights = zipf_weights(self.num_files, self.alpha)
        positions = _categorical(weights, times.size, rng)
        return RequestStream(
            times=times,
            object_positions=positions,
            object_ids=self._object_ids(),
            horizon=horizon,
        )


@dataclass(frozen=True)
class FlashCrowdWorkload(_ZooWorkload):
    """Stationary background plus an exponentially decaying flash crowd.

    The background is Zipf(``alpha``) at aggregate ``base_rate``.  From
    ``flash_time`` on, an extra aggregate rate ``spike_rate *
    exp(-(t - flash_time) / decay)`` arrives, spread uniformly over the
    ``hot_objects`` most popular objects.
    """

    base_rate: float = 0.14
    alpha: float = 0.9
    flash_time: float = 0.0
    spike_rate: float = 1.0
    decay: float = 3_600.0
    hot_objects: int = 5

    def __post_init__(self) -> None:
        if self.base_rate < 0 or self.spike_rate < 0:
            raise WorkloadError("rates must be non-negative")
        if self.decay <= 0:
            raise WorkloadError("decay must be positive")
        if self.flash_time < 0:
            raise WorkloadError("flash_time must be non-negative")
        if not 1 <= self.hot_objects <= self.num_files:
            raise WorkloadError(
                f"hot_objects must lie in [1, num_files={self.num_files}], "
                f"got {self.hot_objects}"
            )

    def spike_rate_at(self, times: np.ndarray) -> np.ndarray:
        """The aggregate flash-crowd rate at each of ``times``."""
        times = np.asarray(times, dtype=np.float64)
        elapsed = times - self.flash_time
        return np.where(
            elapsed >= 0.0,
            self.spike_rate * np.exp(-np.maximum(elapsed, 0.0) / self.decay),
            0.0,
        )

    def _mean_rates(self) -> np.ndarray:
        rates = self.base_rate * zipf_weights(self.num_files, self.alpha)
        # The decaying spike carries ~spike_rate * decay total requests;
        # average it over one decay constant as the hot-set surplus.
        rates[: self.hot_objects] += self.spike_rate / self.hot_objects
        return rates

    def sample(
        self, rng: np.random.Generator, horizon: Optional[float] = None
    ) -> RequestStream:
        horizon = self._require_horizon(horizon)
        weights = zipf_weights(self.num_files, self.alpha)
        # Background component: homogeneous Poisson.
        base_count = int(rng.poisson(self.base_rate * horizon))
        base_times = np.sort(horizon * rng.random(base_count))
        base_positions = _categorical(weights, base_count, rng)
        # Spike component: thinned against the peak spike rate, objects
        # uniform over the hot set.
        spike_times = np.empty(0, dtype=np.float64)
        spike_positions = np.empty(0, dtype=np.int64)
        if self.spike_rate > 0 and self.flash_time < horizon:
            count = int(rng.poisson(self.spike_rate * (horizon - self.flash_time)))
            candidates = np.sort(
                self.flash_time + (horizon - self.flash_time) * rng.random(count)
            )
            accept = (
                rng.random(count) * self.spike_rate
                <= self.spike_rate_at(candidates)
            )
            spike_times = candidates[accept]
            spike_positions = rng.integers(
                0, self.hot_objects, size=spike_times.size, dtype=np.int64
            )
        times, positions = _merge_streams(
            (base_times, spike_times), (base_positions, spike_positions)
        )
        return RequestStream(
            times=times,
            object_positions=positions,
            object_ids=self._object_ids(),
            horizon=horizon,
        )


@dataclass(frozen=True)
class PopularityDriftWorkload(_ZooWorkload):
    """Constant total rate with a rotating Zipf popularity ranking.

    Every ``shift_every`` seconds the object occupying popularity rank
    ``r`` moves to rank ``r + 1`` (mod N): the hot set drifts through the
    object table at one position per shift.  Arrivals need no thinning --
    the aggregate rate is constant -- only the object assignment is
    time-dependent.
    """

    total_rate: float = 0.14
    alpha: float = 0.9
    shift_every: float = 3_600.0

    def __post_init__(self) -> None:
        if self.total_rate < 0:
            raise WorkloadError("total_rate must be non-negative")
        if self.shift_every <= 0:
            raise WorkloadError("shift_every must be positive")

    def shift_at(self, times: np.ndarray) -> np.ndarray:
        """How many positions the ranking has rotated at each of ``times``."""
        times = np.asarray(times, dtype=np.float64)
        return (np.floor(times / self.shift_every).astype(np.int64)) % self.num_files

    def _mean_rates(self) -> np.ndarray:
        # Over a full rotation every object spends equal time at every
        # rank: the time-averaged per-object rate is uniform.
        return np.full(self.num_files, self.total_rate / self.num_files)

    def sample(
        self, rng: np.random.Generator, horizon: Optional[float] = None
    ) -> RequestStream:
        horizon = self._require_horizon(horizon)
        count = int(rng.poisson(self.total_rate * horizon))
        times = np.sort(horizon * rng.random(count))
        weights = zipf_weights(self.num_files, self.alpha)
        ranks = _categorical(weights, count, rng)
        positions = (ranks + self.shift_at(times)) % self.num_files
        return RequestStream(
            times=times,
            object_positions=positions.astype(np.int64),
            object_ids=self._object_ids(),
            horizon=horizon,
        )


# ----------------------------------------------------------------------
# Registry builders (wired up by repro.api.registry)
# ----------------------------------------------------------------------


def build_diurnal(
    scenario,
    *,
    total_rate: float = 0.14,
    alpha: float = 0.9,
    period: float = 86_400.0,
    amplitude: float = 0.8,
    phase: float = 0.0,
) -> DiurnalWorkload:
    """Day/night sinusoidal rate cycle over a Zipf object population."""
    return DiurnalWorkload(
        num_files=scenario.num_files,
        cache_capacity=scenario.cache_capacity,
        code=scenario.code,
        seed=scenario.seed,
        name="diurnal",
        total_rate=total_rate * scenario.rate_scale,
        alpha=alpha,
        period=period,
        amplitude=amplitude,
        phase=phase,
    )


def build_flash_crowd(
    scenario,
    *,
    base_rate: float = 0.14,
    alpha: float = 0.9,
    flash_time: float = 0.0,
    spike_rate: float = 1.0,
    decay: float = 3_600.0,
    hot_objects: int = 5,
) -> FlashCrowdWorkload:
    """Stationary background plus an exponentially decaying flash crowd."""
    return FlashCrowdWorkload(
        num_files=scenario.num_files,
        cache_capacity=scenario.cache_capacity,
        code=scenario.code,
        seed=scenario.seed,
        name="flash_crowd",
        base_rate=base_rate * scenario.rate_scale,
        alpha=alpha,
        flash_time=flash_time,
        spike_rate=spike_rate * scenario.rate_scale,
        decay=decay,
        hot_objects=hot_objects,
    )


def build_drift(
    scenario,
    *,
    total_rate: float = 0.14,
    alpha: float = 0.9,
    shift_every: float = 3_600.0,
) -> PopularityDriftWorkload:
    """Constant-rate traffic whose Zipf popularity ranking rotates over time."""
    return PopularityDriftWorkload(
        num_files=scenario.num_files,
        cache_capacity=scenario.cache_capacity,
        code=scenario.code,
        seed=scenario.seed,
        name="drift",
        total_rate=total_rate * scenario.rate_scale,
        alpha=alpha,
        shift_every=shift_every,
    )
