"""The ``trace`` registered workload: scenarios backed by ingested traces.

``Scenario(workload="trace", workload_params={"path": ...})`` loads a trace
file through the columnar loader, derives a stationary system description
from the empirical per-object rates (for Algorithm 1 and the baselines) and
replays the ingested request stream through the engines -- the trace *is*
the arrival process, so ``sample`` returns the same stream every time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.core.model import FileSpec, StorageSystemModel
from repro.exceptions import TraceError
from repro.queueing.distributions import ExponentialService
from repro.workloads.base import RequestStream, Workload
from repro.workloads.catalog import (
    DEFAULT_CHUNK_SIZE_MB,
    DEFAULT_SERVICE_RATES,
)
from repro.workloads.ingest.loader import load_trace


@dataclass(frozen=True)
class TraceWorkload(Workload):
    """An ingested trace wrapped in the :class:`Workload` protocol.

    ``model()`` exposes the empirical per-object arrival rates (scaled by
    ``rate_scale``) with a seeded random chunk placement on the standard
    12-server cluster, so the optimizer and baselines see the same kind of
    stationary description synthetic workloads produce; ``sample()``
    replays the trace itself.
    """

    stream: RequestStream
    cache_capacity: int = 50
    code: Tuple[int, int] = (7, 4)
    seed: int = 2016
    rate_scale: float = 1.0
    source: str = ""
    name: str = "trace"
    stationary: bool = field(default=False, init=False)

    def model(self) -> StorageSystemModel:
        n, k = self.code
        num_nodes = len(DEFAULT_SERVICE_RATES)
        if n > num_nodes:
            raise TraceError(
                f"code length n={n} exceeds the {num_nodes}-server cluster"
            )
        rng = np.random.default_rng(self.seed)
        services = [ExponentialService(rate) for rate in DEFAULT_SERVICE_RATES]
        rates = self.stream.arrival_rates()
        sizes = self.stream.sizes_bytes
        files = []
        for position, object_id in enumerate(self.stream.object_ids):
            placement = [int(x) for x in rng.choice(num_nodes, size=n, replace=False)]
            if sizes is not None and sizes[position] > 0:
                size_bytes = int(sizes[position])
                chunk_size = max(1, math.ceil(size_bytes / (k * 1024 * 1024)))
            else:
                chunk_size = DEFAULT_CHUNK_SIZE_MB
                size_bytes = chunk_size * k * 1024 * 1024
            files.append(
                FileSpec(
                    file_id=object_id,
                    n=n,
                    k=k,
                    placement=placement,
                    arrival_rate=rates[object_id] * self.rate_scale,
                    chunk_size=chunk_size,
                    size_bytes=size_bytes,
                )
            )
        return StorageSystemModel(
            services=services, files=files, cache_capacity=self.cache_capacity
        )

    def sample(
        self, rng: np.random.Generator, horizon: Optional[float] = None
    ) -> RequestStream:
        """The ingested stream itself (clipped when ``horizon`` is shorter).

        The generator is unused: a trace is a recorded sample path, so
        replaying it is deterministic by construction.
        """
        if horizon is not None and horizon < self.stream.duration:
            return self.stream.truncated(horizon)
        return self.stream

    def default_horizon(self) -> Optional[float]:
        duration = self.stream.duration
        return duration if duration > 0 else None


def build_trace(
    scenario,
    *,
    path: Optional[str] = None,
    schema: str = "cdn",
    format: Optional[str] = None,
    delimiter: str = ",",
    validate: bool = True,
) -> TraceWorkload:
    """Replay an ingested trace file (CSV/JSONL/NPZ) through the pipeline.

    ``path`` is required; ``schema`` names a registered trace schema
    (``repro.workloads.ingest.list_trace_schemas()``).  The scenario's
    ``num_files`` is ignored -- the trace defines its own object
    population.
    """
    if path is None:
        raise TraceError(
            "workload 'trace' requires workload_params={'path': <trace file>}"
        )
    stream = load_trace(
        path, schema=schema, format=format, delimiter=delimiter, validate=validate
    )
    return TraceWorkload(
        stream=stream,
        cache_capacity=scenario.cache_capacity,
        code=scenario.code,
        seed=scenario.seed,
        rate_scale=scenario.rate_scale,
        source=str(path),
    )
