"""Lazy columnar trace loading: CSV / JSONL / NPZ into canonical arrays.

:class:`ColumnarTrace` binds a trace file to a
:class:`~repro.workloads.ingest.schema.TraceSchema` without touching the
file; the schema-mapped columns are parsed on first access (and only those
columns), at their canonical dtypes.  :func:`load_trace` is the one-call
path: parse, validate, filter to read operations, factorize object ids and
return the :class:`~repro.workloads.base.RequestStream` the simulation and
replay engines consume.

Performance notes (the ``BENCH_trace_ingest.json`` gate holds the CSV path
above one million parsed requests per second):

* CSV rows are parsed by ``np.loadtxt`` with a structured dtype -- the
  C tokenizer, no Python-level row loop.  String columns parse into
  fixed-width bytes at a guessed width that doubles on suspected
  truncation.
* Object-id factorization avoids ``np.unique`` over strings (string sorts
  dominate ingest time): the fixed-width bytes are viewed as 64-bit words,
  mixed into one 64-bit hash per row, and the *integer* hashes are
  uniqued.  A vectorised verification pass compares the reconstructed ids
  against the originals; on the (astronomically rare) hash collision the
  loader falls back to exact string factorization.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.exceptions import TraceError
from repro.workloads.base import RequestStream
from repro.workloads.ingest.schema import TraceSchema, get_trace_schema
from repro.workloads.ingest.validate import (
    ColumnViolation,
    ValidationReport,
    validate_columns,
)

#: Recognised trace file formats.
FORMATS = ("csv", "jsonl", "npz")

#: File suffixes mapped to formats (case-insensitive).
_SUFFIX_FORMATS = {
    ".csv": "csv",
    ".txt": "csv",
    ".tsv": "csv",
    ".jsonl": "jsonl",
    ".ndjson": "jsonl",
    ".npz": "npz",
}

#: Initial fixed-width guess for string columns; doubled on suspected
#: truncation (a value filling the full width).
_INITIAL_STRING_WIDTH = 24
_MAX_STRING_WIDTH = 4096

#: Odd 64-bit mixing constants for the word-wise object-id hash
#: (splitmix64 / Murmur finalizer multipliers).
_HASH_CONSTANTS = np.array(
    [
        0x9E3779B97F4A7C15,
        0xBF58476D1CE4E5B9,
        0x94D049BB133111EB,
        0xD6E8FEB86659FD93,
        0xC2B2AE3D27D4EB4F,
        0xFF51AFD7ED558CCD,
        0xC4CEB9FE1A85EC53,
        0x2545F4914F6CDD1D,
    ],
    dtype=np.uint64,
)


def sniff_format(path: Union[str, Path], format: Optional[str] = None) -> str:
    """Resolve the trace format: explicit name or by file suffix."""
    if format is not None:
        if format not in FORMATS:
            raise TraceError(
                f"unknown trace format {format!r}; expected one of {FORMATS}"
            )
        return format
    suffix = Path(path).suffix.lower()
    resolved = _SUFFIX_FORMATS.get(suffix)
    if resolved is None:
        raise TraceError(
            f"cannot infer trace format from suffix {suffix!r} of {path}; "
            f"pass format= one of {FORMATS}"
        )
    return resolved


# ----------------------------------------------------------------------
# Object-id factorization
# ----------------------------------------------------------------------


def _first_appearance_order(
    first_index: np.ndarray, inverse: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Remap unique labels from sorted order to first-appearance order."""
    order = np.argsort(first_index, kind="stable")
    rank = np.empty(order.size, dtype=np.int64)
    rank[order] = np.arange(order.size, dtype=np.int64)
    return rank[inverse.astype(np.int64, copy=False)], first_index[order]


def _decode_labels(items: np.ndarray) -> Tuple[str, ...]:
    if items.dtype.kind == "S":
        return tuple(value.decode("utf-8", errors="replace") for value in items.tolist())
    return tuple(str(value) for value in items.tolist())


def factorize_object_ids(ids: np.ndarray) -> Tuple[np.ndarray, Tuple[str, ...]]:
    """Map raw object ids to dense positions plus the id table.

    Returns ``(positions, object_ids)`` with positions int64 indexing the
    table and the table in first-appearance order.  Accepts fixed-width
    bytes (the CSV fast path, hashed wordwise), unicode and integer
    arrays.
    """
    ids = np.ascontiguousarray(ids)
    if ids.size == 0:
        return np.empty(0, dtype=np.int64), ()
    if ids.dtype.kind in "iu":
        _, first_index, inverse = np.unique(
            ids, return_index=True, return_inverse=True
        )
        positions, table_index = _first_appearance_order(first_index, inverse)
        return positions, _decode_labels(ids[table_index])
    if ids.dtype.kind == "U":
        # Unicode reaches here only from the slow formats (JSONL/NPZ);
        # recode to bytes so the word-hash fast path applies.
        ids = np.char.encode(ids, "utf-8")
    if ids.dtype.kind != "S":
        raise TraceError(
            f"object ids must be strings, bytes or integers, got dtype {ids.dtype}"
        )

    width = ids.dtype.itemsize
    words = max(1, (width + 7) // 8)
    padded = ids if width == words * 8 else ids.astype(f"S{words * 8}")
    word_matrix = np.ascontiguousarray(padded).view(np.uint64).reshape(-1, words)
    mixed = np.zeros(ids.size, dtype=np.uint64)
    for column in range(words):
        constant = _HASH_CONSTANTS[column % _HASH_CONSTANTS.size]
        mixed = (mixed ^ (word_matrix[:, column] * constant)) * _HASH_CONSTANTS[0]
        mixed ^= mixed >> np.uint64(29)

    _, first_index, inverse = np.unique(mixed, return_index=True, return_inverse=True)
    positions, table_index = _first_appearance_order(first_index, inverse)
    table = ids[table_index]
    if not np.array_equal(table[positions], ids):
        # Two distinct ids collided on the 64-bit hash: exact fallback.
        _, first_index, inverse = np.unique(
            ids, return_index=True, return_inverse=True
        )
        positions, table_index = _first_appearance_order(first_index, inverse)
        table = ids[table_index]
    return positions, _decode_labels(table)


# ----------------------------------------------------------------------
# CSV parsing
# ----------------------------------------------------------------------


def _csv_header(path: Path, delimiter: str) -> List[str]:
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        first = handle.readline()
    if not first:
        raise TraceError(f"trace file {path} is empty")
    return [name.strip() for name in first.rstrip("\r\n").split(delimiter)]


def _structured_dtype(
    schema: TraceSchema, ordered_columns: List[str], string_width: int
) -> np.dtype:
    fields = []
    for name in ordered_columns:
        spec = schema.column(name)
        if spec.dtype == "float64":
            fields.append((name, "f8"))
        elif spec.dtype == "int64":
            fields.append((name, "i8"))
        else:
            fields.append((name, f"S{string_width}"))
    return np.dtype(fields)


def _parse_csv(
    path: Path, schema: TraceSchema, delimiter: str
) -> Dict[str, np.ndarray]:
    headers = _csv_header(path, delimiter)
    mapping = schema.resolve_headers(headers)
    ordered = sorted(mapping, key=mapping.get)
    usecols = [mapping[name] for name in ordered]

    width = _INITIAL_STRING_WIDTH
    while True:
        dtype = _structured_dtype(schema, ordered, width)
        try:
            data = np.loadtxt(
                path,
                dtype=dtype,
                delimiter=delimiter,
                skiprows=1,
                usecols=usecols,
                ndmin=1,
            )
        except ValueError as error:
            _raise_csv_parse_report(path, schema, mapping, delimiter, error)
        truncated = False
        for name in ordered:
            spec = schema.column(name)
            if spec.dtype != "str":
                continue
            values = np.ascontiguousarray(data[name])
            # A value occupying the full fixed width may have been
            # truncated by the parser; retry wider until none does.
            if values.size and np.any(
                values.view("S1").reshape(values.size, width)[:, -1] != b""
            ):
                truncated = True
                break
        if not truncated:
            break
        width *= 2
        if width > _MAX_STRING_WIDTH:
            raise TraceError(
                f"string values in {path} exceed {_MAX_STRING_WIDTH} bytes"
            )

    columns: Dict[str, np.ndarray] = {}
    for name in ordered:
        spec = schema.column(name)
        values = np.ascontiguousarray(data[name])
        if spec.dtype == "float64" and spec.unit_scale != 1.0:
            values = values * spec.unit_scale
        columns[name] = values
    return columns


def _raise_csv_parse_report(
    path: Path,
    schema: TraceSchema,
    mapping: Dict[str, int],
    delimiter: str,
    error: ValueError,
) -> None:
    """Slow diagnostic pass after a fast-parse failure.

    Re-reads the file row by row, attributing conversion failures to
    columns and rows, and raises the resulting report as a
    :class:`TraceValidationError` (the fast path stays free of per-row
    work; this only runs on malformed traces).
    """
    converters = {"float64": float, "int64": int, "str": str}
    failures: Dict[str, List[int]] = {}
    rows = 0
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        next(handle)  # header
        for row, line in enumerate(handle):
            line = line.rstrip("\r\n")
            if not line or line.startswith("#"):
                continue
            rows += 1
            fields = line.split(delimiter)
            for name, index in mapping.items():
                spec = schema.column(name)
                try:
                    converters[spec.dtype](fields[index].strip())
                except (ValueError, IndexError):
                    failures.setdefault(name, []).append(row)
    report = ValidationReport(schema=schema.name, rows=rows)
    for name, bad_rows in sorted(failures.items()):
        spec = schema.column(name)
        report.violations.append(
            ColumnViolation(
                name, "dtype",
                f"values not parseable as {spec.dtype}",
                count=len(bad_rows), first_row=bad_rows[0],
            )
        )
    if report.ok:
        # The row scan found nothing (e.g. ragged rows confusing the fast
        # tokenizer); surface the parser's own message.
        report.violations.append(
            ColumnViolation("<table>", "dtype", f"CSV parse failed: {error}")
        )
    report.raise_for_violations()


# ----------------------------------------------------------------------
# JSONL / NPZ parsing
# ----------------------------------------------------------------------


def _parse_jsonl(path: Path, schema: TraceSchema) -> Dict[str, np.ndarray]:
    raw: Dict[str, List[object]] = {}
    key_map: Optional[Dict[str, str]] = None
    with open(path, "r", encoding="utf-8") as handle:
        for row, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise TraceError(f"{path}: invalid JSON at line {row + 1}: {error}") from None
            if key_map is None:
                key_map = {}
                for spec in schema.columns:
                    for key in record:
                        if spec.matches(str(key)):
                            key_map[spec.name] = key
                            break
                    else:
                        if spec.required:
                            raise TraceError(
                                f"schema {schema.name!r}: required column "
                                f"{spec.name!r} not found in JSONL keys "
                                f"{sorted(record)}"
                            )
                raw = {name: [] for name in key_map}
            for name, key in key_map.items():
                try:
                    raw[name].append(record[key])
                except KeyError:
                    raise TraceError(
                        f"{path}: record at line {row + 1} is missing key {key!r}"
                    ) from None
    if key_map is None:
        raise TraceError(f"trace file {path} is empty")
    return {
        name: _coerce_column(schema, name, values)
        for name, values in raw.items()
    }


def _parse_npz(path: Path, schema: TraceSchema) -> Dict[str, np.ndarray]:
    with np.load(path, allow_pickle=False) as archive:
        keys = list(archive.files)
        columns: Dict[str, np.ndarray] = {}
        for spec in schema.columns:
            for key in keys:
                if spec.matches(key):
                    columns[spec.name] = _coerce_column(schema, spec.name, archive[key])
                    break
            else:
                if spec.required:
                    raise TraceError(
                        f"schema {schema.name!r}: required column {spec.name!r} "
                        f"not found in NPZ arrays {sorted(keys)}"
                    )
    return columns


def _coerce_column(schema: TraceSchema, name: str, values: object) -> np.ndarray:
    """Coerce one raw column to its canonical dtype (slow formats only)."""
    spec = schema.column(name)
    array = np.asarray(values)
    try:
        if spec.dtype == "float64":
            array = array.astype(np.float64)
            if spec.unit_scale != 1.0:
                array = array * spec.unit_scale
        elif spec.dtype == "int64":
            array = array.astype(np.int64)
        elif array.dtype.kind not in "SU":
            array = array.astype(str)
    except (TypeError, ValueError):
        # Leave the raw dtype in place; the validator reports it with the
        # rest of the violations instead of failing the load outright.
        pass
    return array


# ----------------------------------------------------------------------
# The lazy columnar view and the one-call loader
# ----------------------------------------------------------------------


class ColumnarTrace:
    """A trace file bound to a schema, loaded lazily column-by-column.

    Construction touches neither the file nor the parser; the first
    column access parses the schema-mapped columns (and only those) at
    their canonical dtypes and caches them for the trace's lifetime.
    """

    def __init__(
        self,
        path: Union[str, Path],
        schema: Union[TraceSchema, str] = "cdn",
        format: Optional[str] = None,
        delimiter: str = ",",
    ):
        self.path = Path(path)
        self.schema = get_trace_schema(schema)
        self.format = sniff_format(self.path, format)
        self.delimiter = delimiter
        self._columns: Optional[Dict[str, np.ndarray]] = None

    def _load(self) -> Dict[str, np.ndarray]:
        if self._columns is None:
            if not self.path.exists():
                raise TraceError(f"trace file {self.path} does not exist")
            if self.format == "csv":
                self._columns = _parse_csv(self.path, self.schema, self.delimiter)
            elif self.format == "jsonl":
                self._columns = _parse_jsonl(self.path, self.schema)
            else:
                self._columns = _parse_npz(self.path, self.schema)
        return self._columns

    @property
    def loaded(self) -> bool:
        """Whether the columns have been parsed yet."""
        return self._columns is not None

    @property
    def columns(self) -> Dict[str, np.ndarray]:
        """The canonical columns (parsed and cached on first access)."""
        return dict(self._load())

    def column(self, name: str) -> np.ndarray:
        """One canonical column by name."""
        columns = self._load()
        if name not in columns:
            raise TraceError(
                f"trace {self.path} has no column {name!r}; "
                f"loaded columns: {sorted(columns)}"
            )
        return columns[name]

    @property
    def num_rows(self) -> int:
        """Number of rows in the trace."""
        columns = self._load()
        return int(next(iter(columns.values())).shape[0]) if columns else 0

    def validate(self) -> ValidationReport:
        """Run the validation pass and return the full report."""
        return validate_columns(self._load(), self.schema)


def validate_trace(
    path: Union[str, Path],
    schema: Union[TraceSchema, str] = "cdn",
    format: Optional[str] = None,
    delimiter: str = ",",
) -> ValidationReport:
    """Validate a trace file against a schema and return the report."""
    return ColumnarTrace(path, schema=schema, format=format, delimiter=delimiter).validate()


def load_trace(
    path: Union[str, Path],
    schema: Union[TraceSchema, str] = "cdn",
    format: Optional[str] = None,
    delimiter: str = ",",
    validate: bool = True,
    reads_only: bool = True,
) -> RequestStream:
    """Load a trace file into a canonical :class:`RequestStream`.

    Parses the schema-mapped columns, optionally runs the validation pass
    (raising :class:`~repro.exceptions.TraceValidationError` with the full
    per-column report on any violation), filters to the schema's read
    operations, rebases timestamps to start at zero and factorizes object
    ids into dense positions.
    """
    trace = ColumnarTrace(path, schema=schema, format=format, delimiter=delimiter)
    resolved_schema = trace.schema
    columns = trace._load()
    if validate:
        trace.validate().raise_for_violations()

    times = columns["timestamp"].astype(np.float64, copy=True)
    ids = columns["object_id"]
    sizes = columns.get("size")
    ops = columns.get("op")

    if reads_only and ops is not None and resolved_schema.read_ops:
        if ops.dtype.kind == "S":
            read_ops = np.array(
                [op.encode() for op in resolved_schema.read_ops], dtype=ops.dtype
            )
        else:
            read_ops = np.asarray(resolved_schema.read_ops, dtype=ops.dtype)
        mask = np.isin(ops, read_ops)
        times = times[mask]
        ids = ids[mask]
        if sizes is not None:
            sizes = sizes[mask]
    if times.size == 0:
        raise TraceError(f"trace {path} contains no read requests")

    horizon = float(times[-1] - times[0])
    times -= times[0]
    positions, object_ids = factorize_object_ids(ids)

    sizes_bytes: Optional[np.ndarray] = None
    if sizes is not None:
        sizes_bytes = np.zeros(len(object_ids), dtype=np.int64)
        np.maximum.at(sizes_bytes, positions, sizes.astype(np.int64, copy=False))

    return RequestStream(
        times=times,
        object_positions=positions,
        object_ids=object_ids,
        sizes_bytes=sizes_bytes,
        horizon=horizon if horizon > 0 else None,
    )
