"""The trace validation pass: per-column violation reporting.

:func:`validate_columns` checks a loaded column set against its
:class:`~repro.workloads.ingest.schema.TraceSchema` and returns a
:class:`ValidationReport` carrying *every* violation -- missing required
columns, uncastable dtypes, negative sizes, unsorted timestamps, unknown
op values -- each with the offending row of its first occurrence and the
total count.  Nothing raises until the caller asks
(:meth:`ValidationReport.raise_for_violations`), so a single pass surfaces
the complete picture of a malformed trace before any simulation runs.

All checks are vectorised (a handful of numpy reductions per column), so
validation costs a few percent of parse time even on multi-million-row
traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import TraceValidationError
from repro.workloads.ingest.schema import ColumnSpec, TraceSchema


@dataclass(frozen=True)
class ColumnViolation:
    """One constraint violation of one column.

    Attributes
    ----------
    column:
        Canonical column name (or ``"<table>"`` for table-level issues).
    check:
        Machine-readable check identifier (``"missing"``, ``"dtype"``,
        ``"negative"``, ``"nonpositive"``, ``"unsorted"``, ``"unknown_op"``,
        ``"nan"``, ``"length"``).
    count:
        Number of offending rows (0 for structural issues).
    first_row:
        Row index of the first offending value (``None`` for structural
        issues).
    message:
        Human-readable description.
    """

    column: str
    check: str
    message: str
    count: int = 0
    first_row: Optional[int] = None

    def __str__(self) -> str:
        location = "" if self.first_row is None else f" (first at row {self.first_row})"
        rows = "" if self.count == 0 else f" [{self.count} rows]"
        return f"{self.column}: {self.message}{rows}{location}"


@dataclass
class ValidationReport:
    """Outcome of one validation pass over a loaded trace."""

    schema: str
    rows: int
    violations: List[ColumnViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the trace passed every check."""
        return not self.violations

    def for_column(self, column: str) -> List[ColumnViolation]:
        """The violations of one column."""
        return [v for v in self.violations if v.column == column]

    def summary(self) -> str:
        """Multi-line human-readable report."""
        header = (
            f"trace validation against schema {self.schema!r}: "
            f"{self.rows} rows, "
            f"{'OK' if self.ok else f'{len(self.violations)} violation(s)'}"
        )
        lines = [header]
        lines.extend(f"  - {violation}" for violation in self.violations)
        return "\n".join(lines)

    def raise_for_violations(self) -> None:
        """Raise :class:`TraceValidationError` unless the trace is clean."""
        if not self.ok:
            raise TraceValidationError(self.summary(), report=self)


def _first_true(mask: np.ndarray) -> int:
    return int(np.flatnonzero(mask)[0])


def _check_numeric(
    spec: ColumnSpec, values: np.ndarray, report: ValidationReport
) -> None:
    if values.dtype.kind == "f":
        nan_mask = np.isnan(values)
        if nan_mask.any():
            report.violations.append(
                ColumnViolation(
                    spec.name, "nan", "NaN values",
                    count=int(nan_mask.sum()), first_row=_first_true(nan_mask),
                )
            )
            # Exclude NaNs from the ordering/sign checks below.
            values = np.where(nan_mask, 0.0, values)
    if spec.positive:
        bad = values <= 0
        if bad.any():
            report.violations.append(
                ColumnViolation(
                    spec.name, "nonpositive", "values must be > 0",
                    count=int(bad.sum()), first_row=_first_true(bad),
                )
            )
    elif spec.nonnegative:
        bad = values < 0
        if bad.any():
            report.violations.append(
                ColumnViolation(
                    spec.name, "negative", "values must be >= 0",
                    count=int(bad.sum()), first_row=_first_true(bad),
                )
            )
    if spec.sorted and values.size > 1:
        drops = np.diff(values) < 0
        if drops.any():
            report.violations.append(
                ColumnViolation(
                    spec.name, "unsorted", "values must be non-decreasing",
                    count=int(drops.sum()), first_row=_first_true(drops) + 1,
                )
            )


def _check_categorical(
    spec: ColumnSpec, values: np.ndarray, report: ValidationReport
) -> None:
    if not spec.allowed:
        return
    if values.dtype.kind == "S":
        allowed = np.array([op.encode() for op in spec.allowed], dtype=values.dtype)
    else:
        allowed = np.asarray(spec.allowed, dtype=values.dtype)
    bad = ~np.isin(values, allowed)
    if bad.any():
        first = _first_true(bad)
        sample = values[first]
        if isinstance(sample, bytes):
            sample = sample.decode(errors="replace")
        report.violations.append(
            ColumnViolation(
                spec.name, "unknown_op",
                f"value {sample!r} not in allowed set {list(spec.allowed)}",
                count=int(bad.sum()), first_row=first,
            )
        )


#: numpy dtype kinds acceptable for each canonical dtype.
_KIND_FOR_DTYPE = {"float64": "fiu", "int64": "iu", "str": "SU"}


def validate_columns(
    columns: Dict[str, np.ndarray],
    schema: TraceSchema,
) -> ValidationReport:
    """Validate a loaded column set against ``schema``.

    ``columns`` maps canonical column names to 1-D arrays (the loader's
    output).  Returns the full :class:`ValidationReport`; never raises on
    trace content (structural misuse -- e.g. ragged columns -- is still a
    violation, not an exception).
    """
    lengths = {name: values.shape[0] for name, values in columns.items()}
    rows = max(lengths.values(), default=0)
    report = ValidationReport(schema=schema.name, rows=rows)

    for name, length in lengths.items():
        if length != rows:
            report.violations.append(
                ColumnViolation(
                    name, "length",
                    f"column has {length} rows, expected {rows}",
                )
            )
    if any(violation.check == "length" for violation in report.violations):
        return report

    for spec in schema.columns:
        values = columns.get(spec.name)
        if values is None:
            if spec.required:
                report.violations.append(
                    ColumnViolation(spec.name, "missing", "required column is missing")
                )
            continue
        if values.ndim != 1:
            report.violations.append(
                ColumnViolation(
                    spec.name, "dtype", f"expected a 1-D column, got shape {values.shape}"
                )
            )
            continue
        if values.dtype.kind not in _KIND_FOR_DTYPE[spec.dtype]:
            report.violations.append(
                ColumnViolation(
                    spec.name, "dtype",
                    f"expected dtype {spec.dtype}, got {values.dtype}",
                )
            )
            continue
        if spec.dtype in ("float64", "int64"):
            _check_numeric(spec, values, report)
        else:
            _check_categorical(spec, values, report)
    return report
