"""Real-trace ingestion: declarative schemas, validation, columnar loading.

The ingest layer turns public cache/storage traces (CDN access logs,
key-value cache traces, block-I/O traces) into the canonical
:class:`~repro.workloads.base.RequestStream` arrays the batch engine and
the cluster replay engine consume:

    from repro.workloads.ingest import load_trace, validate_trace

    report = validate_trace("trace.csv", schema="cdn")
    print(report.summary())
    stream = load_trace("trace.csv", schema="cdn")

or end-to-end through the facade::

    from repro.api import Scenario, run_scenario

    result = run_scenario(
        Scenario(workload="trace", workload_params={"path": "trace.csv"})
    )

See :mod:`repro.workloads.ingest.schema` for the built-in schemas and how
to register new trace families.
"""

from repro.workloads.ingest.loader import (
    FORMATS,
    ColumnarTrace,
    factorize_object_ids,
    load_trace,
    sniff_format,
    validate_trace,
)
from repro.workloads.ingest.schema import (
    BLOCK_SCHEMA,
    CDN_SCHEMA,
    KV_SCHEMA,
    TRACE_SCHEMAS,
    ColumnSpec,
    TraceSchema,
    get_trace_schema,
    list_trace_schemas,
    register_trace_schema,
)
from repro.workloads.ingest.trace_workload import TraceWorkload, build_trace
from repro.workloads.ingest.validate import (
    ColumnViolation,
    ValidationReport,
    validate_columns,
)

__all__ = [
    # schemas
    "ColumnSpec",
    "TraceSchema",
    "CDN_SCHEMA",
    "KV_SCHEMA",
    "BLOCK_SCHEMA",
    "TRACE_SCHEMAS",
    "register_trace_schema",
    "get_trace_schema",
    "list_trace_schemas",
    # validation
    "ColumnViolation",
    "ValidationReport",
    "validate_columns",
    # loading
    "FORMATS",
    "ColumnarTrace",
    "sniff_format",
    "load_trace",
    "validate_trace",
    "factorize_object_ids",
    # workload
    "TraceWorkload",
    "build_trace",
]
