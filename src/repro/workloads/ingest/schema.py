"""Declarative trace schemas: typed columns for public trace formats.

A :class:`TraceSchema` names the columns a trace family carries --
``timestamp``, ``object_id``, ``size``, ``op`` -- with their canonical
dtypes, per-column constraints (non-negative, sorted, categorical) and the
aliases/units under which public datasets ship them.  Schemas are pure
descriptions: the validation pass (:mod:`repro.workloads.ingest.validate`)
checks a loaded column set against its schema and reports *every*
violation before any simulation runs, and the columnar loader
(:mod:`repro.workloads.ingest.loader`) uses the schema to parse only the
declared columns at their canonical types.

Three built-in schemas cover the common public formats:

* ``cdn`` -- CDN access logs: ``timestamp`` (seconds), ``object_id``,
  ``size`` (bytes), ``op`` in GET/HEAD/PUT/DELETE; reads are GET/HEAD.
* ``kv`` -- key-value cache traces (Twitter/Memcached style):
  ``timestamp`` (seconds), ``key``->``object_id``, ``value_size``->``size``,
  ``op`` in get/gets/set/add/delete; reads are get/gets.
* ``block`` -- block-I/O traces (MSR Cambridge style): ``timestamp_ms``
  (milliseconds -> seconds), ``lba``->``object_id``, ``size`` (bytes),
  ``op`` in R/W (reads are R).

New families register with :func:`register_trace_schema`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exceptions import TraceError

#: Canonical column names every schema maps onto.
CANONICAL_COLUMNS = ("timestamp", "object_id", "size", "op")

#: Canonical dtypes a column may declare.
COLUMN_DTYPES = ("float64", "int64", "str")


@dataclass(frozen=True)
class ColumnSpec:
    """One typed column of a trace schema.

    Attributes
    ----------
    name:
        Canonical column name (one of :data:`CANONICAL_COLUMNS`).
    dtype:
        Canonical dtype: ``"float64"``, ``"int64"`` or ``"str"``.
    required:
        Whether a trace without this column fails validation.  Optional
        columns (``size``, ``op``) are simply absent from the loaded set.
    aliases:
        Header names under which datasets ship this column (the canonical
        name always matches, case-insensitively).
    unit_scale:
        Multiplier into canonical units (e.g. ``1e-3`` for millisecond
        timestamps -> seconds).  Numeric columns only.
    nonnegative / positive:
        Value constraints checked by the validator.
    sorted:
        Whether values must be non-decreasing (timestamps).
    allowed:
        Categorical vocabulary (``op``); empty means unconstrained.
    """

    name: str
    dtype: str
    required: bool = True
    aliases: Tuple[str, ...] = ()
    unit_scale: float = 1.0
    nonnegative: bool = False
    positive: bool = False
    sorted: bool = False
    allowed: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.name not in CANONICAL_COLUMNS:
            raise TraceError(
                f"unknown canonical column {self.name!r}; "
                f"expected one of {CANONICAL_COLUMNS}"
            )
        if self.dtype not in COLUMN_DTYPES:
            raise TraceError(
                f"column {self.name!r}: unknown dtype {self.dtype!r}; "
                f"expected one of {COLUMN_DTYPES}"
            )
        if self.dtype == "str" and self.unit_scale != 1.0:
            raise TraceError(
                f"column {self.name!r}: unit_scale applies to numeric columns"
            )
        if self.unit_scale <= 0:
            raise TraceError(f"column {self.name!r}: unit_scale must be positive")

    def matches(self, header: str) -> bool:
        """Whether a file header names this column (case-insensitive)."""
        candidate = header.strip().lower()
        if candidate == self.name:
            return True
        return candidate in {alias.lower() for alias in self.aliases}


@dataclass(frozen=True)
class TraceSchema:
    """A named trace family: its typed columns and read-op vocabulary.

    Attributes
    ----------
    name / description:
        Registry identity, shown in error messages and listings.
    columns:
        The declared :class:`ColumnSpec` entries; must include
        ``timestamp`` and ``object_id``.
    read_ops:
        ``op`` values counted as reads (the requests the simulation
        replays); empty means every row is a read.
    """

    name: str
    description: str
    columns: Tuple[ColumnSpec, ...]
    read_ops: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "columns", tuple(self.columns))
        names = [column.name for column in self.columns]
        if len(set(names)) != len(names):
            raise TraceError(f"schema {self.name!r} declares duplicate columns")
        for required in ("timestamp", "object_id"):
            if required not in names:
                raise TraceError(
                    f"schema {self.name!r} must declare a {required!r} column"
                )
        op = self.column("op")
        if self.read_ops and op is None:
            raise TraceError(
                f"schema {self.name!r} declares read_ops without an 'op' column"
            )
        if op is not None and op.allowed:
            unknown = set(self.read_ops) - set(op.allowed)
            if unknown:
                raise TraceError(
                    f"schema {self.name!r}: read_ops {sorted(unknown)} are not "
                    f"in the op column's allowed values {list(op.allowed)}"
                )

    def column(self, name: str) -> Optional[ColumnSpec]:
        """The spec of one canonical column, or ``None`` if undeclared."""
        for column in self.columns:
            if column.name == name:
                return column
        return None

    def column_names(self) -> List[str]:
        """The declared canonical column names, in declaration order."""
        return [column.name for column in self.columns]

    def resolve_headers(self, headers: List[str]) -> Dict[str, int]:
        """Map canonical column names to file column indices.

        Raises :class:`TraceError` when a required column matches no
        header; optional columns are simply absent from the mapping.
        """
        mapping: Dict[str, int] = {}
        for column in self.columns:
            for index, header in enumerate(headers):
                if column.matches(header):
                    mapping[column.name] = index
                    break
            else:
                if column.required:
                    raise TraceError(
                        f"schema {self.name!r}: required column "
                        f"{column.name!r} not found in header {headers!r} "
                        f"(aliases: {list(column.aliases) or '<none>'})"
                    )
        return mapping


# ----------------------------------------------------------------------
# Built-in schemas and the schema registry
# ----------------------------------------------------------------------

CDN_SCHEMA = TraceSchema(
    name="cdn",
    description="CDN access logs: timestamp (s), object_id, size (bytes), op",
    columns=(
        ColumnSpec("timestamp", "float64", sorted=True, nonnegative=True,
                   aliases=("time", "ts", "request_time")),
        ColumnSpec("object_id", "str", aliases=("object", "url", "id", "cache_key")),
        ColumnSpec("size", "int64", required=False, nonnegative=True,
                   aliases=("bytes", "object_size", "response_size")),
        ColumnSpec("op", "str", required=False,
                   aliases=("method", "operation", "request_type"),
                   allowed=("GET", "HEAD", "PUT", "POST", "DELETE")),
    ),
    read_ops=("GET", "HEAD"),
)

KV_SCHEMA = TraceSchema(
    name="kv",
    description="key-value cache traces: timestamp (s), key, value size, op",
    columns=(
        ColumnSpec("timestamp", "float64", sorted=True, nonnegative=True,
                   aliases=("time", "ts")),
        ColumnSpec("object_id", "str", aliases=("key", "anon_key", "key_id")),
        ColumnSpec("size", "int64", required=False, nonnegative=True,
                   aliases=("value_size", "val_size", "size_bytes")),
        ColumnSpec("op", "str", required=False,
                   aliases=("operation", "cmd", "command"),
                   allowed=("get", "gets", "set", "add", "replace", "delete")),
    ),
    read_ops=("get", "gets"),
)

BLOCK_SCHEMA = TraceSchema(
    name="block",
    description="block-I/O traces: timestamp (ms -> s), lba, size (bytes), op",
    columns=(
        ColumnSpec("timestamp", "float64", sorted=True, nonnegative=True,
                   unit_scale=1e-3, aliases=("timestamp_ms", "time_ms", "ts_ms")),
        ColumnSpec("object_id", "str", aliases=("lba", "offset", "block", "disk_id")),
        ColumnSpec("size", "int64", required=False, positive=True,
                   aliases=("bytes", "io_size", "length")),
        ColumnSpec("op", "str", required=False,
                   aliases=("operation", "type", "io_type"),
                   allowed=("R", "W", "Read", "Write")),
    ),
    read_ops=("R", "Read"),
)

#: The registered trace schemas, by name.
TRACE_SCHEMAS: Dict[str, TraceSchema] = {}


def register_trace_schema(schema: TraceSchema, replace: bool = False) -> TraceSchema:
    """Register a trace schema so loaders can refer to it by name."""
    if schema.name in TRACE_SCHEMAS and not replace:
        raise TraceError(
            f"trace schema {schema.name!r} is already registered; "
            f"pass replace=True to override"
        )
    TRACE_SCHEMAS[schema.name] = schema
    return schema


def get_trace_schema(schema: "TraceSchema | str") -> TraceSchema:
    """Resolve a schema instance or registered schema name."""
    if isinstance(schema, TraceSchema):
        return schema
    try:
        return TRACE_SCHEMAS[schema]
    except KeyError:
        known = ", ".join(sorted(TRACE_SCHEMAS)) or "<none>"
        raise TraceError(
            f"unknown trace schema {schema!r}; registered schemas: {known}"
        ) from None


def list_trace_schemas() -> List[str]:
    """Names of the registered trace schemas, sorted."""
    return sorted(TRACE_SCHEMAS)


for _schema in (CDN_SCHEMA, KV_SCHEMA, BLOCK_SCHEMA):
    register_trace_schema(_schema)
