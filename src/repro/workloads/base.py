"""The typed workload protocol: every workload yields request streams.

Historically a "workload" was a free function returning a
:class:`~repro.core.model.StorageSystemModel` -- a *stationary* description
(per-file Poisson rates) from which the engines drew their own arrivals.
Real traces and non-stationary synthetics (diurnal cycles, flash crowds,
popularity drift) don't fit that shape: the request *stream* itself is the
workload.  This module defines the common protocol both kinds share:

* :class:`RequestStream` -- the canonical columnar request stream: sorted
  arrival times (seconds), per-request object positions, the object-id
  table, optional per-object sizes.  Both the batch engine
  (:func:`repro.simulation.batch.run_batch_simulation`) and the cluster
  replay engine (:meth:`repro.cluster.replay.ReplayTrace.from_request_stream`)
  consume these arrays directly.

* :class:`Workload` -- the abstract protocol: ``model()`` materializes the
  stationary system description (services, files, time-averaged rates) and
  ``sample(rng, horizon)`` draws one seeded :class:`RequestStream`.
  ``stationary`` tells the session whether the engines may redraw arrivals
  from the model's rates (bit-compatible with the pre-protocol behaviour)
  or must replay the sampled stream.

* :class:`StationaryWorkload` -- wraps a plain model into the protocol;
  :func:`as_workload` coerces legacy model-returning builders.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.model import StorageSystemModel
from repro.exceptions import WorkloadError
from repro.simulation.arrivals import generate_request_arrays


@dataclass(frozen=True)
class RequestStream:
    """A canonical columnar request stream.

    Attributes
    ----------
    times:
        Arrival times in seconds, float64, sorted ascending, starting at or
        after 0.  (The cluster replay engine works in milliseconds; use
        :meth:`to_replay_trace` for the converted view.)
    object_positions:
        Per-request index into :attr:`object_ids`, int64.
    object_ids:
        The object-id table, one entry per distinct object, in first
        appearance order for ingested traces.
    sizes_bytes:
        Optional per-*object* sizes (aligned with :attr:`object_ids`), the
        largest observed request size per object.  ``None`` when the source
        carries no size column.
    horizon:
        The stream's natural duration in seconds (>= ``times[-1]``); used
        as the default simulation horizon for trace-backed scenarios.
    """

    times: np.ndarray
    object_positions: np.ndarray
    object_ids: Tuple[str, ...]
    sizes_bytes: Optional[np.ndarray] = None
    horizon: Optional[float] = None

    def __post_init__(self) -> None:
        times = np.ascontiguousarray(self.times, dtype=np.float64)
        positions = np.ascontiguousarray(self.object_positions, dtype=np.int64)
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "object_positions", positions)
        object.__setattr__(self, "object_ids", tuple(self.object_ids))
        if times.ndim != 1 or positions.ndim != 1:
            raise WorkloadError("request-stream columns must be 1-D arrays")
        if times.size != positions.size:
            raise WorkloadError(
                f"times and object_positions disagree: "
                f"{times.size} vs {positions.size} entries"
            )
        if times.size and np.any(np.diff(times) < 0):
            raise WorkloadError("request times must be sorted ascending")
        if times.size and times[0] < 0:
            raise WorkloadError("request times must be non-negative")
        if positions.size and (
            positions.min() < 0 or positions.max() >= len(self.object_ids)
        ):
            raise WorkloadError(
                f"object positions must index the {len(self.object_ids)}-entry "
                f"object-id table"
            )
        if self.sizes_bytes is not None:
            sizes = np.ascontiguousarray(self.sizes_bytes, dtype=np.int64)
            object.__setattr__(self, "sizes_bytes", sizes)
            if sizes.shape != (len(self.object_ids),):
                raise WorkloadError(
                    f"sizes_bytes must align with the object-id table "
                    f"({len(self.object_ids)} entries), got shape {sizes.shape}"
                )
        if self.horizon is not None:
            horizon = float(self.horizon)
            object.__setattr__(self, "horizon", horizon)
            if times.size and horizon < float(times[-1]):
                raise WorkloadError(
                    f"horizon {horizon} is shorter than the last arrival "
                    f"at {float(times[-1])}"
                )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def num_requests(self) -> int:
        """Number of requests in the stream."""
        return int(self.times.size)

    @property
    def num_objects(self) -> int:
        """Number of distinct objects in the stream."""
        return len(self.object_ids)

    @property
    def duration(self) -> float:
        """The stream's duration: explicit horizon or the last arrival time."""
        if self.horizon is not None:
            return self.horizon
        return float(self.times[-1]) if self.times.size else 0.0

    def arrival_rates(self) -> Dict[str, float]:
        """Empirical per-object arrival rates (requests/second).

        Counts over :attr:`duration`; objects that never appear get rate 0.
        """
        duration = self.duration
        counts = np.bincount(self.object_positions, minlength=self.num_objects)
        if duration <= 0:
            return {object_id: 0.0 for object_id in self.object_ids}
        return {
            object_id: float(count) / duration
            for object_id, count in zip(self.object_ids, counts)
        }

    # ------------------------------------------------------------------
    # Views and transforms
    # ------------------------------------------------------------------

    def truncated(self, horizon: float) -> "RequestStream":
        """The stream restricted to arrivals in ``[0, horizon)``."""
        if horizon <= 0:
            raise WorkloadError("horizon must be positive")
        cut = int(np.searchsorted(self.times, horizon, side="left"))
        return RequestStream(
            times=self.times[:cut],
            object_positions=self.object_positions[:cut],
            object_ids=self.object_ids,
            sizes_bytes=self.sizes_bytes,
            horizon=min(horizon, self.horizon) if self.horizon is not None else horizon,
        )

    def to_replay_trace(self):
        """The stream as a :class:`repro.cluster.replay.ReplayTrace` (ms)."""
        from repro.cluster.replay import ReplayTrace

        return ReplayTrace(
            times_ms=self.times * 1000.0,
            object_positions=self.object_positions.copy(),
            object_ids=list(self.object_ids),
        )


class Workload(ABC):
    """The typed workload protocol behind ``Scenario(workload=...)``.

    A workload owns both the stationary system description
    (:meth:`model`) and the request-stream generator (:meth:`sample`).
    Stationary workloads (``stationary = True``) let the simulation
    engines draw their own arrivals from the model's Poisson rates --
    bit-compatible with the pre-protocol pipeline; non-stationary ones
    (traces, diurnal cycles, flash crowds, drift) are replayed from a
    sampled :class:`RequestStream` instead.
    """

    #: Registry name of the workload (set by builders; informational).
    name: str = ""

    #: Whether the engines may redraw arrivals from the model's rates.
    stationary: bool = True

    @abstractmethod
    def model(self) -> StorageSystemModel:
        """The stationary system description (services, files, rates)."""

    @abstractmethod
    def sample(
        self, rng: np.random.Generator, horizon: Optional[float] = None
    ) -> RequestStream:
        """Draw one request stream over ``[0, horizon)``.

        Deterministic given the generator state: the same seeded ``rng``
        and horizon always produce the identical stream.
        """

    def default_horizon(self) -> Optional[float]:
        """The workload's natural horizon (seconds), if it has one.

        Trace-backed workloads return the trace span; synthetic ones
        return ``None`` and defer to the scenario's scale default.
        """
        return None


@dataclass(frozen=True)
class StationaryWorkload(Workload):
    """A plain stationary model wrapped into the :class:`Workload` protocol.

    ``sample`` draws the merged Poisson stream with
    :func:`~repro.simulation.arrivals.generate_request_arrays` -- the same
    generator the batch engine uses internally.
    """

    system_model: StorageSystemModel
    name: str = ""
    stationary: bool = field(default=True, init=False)

    def model(self) -> StorageSystemModel:
        return self.system_model

    def sample(
        self, rng: np.random.Generator, horizon: Optional[float] = None
    ) -> RequestStream:
        if horizon is None:
            raise WorkloadError(
                "a stationary workload has no natural horizon; pass one to sample()"
            )
        rates = {
            spec.file_id: spec.arrival_rate for spec in self.system_model.files
        }
        times, positions, object_ids = generate_request_arrays(rates, horizon, rng)
        return RequestStream(
            times=times,
            object_positions=positions,
            object_ids=tuple(object_ids),
            horizon=float(horizon),
        )


def as_workload(built: object, name: str = "") -> Workload:
    """Coerce a builder result into the :class:`Workload` protocol.

    Legacy builders return a bare :class:`StorageSystemModel`; those are
    wrapped as a :class:`StationaryWorkload`.  Protocol-native results pass
    through (gaining ``name`` when they don't carry one).
    """
    if isinstance(built, Workload):
        if name and not built.name:
            # Settable even on frozen dataclass subclasses.
            object.__setattr__(built, "name", name)
        return built
    if isinstance(built, StorageSystemModel):
        return StationaryWorkload(system_model=built, name=name)
    raise WorkloadError(
        f"workload builders must return a Workload or StorageSystemModel, "
        f"got {type(built).__name__}"
    )


def zipf_weights(num_objects: int, alpha: float) -> np.ndarray:
    """Normalized Zipf(``alpha``) popularity weights over ranks 1..N."""
    if num_objects < 1:
        raise WorkloadError("num_objects must be positive")
    if alpha < 0:
        raise WorkloadError("alpha must be non-negative")
    weights = 1.0 / np.arange(1, num_objects + 1, dtype=np.float64) ** alpha
    return weights / weights.sum()
