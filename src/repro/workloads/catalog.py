"""Canonical home of the paper's workload constants and model builders.

This module carries the implementations that historically lived in
:mod:`repro.workloads.defaults` (the Section V-A simulation setup) and
:mod:`repro.workloads.traces` (the Table I / Table III rate tables); those
modules remain as thin deprecation shims.  New code should import from
:mod:`repro.workloads` (or from here) and select workloads through the
registry (``Scenario(workload=...)``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.model import FileSpec, StorageSystemModel
from repro.core.timebins import TimeBin
from repro.exceptions import ModelError, WorkloadError
from repro.queueing.distributions import ExponentialService

#: Per-file arrival rates (requests/second) repeated for every group of five
#: files, as listed in Section V-A.  The aggregate over 1000 files is
#: roughly 0.1416 requests/second.
DEFAULT_ARRIVAL_RATE_PATTERN: List[float] = [
    0.000156,
    0.000156,
    0.000125,
    0.000167,
    0.000104,
]

#: Inverse mean service times (1/seconds) of the storage servers, from the
#: measurements quoted in Section V-A.  The paper lists eleven values for
#: twelve servers; the reproduction assigns the first value (0.1) to the
#: twelfth server and records that choice in DESIGN.md.
DEFAULT_SERVICE_RATES: List[float] = [
    0.1,
    0.1,
    0.1,
    0.0909,
    0.0909,
    0.0667,
    0.0667,
    0.0769,
    0.0769,
    0.0588,
    0.0588,
    0.1,
]

#: Default erasure code of the simulation study.
DEFAULT_CODE = (7, 4)

#: Default chunk size (MB): 100 MB files split into k = 4 chunks of 25 MB.
DEFAULT_CHUNK_SIZE_MB = 25

#: Table I: request arrival rates (requests/second) of the ten files in the
#: three consecutive time bins of the cache-evolution experiment.
TABLE_I_ARRIVAL_RATES: List[Dict[str, float]] = [
    {  # time bin 1
        "file-0": 0.000156,
        "file-1": 0.000156,
        "file-2": 0.000125,
        "file-3": 0.000167,
        "file-4": 0.000104,
        "file-5": 0.000156,
        "file-6": 0.000156,
        "file-7": 0.000125,
        "file-8": 0.000167,
        "file-9": 0.000104,
    },
    {  # time bin 2: files 3/8 cool down, files 4/9 heat up
        "file-0": 0.000156,
        "file-1": 0.000156,
        "file-2": 0.000125,
        "file-3": 0.000125,
        "file-4": 0.000125,
        "file-5": 0.000156,
        "file-6": 0.000156,
        "file-7": 0.000125,
        "file-8": 0.000125,
        "file-9": 0.000125,
    },
    {  # time bin 3: files 1/6 become the hottest, files 0/5 cool down
        "file-0": 0.000125,
        "file-1": 0.00025,
        "file-2": 0.000125,
        "file-3": 0.000167,
        "file-4": 0.000104,
        "file-5": 0.000125,
        "file-6": 0.00025,
        "file-7": 0.000125,
        "file-8": 0.000167,
        "file-9": 0.000104,
    },
]

#: Table III: the 24-hour real storage workload -- object sizes (MB) and the
#: average read request arrival rate per object of that size (requests/s).
TABLE_III_WORKLOAD: Dict[int, float] = {
    4: 0.00029868,
    16: 0.00010824,
    64: 0.00051852,
    256: 0.0000078,
    1024: 0.0000024,
}


def paper_default_model(
    num_files: int = 1000,
    cache_capacity: int = 500,
    num_nodes: int = 12,
    n: Optional[int] = None,
    k: Optional[int] = None,
    arrival_rate_pattern: Optional[Sequence[float]] = None,
    service_rates: Optional[Sequence[float]] = None,
    seed: int = 2016,
    rate_scale: float = 1.0,
) -> StorageSystemModel:
    """Build the default simulation model of Section V-A.

    Parameters
    ----------
    num_files:
        Number of files ``r`` (1000 in the paper).
    cache_capacity:
        Cache size in chunks (the paper's default is 500 chunks of 25 MB).
    num_nodes:
        Number of storage servers ``m`` (12 in the paper).
    n, k:
        Erasure-code parameters; default (7, 4).
    arrival_rate_pattern:
        Per-file arrival rates cycled over the files.
    service_rates:
        Per-server service rates (1/mean service time).
    seed:
        Seed controlling the random chunk placement.
    rate_scale:
        Multiplier applied to every arrival rate (used by load sweeps).
    """
    if n is None or k is None:
        n, k = DEFAULT_CODE
    if arrival_rate_pattern is None:
        arrival_rate_pattern = DEFAULT_ARRIVAL_RATE_PATTERN
    if service_rates is None:
        service_rates = DEFAULT_SERVICE_RATES[:num_nodes]
    if len(service_rates) != num_nodes:
        raise ModelError(
            f"expected {num_nodes} service rates, got {len(service_rates)}"
        )
    rng = np.random.default_rng(seed)
    services = [ExponentialService(rate) for rate in service_rates]
    files = []
    for index in range(num_files):
        placement = rng.choice(num_nodes, size=n, replace=False)
        rate = arrival_rate_pattern[index % len(arrival_rate_pattern)] * rate_scale
        files.append(
            FileSpec(
                file_id=f"file-{index}",
                n=n,
                k=k,
                placement=[int(node) for node in placement],
                arrival_rate=float(rate),
                chunk_size=DEFAULT_CHUNK_SIZE_MB,
                size_bytes=DEFAULT_CHUNK_SIZE_MB * k * 1024 * 1024,
            )
        )
    return StorageSystemModel(
        services=services, files=files, cache_capacity=cache_capacity
    )


def ten_file_model(
    cache_capacity: int = 10,
    arrival_rates: Optional[Sequence[float]] = None,
    placement_mode: str = "random",
    seed: int = 2016,
    rate_scale: float = 1.0,
) -> StorageSystemModel:
    """Build the 10-file model used by the Fig. 5 / Fig. 6 experiments.

    Parameters
    ----------
    placement_mode:
        ``"random"`` -- random (7,4) placement on the 12 servers (Fig. 5), or
        ``"split"`` -- the Fig. 6 layout where the first three files live on
        servers 0-6 and the remaining seven on servers 5-11 (so servers 5
        and 6 host chunks of every file).
    """
    n, k = DEFAULT_CODE
    num_nodes = 12
    if arrival_rates is None:
        arrival_rates = [
            DEFAULT_ARRIVAL_RATE_PATTERN[index % len(DEFAULT_ARRIVAL_RATE_PATTERN)]
            for index in range(10)
        ]
    if len(arrival_rates) != 10:
        raise ModelError(f"expected 10 arrival rates, got {len(arrival_rates)}")
    rng = np.random.default_rng(seed)
    services = [ExponentialService(rate) for rate in DEFAULT_SERVICE_RATES[:num_nodes]]
    files = []
    for index in range(10):
        if placement_mode == "random":
            placement = [int(x) for x in rng.choice(num_nodes, size=n, replace=False)]
        elif placement_mode == "split":
            if index < 3:
                placement = list(range(0, 7))
            else:
                placement = list(range(5, 12))
        else:
            raise ModelError(f"unknown placement_mode {placement_mode!r}")
        files.append(
            FileSpec(
                file_id=f"file-{index}",
                n=n,
                k=k,
                placement=placement,
                arrival_rate=float(arrival_rates[index]) * rate_scale,
                chunk_size=DEFAULT_CHUNK_SIZE_MB,
                size_bytes=DEFAULT_CHUNK_SIZE_MB * k * 1024 * 1024,
            )
        )
    return StorageSystemModel(
        services=services, files=files, cache_capacity=cache_capacity
    )


def table_i_time_bins(duration: float = 100.0) -> List[TimeBin]:
    """The three time bins of Table I as :class:`TimeBin` objects."""
    return [
        TimeBin(index=index + 1, duration=duration, arrival_rates=dict(rates))
        for index, rates in enumerate(TABLE_I_ARRIVAL_RATES)
    ]


def table_iii_arrival_rates(
    object_size_mb: int,
    num_objects: int,
    rate_scale: float = 1.0,
) -> Dict[str, float]:
    """Per-object arrival rates for a Table-III object size.

    Each of the ``num_objects`` active objects of the given size receives
    the table's average per-object rate (scaled by ``rate_scale``); the
    paper's prototype uses 1000 active objects per size.
    """
    if object_size_mb not in TABLE_III_WORKLOAD:
        raise WorkloadError(
            f"object size {object_size_mb} MB not in Table III; "
            f"known sizes: {sorted(TABLE_III_WORKLOAD)}"
        )
    if num_objects <= 0:
        raise WorkloadError("num_objects must be positive")
    rate = TABLE_III_WORKLOAD[object_size_mb] * rate_scale
    return {f"obj-{object_size_mb}mb-{index}": rate for index in range(num_objects)}


def aggregate_rate_to_per_object(
    aggregate_rate: float, num_objects: int
) -> Dict[str, float]:
    """Split an aggregate arrival rate evenly over ``num_objects`` objects.

    Fig. 11 sweeps aggregate read rates of 0.5-8.0 requests/s over 1000
    64-MB objects; this helper produces the per-object rates for that sweep.
    """
    if aggregate_rate < 0:
        raise WorkloadError("aggregate rate must be non-negative")
    if num_objects <= 0:
        raise WorkloadError("num_objects must be positive")
    per_object = aggregate_rate / num_objects
    return {f"obj-{index}": per_object for index in range(num_objects)}
