"""Deprecated facade over :mod:`repro.workloads.catalog` (Section V-A setup).

The model builders moved to :mod:`repro.workloads.catalog` when every
workload was unified behind the :class:`~repro.workloads.base.Workload`
protocol; direct calls through this module keep working but emit a
:class:`DeprecationWarning`.  Prefer ``Scenario(workload="paper_default")``
/ ``Scenario(workload="ten_file")`` or the catalog module.
"""

from __future__ import annotations

from repro.api.deprecation import deprecated
from repro.workloads.catalog import (  # noqa: F401  (constant re-exports)
    DEFAULT_ARRIVAL_RATE_PATTERN,
    DEFAULT_CHUNK_SIZE_MB,
    DEFAULT_CODE,
    DEFAULT_SERVICE_RATES,
)
from repro.workloads.catalog import paper_default_model as _paper_default_model
from repro.workloads.catalog import ten_file_model as _ten_file_model

paper_default_model = deprecated(
    "repro.workloads.catalog.paper_default_model or "
    "Scenario(workload='paper_default')",
    name="repro.workloads.defaults.paper_default_model",
)(_paper_default_model)

ten_file_model = deprecated(
    "repro.workloads.catalog.ten_file_model or Scenario(workload='ten_file')",
    name="repro.workloads.defaults.ten_file_model",
)(_ten_file_model)

__all__ = [
    "DEFAULT_ARRIVAL_RATE_PATTERN",
    "DEFAULT_CHUNK_SIZE_MB",
    "DEFAULT_CODE",
    "DEFAULT_SERVICE_RATES",
    "paper_default_model",
    "ten_file_model",
]
