"""Baseline caching policies the paper compares against.

* :mod:`repro.baselines.lru` -- an LRU replicated cache tier (Ceph's
  cache-tier baseline in the paper's evaluation).
* :mod:`repro.baselines.exact` -- exact caching of ``d`` verbatim chunks
  (the strawman functional caching strictly dominates).
* :mod:`repro.baselines.static` -- no caching and whole-file caching of the
  most popular files.
"""

from repro.baselines.lru import LRUCache, LRUChunkCachingPolicy
from repro.baselines.exact import ExactCachingPolicy, exact_caching_placement
from repro.baselines.static import (
    no_cache_placement,
    popularity_whole_file_placement,
    proportional_placement,
)

__all__ = [
    "LRUCache",
    "LRUChunkCachingPolicy",
    "ExactCachingPolicy",
    "exact_caching_placement",
    "no_cache_placement",
    "popularity_whole_file_placement",
    "proportional_placement",
]
