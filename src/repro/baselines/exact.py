"""Exact caching baseline: cache ``d`` verbatim copies of storage chunks.

Under exact caching the ``d_i`` cached chunks are identical to chunks held on
specific storage nodes, so those nodes become useless for the remaining
``k_i - d_i`` fetches of a request.  Functional caching removes that
restriction; the paper argues (Section III) that its latency is therefore
never worse.  This module builds exact-caching placements so the claim can be
checked quantitatively in simulations and benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.core.bound import SolutionState
from repro.core.model import StorageSystemModel
from repro.core.placement import CachePlacement, FilePlacement
from repro.core.vectorized import VectorizedSystem
from repro.exceptions import ModelError
from repro.queueing.order_stats import latency_upper_bound
from repro.core.bound import node_moments


class ExactCachingPolicy:
    """Exact caching with a fixed per-file allocation.

    Parameters
    ----------
    model:
        The storage-system model.
    allocation:
        Mapping from file id to ``d_i`` -- how many verbatim chunks to cache.
    cached_nodes:
        Optional mapping from file id to the list of nodes whose chunks were
        copied into the cache.  Defaults to the first ``d_i`` nodes of the
        file's placement (the "most popular chunks" convention).
    """

    def __init__(
        self,
        model: StorageSystemModel,
        allocation: Mapping[str, int],
        cached_nodes: Optional[Mapping[str, List[int]]] = None,
    ):
        self._model = model
        self._allocation: Dict[str, int] = {}
        self._cached_nodes: Dict[str, List[int]] = {}
        total = 0
        for spec in model.files:
            d = int(allocation.get(spec.file_id, 0))
            if not 0 <= d <= spec.k:
                raise ModelError(
                    f"file {spec.file_id}: exact-cache allocation {d} outside [0, {spec.k}]"
                )
            self._allocation[spec.file_id] = d
            if cached_nodes is not None and spec.file_id in cached_nodes:
                nodes = list(cached_nodes[spec.file_id])
            else:
                nodes = list(spec.placement[:d])
            if len(nodes) != d:
                raise ModelError(
                    f"file {spec.file_id}: expected {d} cached nodes, got {len(nodes)}"
                )
            for node_id in nodes:
                if node_id not in spec.placement:
                    raise ModelError(
                        f"file {spec.file_id}: cached chunk from node {node_id} "
                        "that does not store the file"
                    )
            self._cached_nodes[spec.file_id] = nodes
            total += d
        if total > model.cache_capacity:
            raise ModelError(
                f"exact caching allocation uses {total} chunks, capacity is "
                f"{model.cache_capacity}"
            )

    @property
    def allocation(self) -> Dict[str, int]:
        """Per-file number of exactly cached chunks."""
        return dict(self._allocation)

    def usable_nodes(self, file_id: str) -> List[int]:
        """Storage nodes still usable for a read of ``file_id``.

        The nodes whose chunks were copied verbatim into the cache cannot
        contribute new chunks, so they are excluded.
        """
        spec = self._model.file(file_id)
        excluded = set(self._cached_nodes[file_id])
        return [node_id for node_id in spec.placement if node_id not in excluded]

    def to_solution_state(self) -> SolutionState:
        """Uniform scheduling over the usable nodes, as a SolutionState."""
        probabilities: List[Dict[int, float]] = []
        for spec in self._model.files:
            d = self._allocation[spec.file_id]
            usable = self.usable_nodes(spec.file_id)
            needed = spec.k - d
            if needed > len(usable):
                raise ModelError(
                    f"file {spec.file_id}: needs {needed} storage chunks but only "
                    f"{len(usable)} usable nodes remain"
                )
            pi = needed / len(usable) if usable else 0.0
            probabilities.append({node_id: pi for node_id in usable})
        return SolutionState(
            probabilities=probabilities, z_values=[0.0] * self._model.num_files
        )

    def latency_bounds(self) -> Dict[str, float]:
        """Per-file Lemma-1 bounds under uniform scheduling on usable nodes."""
        state = self.to_solution_state()
        moments = node_moments(self._model, state)
        bounds: Dict[str, float] = {}
        for spec, file_probs in zip(self._model.files, state.probabilities):
            relevant = {j: moments[j] for j in file_probs}
            if file_probs:
                bounds[spec.file_id] = latency_upper_bound(file_probs, relevant)
            else:
                bounds[spec.file_id] = 0.0
        return bounds

    def to_placement(self) -> CachePlacement:
        """Express the policy as a :class:`CachePlacement` for the simulator."""
        state = self.to_solution_state()
        bounds = self.latency_bounds()
        files = []
        total_rate = self._model.total_arrival_rate
        objective = 0.0
        for spec, file_probs in zip(self._model.files, state.probabilities):
            bound = bounds[spec.file_id]
            objective += spec.arrival_rate / total_rate * bound
            files.append(
                FilePlacement(
                    file_id=spec.file_id,
                    cached_chunks=self._allocation[spec.file_id],
                    scheduling_probabilities=dict(file_probs),
                    latency_bound=bound,
                    arrival_rate=spec.arrival_rate,
                    k=spec.k,
                    n=spec.n,
                )
            )
        return CachePlacement(
            files=files,
            objective=objective,
            cache_capacity=self._model.cache_capacity,
            metadata={"policy": 1.0},
        )


def exact_caching_placement(
    model: StorageSystemModel,
    allocation: Optional[Mapping[str, int]] = None,
) -> CachePlacement:
    """Build an exact-caching placement.

    When ``allocation`` is omitted, the cache is filled greedily by file
    popularity (highest arrival rate first), one chunk at a time -- the
    classic "cache the most popular data" heuristic.
    """
    if allocation is None:
        allocation = popularity_allocation(model)
    policy = ExactCachingPolicy(model, allocation)
    return policy.to_placement()


def popularity_allocation(model: StorageSystemModel) -> Dict[str, int]:
    """Greedy popularity-based allocation of the cache, one chunk per round."""
    remaining = model.cache_capacity
    allocation = {spec.file_id: 0 for spec in model.files}
    ranked = sorted(model.files, key=lambda spec: spec.arrival_rate, reverse=True)
    while remaining > 0:
        progressed = False
        for spec in ranked:
            if remaining <= 0:
                break
            if allocation[spec.file_id] < spec.k:
                allocation[spec.file_id] += 1
                remaining -= 1
                progressed = True
        if not progressed:
            break
    return allocation
