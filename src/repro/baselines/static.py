"""Static caching baselines: no cache, whole-file caching, proportional split.

These simple policies complete the comparison set used by the experiments:

* ``no_cache_placement`` -- everything is fetched from storage (the C = 0
  point of Fig. 4).
* ``popularity_whole_file_placement`` -- the most popular files are cached in
  their entirety until the capacity runs out (the complete-file caching the
  paper's introduction argues is wasteful in erasure-coded stores).
* ``proportional_placement`` -- cache space is spread across files in
  proportion to their arrival rates (a naive fractional heuristic rounded to
  integers).
"""

from __future__ import annotations

from typing import Dict, List

from repro.baselines.exact import ExactCachingPolicy
from repro.core.bound import SolutionState, node_moments
from repro.core.model import StorageSystemModel
from repro.core.placement import CachePlacement, FilePlacement
from repro.queueing.order_stats import latency_upper_bound


def functional_placement_from_allocation(
    model: StorageSystemModel, allocation: Dict[str, int]
) -> CachePlacement:
    """Build a functional-caching placement with uniform scheduling.

    The allocation decides ``d_i``; each file then spreads its ``k_i - d_i``
    storage fetches uniformly over all ``n_i`` hosting nodes (functional
    caching keeps every node usable).
    """
    probabilities: List[Dict[int, float]] = []
    for spec in model.files:
        d = allocation.get(spec.file_id, 0)
        pi = (spec.k - d) / spec.n
        probabilities.append({node_id: pi for node_id in spec.placement})
    state = SolutionState(
        probabilities=probabilities, z_values=[0.0] * model.num_files
    )
    moments = node_moments(model, state)
    files = []
    total_rate = model.total_arrival_rate
    objective = 0.0
    for spec, file_probs in zip(model.files, state.probabilities):
        relevant = {j: moments[j] for j in file_probs}
        if any(pi > 0 for pi in file_probs.values()):
            bound = latency_upper_bound(file_probs, relevant)
        else:
            bound = 0.0
        objective += spec.arrival_rate / total_rate * bound
        files.append(
            FilePlacement(
                file_id=spec.file_id,
                cached_chunks=allocation.get(spec.file_id, 0),
                scheduling_probabilities=dict(file_probs),
                latency_bound=bound,
                arrival_rate=spec.arrival_rate,
                k=spec.k,
                n=spec.n,
            )
        )
    return CachePlacement(
        files=files, objective=objective, cache_capacity=model.cache_capacity
    )


def no_cache_placement(model: StorageSystemModel) -> CachePlacement:
    """A placement that caches nothing (pure erasure-coded reads)."""
    allocation = {spec.file_id: 0 for spec in model.files}
    return functional_placement_from_allocation(model, allocation)


def popularity_whole_file_placement(model: StorageSystemModel) -> CachePlacement:
    """Cache the most popular files in their entirety until capacity runs out."""
    remaining = model.cache_capacity
    allocation = {spec.file_id: 0 for spec in model.files}
    for spec in sorted(model.files, key=lambda s: s.arrival_rate, reverse=True):
        if spec.k <= remaining:
            allocation[spec.file_id] = spec.k
            remaining -= spec.k
        if remaining == 0:
            break
    return functional_placement_from_allocation(model, allocation)


def proportional_placement(model: StorageSystemModel) -> CachePlacement:
    """Spread the cache over files proportionally to their arrival rates."""
    total_rate = model.total_arrival_rate
    allocation: Dict[str, int] = {}
    remaining = model.cache_capacity
    # First pass: floor of the proportional share, capped at k_i.
    shares = []
    for spec in model.files:
        share = model.cache_capacity * spec.arrival_rate / total_rate
        take = min(int(share), spec.k)
        allocation[spec.file_id] = take
        remaining -= take
        shares.append((share - int(share), spec))
    # Second pass: distribute the remainder by largest fractional share.
    for _, spec in sorted(shares, key=lambda item: item[0], reverse=True):
        if remaining <= 0:
            break
        if allocation[spec.file_id] < spec.k:
            allocation[spec.file_id] += 1
            remaining -= 1
    return functional_placement_from_allocation(model, allocation)


def exact_vs_functional_bounds(
    model: StorageSystemModel, allocation: Dict[str, int]
) -> Dict[str, Dict[str, float]]:
    """Per-file latency bounds under exact vs functional caching.

    Both policies cache the same number of chunks per file; the only
    difference is whether the cached chunks exclude their source nodes from
    serving reads (exact) or not (functional).  Used by tests and the
    ablation benchmark to verify that functional caching is never worse.
    """
    exact_policy = ExactCachingPolicy(model, allocation)
    exact_bounds = exact_policy.latency_bounds()
    functional = functional_placement_from_allocation(model, allocation)
    results: Dict[str, Dict[str, float]] = {}
    for entry in functional.files:
        results[entry.file_id] = {
            "functional": entry.latency_bound,
            "exact": exact_bounds[entry.file_id],
        }
    return results
