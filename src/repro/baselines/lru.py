"""LRU replicated caching -- the Ceph cache-tier baseline.

Ceph's cache tier stores whole replicated objects in a fast pool and evicts
the least-recently-used ones when capacity is exceeded; every miss promotes
the object from the erasure-coded storage tier.  The paper uses this policy
as its baseline and reports roughly a 25% latency disadvantage against the
optimized functional cache.

Two components are provided:

* :class:`LRUCache` -- a capacity-bounded LRU container (generic, counted in
  chunks) with hit/miss/eviction statistics.
* :class:`LRUChunkCachingPolicy` -- drives an LRU cache from a request
  stream and exposes, for any moment, how many chunks of each file are
  cached; this is what the simulator and the cluster emulation consume.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.exceptions import CacheError


@dataclass
class LRUStatistics:
    """Hit/miss/eviction counters for an LRU cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    insertions: int = 0

    @property
    def accesses(self) -> int:
        """Total number of lookups."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups that hit (0 when no lookups were made)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


class LRUCache:
    """A least-recently-used cache with a capacity measured in chunks.

    Keys are arbitrary hashables (file ids in the whole-object mode, or
    ``(file_id, chunk_index)`` tuples in per-chunk mode); each key carries a
    size in chunks.
    """

    def __init__(self, capacity: int):
        if capacity < 0:
            raise CacheError(f"capacity must be non-negative, got {capacity}")
        self._capacity = int(capacity)
        self._entries: "OrderedDict[object, int]" = OrderedDict()
        self._used = 0
        self.stats = LRUStatistics()

    @property
    def capacity(self) -> int:
        """Capacity in chunks."""
        return self._capacity

    @property
    def used(self) -> int:
        """Chunks currently stored."""
        return self._used

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> List[object]:
        """Keys from least to most recently used."""
        return list(self._entries.keys())

    def access(self, key: object, size: int = 1) -> bool:
        """Access ``key``; insert it on a miss.  Returns ``True`` on a hit."""
        if size <= 0:
            raise CacheError(f"entry size must be positive, got {size}")
        if key in self._entries:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        self.insert(key, size)
        return False

    def peek(self, key: object) -> bool:
        """Check membership without updating recency or statistics."""
        return key in self._entries

    def touch(self, key: object) -> bool:
        """Refresh recency of ``key`` without touching statistics."""
        if key in self._entries:
            self._entries.move_to_end(key)
            return True
        return False

    def insert(self, key: object, size: int = 1) -> List[Tuple[object, int]]:
        """Insert ``key``; returns the ``(key, size)`` LRU victims evicted."""
        if size <= 0:
            raise CacheError(f"entry size must be positive, got {size}")
        if size > self._capacity:
            # Object larger than the whole cache: not cacheable, nothing to do.
            return []
        if key in self._entries:
            self._used -= self._entries.pop(key)
        victims: List[Tuple[object, int]] = []
        while self._used + size > self._capacity and self._entries:
            evicted_key, evicted_size = self._entries.popitem(last=False)
            self._used -= evicted_size
            self.stats.evictions += 1
            victims.append((evicted_key, evicted_size))
        self._entries[key] = size
        self._used += size
        self.stats.insertions += 1
        return victims

    def evict(self, key: object) -> bool:
        """Explicitly remove ``key``; returns whether it was present."""
        if key in self._entries:
            self._used -= self._entries.pop(key)
            return True
        return False

    def clear(self) -> None:
        """Drop all entries (statistics are preserved)."""
        self._entries.clear()
        self._used = 0


class LRUChunkCachingPolicy:
    """Replicated LRU caching of whole objects, viewed in chunk units.

    Parameters
    ----------
    capacity_chunks:
        Cache capacity in chunk units.
    chunks_per_file:
        Mapping from file id to the number of chunks a cached copy occupies.
        Ceph's cache tier replicates whole objects, so a cached file always
        occupies all ``k_i`` data chunks (times the replication factor if
        ``replication > 1``).
    replication:
        Replication factor of the cache tier (the paper's baseline uses dual
        replication, but capacity figures in the paper are already quoted in
        usable chunks, so the default is 1).
    """

    def __init__(
        self,
        capacity_chunks: int,
        chunks_per_file: Dict[str, int],
        replication: int = 1,
    ):
        if replication < 1:
            raise CacheError("replication factor must be at least 1")
        self._cache = LRUCache(capacity_chunks)
        self._chunks_per_file = dict(chunks_per_file)
        self._replication = replication

    @property
    def cache(self) -> LRUCache:
        """The underlying LRU container."""
        return self._cache

    @property
    def stats(self) -> LRUStatistics:
        """Hit/miss statistics."""
        return self._cache.stats

    def file_size_in_cache(self, file_id: str) -> int:
        """Chunk footprint a cached copy of ``file_id`` occupies."""
        try:
            return self._chunks_per_file[file_id] * self._replication
        except KeyError as error:
            raise CacheError(f"unknown file id {file_id!r}") from error

    def on_request(self, file_id: str) -> Tuple[bool, int]:
        """Process a file request.

        Returns
        -------
        tuple
            ``(hit, cached_chunks)`` -- whether the request hit the cache and
            how many of the file's chunks are served from the cache for this
            request (all ``k_i`` on a hit, 0 on a miss; the miss also
            promotes the object, evicting LRU entries).
        """
        size = self.file_size_in_cache(file_id)
        hit = self._cache.access(file_id, size)
        if hit:
            return True, self._chunks_per_file[file_id]
        return False, 0

    def cached_chunks(self, file_id: str) -> int:
        """Chunks of ``file_id`` currently served from cache (0 or ``k_i``)."""
        if self._cache.peek(file_id):
            return self._chunks_per_file[file_id]
        return 0

    def cached_files(self) -> List[str]:
        """Files currently resident in the cache (LRU to MRU order)."""
        return [str(key) for key in self._cache.keys()]

    def warm(self, file_ids: List[str]) -> None:
        """Pre-populate the cache with the given files (in order)."""
        for file_id in file_ids:
            self._cache.insert(file_id, self.file_size_in_cache(file_id))
