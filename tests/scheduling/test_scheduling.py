"""Tests for inclusion-probability sampling and the probabilistic scheduler."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithm import CacheOptimizer
from repro.exceptions import SimulationError
from repro.scheduling.sampling import (
    empirical_inclusion_frequencies,
    sample_node_set,
    split_request,
    systematic_inclusion_sample,
)
from repro.scheduling.scheduler import ProbabilisticScheduler


class TestSystematicSampling:
    def test_set_size_matches_probability_sum(self, rng):
        probabilities = {0: 0.5, 1: 0.75, 2: 0.75, 3: 1.0}
        for _ in range(50):
            selected = sample_node_set(probabilities, rng)
            assert len(selected) == 3
            assert len(set(selected)) == 3

    def test_zero_sum_returns_empty(self, rng):
        assert sample_node_set({0: 0.0, 1: 0.0}, rng) == []

    def test_certain_nodes_always_included(self, rng):
        probabilities = {0: 1.0, 1: 0.5, 2: 0.5}
        for _ in range(30):
            assert 0 in sample_node_set(probabilities, rng)

    def test_non_integer_sum_rejected(self, rng):
        with pytest.raises(SimulationError):
            systematic_inclusion_sample([0, 1], [0.4, 0.3], rng)

    def test_out_of_range_probability_rejected(self, rng):
        with pytest.raises(SimulationError):
            systematic_inclusion_sample([0, 1], [1.4, 0.6], rng)

    def test_length_mismatch_rejected(self, rng):
        with pytest.raises(SimulationError):
            systematic_inclusion_sample([0, 1, 2], [0.5, 0.5], rng)

    def test_marginals_match_requested_probabilities(self, rng):
        probabilities = {0: 0.9, 1: 0.6, 2: 0.3, 3: 0.2}
        frequencies = empirical_inclusion_frequencies(probabilities, rng, draws=4000)
        for node, probability in probabilities.items():
            assert frequencies[node] == pytest.approx(probability, abs=0.04)

    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=3, max_size=8
        ),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_set_size_always_integer_sum(self, values, seed):
        total = sum(values)
        # Adjust the last value so the total is an integer within [0, len].
        target = round(total)
        if target > len(values):
            target = len(values)
        diff = target - total
        values = list(values)
        values[-1] = min(max(values[-1] + diff, 0.0), 1.0)
        if abs(sum(values) - target) > 1e-9:
            return  # adjustment hit the box boundary; skip this example
        rng = np.random.default_rng(seed)
        selected = systematic_inclusion_sample(list(range(len(values))), values, rng)
        assert len(selected) == target

    def test_split_request(self, rng):
        cached, nodes = split_request(4, 1, {0: 1.0, 1: 1.0, 2: 0.5, 3: 0.5}, rng)
        assert cached == 1
        assert len(nodes) == 3
        with pytest.raises(SimulationError):
            split_request(4, 5, {0: 1.0}, rng)


class TestProbabilisticScheduler:
    def _scheduler(self, seed=0):
        cached = {"a": 1, "b": 0}
        probabilities = {
            "a": {0: 1.0, 1: 0.5, 2: 0.5},  # k - d = 2
            "b": {0: 1.0, 1: 1.0, 2: 1.0},  # k - d = 3
        }
        k_values = {"a": 3, "b": 3}
        return ProbabilisticScheduler(cached, probabilities, k_values, seed=seed)

    def test_dispatch_structure(self):
        scheduler = self._scheduler()
        request = scheduler.dispatch("a", arrival_time=1.0)
        assert request.cache_chunks == 1
        assert len(request.storage_nodes) == 2
        assert request.total_chunks == 3
        cache_targets = [c for c in request.chunk_requests if c.from_cache]
        storage_targets = [c for c in request.chunk_requests if not c.from_cache]
        assert len(cache_targets) == 1
        assert len(storage_targets) == 2

    def test_unknown_file_rejected(self):
        with pytest.raises(SimulationError):
            self._scheduler().dispatch("zzz", 0.0)

    def test_inconsistent_probabilities_rejected(self):
        with pytest.raises(SimulationError):
            ProbabilisticScheduler({"a": 1}, {"a": {0: 1.0}}, {"a": 3})

    def test_invalid_cached_count_rejected(self):
        with pytest.raises(SimulationError):
            ProbabilisticScheduler({"a": 5}, {"a": {}}, {"a": 3})

    def test_expected_node_load(self):
        scheduler = self._scheduler()
        load = scheduler.expected_node_load({"a": 2.0, "b": 1.0})
        assert load[0] == pytest.approx(2.0 * 1.0 + 1.0 * 1.0)
        assert load[1] == pytest.approx(2.0 * 0.5 + 1.0 * 1.0)

    def test_expected_cache_fraction(self):
        scheduler = self._scheduler()
        fraction = scheduler.expected_cache_fraction({"a": 1.0, "b": 1.0})
        assert fraction == pytest.approx(1.0 / 6.0)

    def test_from_placement_round_trip(self, small_model):
        placement = CacheOptimizer(small_model, tolerance=0.01).optimize().placement
        scheduler = ProbabilisticScheduler.from_placement(placement, seed=1)
        for spec in small_model.files:
            request = scheduler.dispatch(spec.file_id, 0.0)
            assert request.total_chunks == spec.k
            assert set(request.storage_nodes) <= set(spec.placement)
