"""Tests for the discrete-event simulator and its building blocks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.static import no_cache_placement
from repro.core.algorithm import CacheOptimizer
from repro.exceptions import SimulationError, WorkloadError
from repro.queueing.distributions import DeterministicService, ExponentialService
from repro.queueing.mg1 import queue_moments
from repro.simulation.arrivals import (
    NonHomogeneousPoissonArrivals,
    PoissonArrivalProcess,
    generate_request_arrays,
    generate_request_stream,
    merge_arrival_streams,
)
from repro.simulation.events import EventQueue
from repro.simulation.metrics import LatencyMetrics, SlotCounter
from repro.simulation.node import CacheDevice, StorageNodeQueue
from repro.simulation.simulator import (
    SimulationConfig,
    StorageSimulator,
    simulate_placement_latency,
)


class TestEventQueue:
    def test_ordering_and_clock(self):
        queue = EventQueue()
        queue.schedule(5.0, "b")
        queue.schedule(1.0, "a")
        queue.schedule(5.0, "c")
        assert queue.pop().kind == "a"
        first_tie = queue.pop()
        assert first_tie.kind == "b"  # insertion order breaks the tie
        assert queue.now == 5.0
        assert queue.pop().kind == "c"
        assert queue.is_empty()

    def test_cannot_schedule_in_past(self):
        queue = EventQueue()
        queue.schedule(10.0, "x")
        queue.pop()
        with pytest.raises(SimulationError):
            queue.schedule(5.0, "y")

    def test_schedule_after_and_run_until(self):
        queue = EventQueue()
        fired = []
        queue.schedule_after(1.0, "tick", callback=lambda e: fired.append(e.time))
        queue.schedule_after(2.0, "tick", callback=lambda e: fired.append(e.time))
        queue.schedule_after(9.0, "late", callback=lambda e: fired.append(e.time))
        processed = queue.run_until(5.0)
        assert processed == 2
        assert fired == [1.0, 2.0]
        assert queue.now == 5.0

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()


class TestStorageNodeQueue:
    def test_fifo_backlog_accumulates(self, rng):
        node = StorageNodeQueue(0, DeterministicService(2.0), rng=rng)
        first = node.enqueue_chunk(0.0, "f", 0)
        second = node.enqueue_chunk(0.0, "f", 1)
        third = node.enqueue_chunk(10.0, "f", 2)
        assert first == pytest.approx(2.0)
        assert second == pytest.approx(4.0)   # waits for the first
        assert third == pytest.approx(12.0)   # idle gap, then service
        assert node.chunks_served == 3
        assert node.busy_fraction(12.0) == pytest.approx(0.5)

    def test_records_kept_when_enabled(self, rng):
        node = StorageNodeQueue(0, DeterministicService(1.0), rng=rng, keep_records=True)
        node.enqueue_chunk(0.0, "f", 0)
        node.enqueue_chunk(0.0, "f", 1)
        records = node.records
        assert records[1].waiting_time == pytest.approx(1.0)
        assert records[1].sojourn_time == pytest.approx(2.0)

    def test_mean_sojourn_matches_mg1_theory(self):
        # Long single-node simulation vs the Pollaczek-Khinchine prediction.
        rng = np.random.default_rng(7)
        service = ExponentialService(1.0)
        node = StorageNodeQueue(0, service, rng=rng, keep_records=True)
        arrival_rate = 0.6
        time = 0.0
        while time < 50_000.0:
            time += rng.exponential(1.0 / arrival_rate)
            node.enqueue_chunk(time, "f", 0)
        sojourns = [record.sojourn_time for record in node.records[1000:]]
        predicted = queue_moments(arrival_rate, service).mean
        assert np.mean(sojourns) == pytest.approx(predicted, rel=0.08)

    def test_reset(self, rng):
        node = StorageNodeQueue(0, DeterministicService(1.0), rng=rng)
        node.enqueue_chunk(0.0, "f", 0)
        node.reset()
        assert node.chunks_served == 0
        assert node.queue_length_proxy(0.0) == 0.0


class TestCacheDevice:
    def test_zero_latency_by_default(self):
        cache = CacheDevice()
        assert cache.read_chunk(5.0) == 5.0
        assert cache.chunks_served == 1

    def test_with_service_distribution(self, rng):
        cache = CacheDevice(service=DeterministicService(0.5), rng=rng)
        assert cache.read_chunk(1.0) == pytest.approx(1.5)

    def test_finite_concurrency_queues(self, rng):
        cache = CacheDevice(service=DeterministicService(1.0), rng=rng, concurrency=1)
        first = cache.read_chunk(0.0)
        second = cache.read_chunk(0.0)
        assert first == pytest.approx(1.0)
        assert second == pytest.approx(2.0)


class TestArrivals:
    def test_poisson_rate(self, rng):
        process = PoissonArrivalProcess("f", rate=2.0)
        times = process.generate(10_000.0, rng)
        assert len(times) == pytest.approx(20_000, rel=0.05)
        assert all(0 <= t < 10_000.0 for t in times)

    def test_zero_rate(self, rng):
        assert PoissonArrivalProcess("f", rate=0.0).generate(100.0, rng) == []

    def test_negative_rate_rejected(self):
        with pytest.raises(WorkloadError):
            PoissonArrivalProcess("f", rate=-1.0)

    def test_non_homogeneous_rates(self, rng):
        process = NonHomogeneousPoissonArrivals("f", [(0.0, 5.0), (100.0, 0.5)])
        times = process.generate(200.0, rng)
        first_half = sum(1 for t in times if t < 100.0)
        second_half = len(times) - first_half
        assert first_half == pytest.approx(500, rel=0.2)
        assert second_half == pytest.approx(50, rel=0.5)
        assert process.rate_at(50.0) == 5.0
        assert process.rate_at(150.0) == 0.5

    def test_non_homogeneous_validation(self):
        with pytest.raises(WorkloadError):
            NonHomogeneousPoissonArrivals("f", [])
        with pytest.raises(WorkloadError):
            NonHomogeneousPoissonArrivals("f", [(0.0, 1.0), (0.0, 2.0)])

    def test_merge_streams_sorted(self):
        merged = merge_arrival_streams({"a": [3.0, 1.0], "b": [2.0]})
        assert [t for t, _ in merged] == [1.0, 2.0, 3.0]

    def test_generate_request_stream(self, rng):
        stream = generate_request_stream({"a": 1.0, "b": 2.0}, 1000.0, rng)
        counts = {"a": 0, "b": 0}
        for _, file_id in stream:
            counts[file_id] += 1
        assert counts["b"] / max(counts["a"], 1) == pytest.approx(2.0, rel=0.15)

    def test_generate_array_matches_rate(self, rng):
        process = PoissonArrivalProcess("f", rate=2.0)
        times = process.generate_array(10_000.0, rng)
        assert times.size == pytest.approx(20_000, rel=0.05)
        assert np.all(np.diff(times) >= 0)
        assert times.min() >= 0.0 and times.max() < 10_000.0

    def test_non_homogeneous_generate_array(self, rng):
        process = NonHomogeneousPoissonArrivals("f", [(0.0, 5.0), (100.0, 0.5)])
        times = process.generate_array(200.0, rng)
        first_half = int(np.sum(times < 100.0))
        second_half = times.size - first_half
        assert first_half == pytest.approx(500, rel=0.2)
        assert second_half == pytest.approx(50, rel=0.5)

    def test_generate_request_arrays(self, rng):
        times, file_indices, file_ids = generate_request_arrays(
            {"a": 1.0, "b": 2.0}, 1000.0, rng
        )
        assert np.all(np.diff(times) >= 0)
        assert times.size == file_indices.size
        counts = np.bincount(file_indices, minlength=len(file_ids))
        ratio = counts[file_ids.index("b")] / max(counts[file_ids.index("a")], 1)
        assert ratio == pytest.approx(2.0, rel=0.15)


class TestMetrics:
    def test_latency_metrics_summary(self):
        metrics = LatencyMetrics()
        for value in (1.0, 2.0, 3.0, 4.0):
            metrics.record("f", value)
        summary = metrics.summary()
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(2.5)
        assert metrics.file_mean_latency("f") == pytest.approx(2.5)
        assert metrics.percentile(50) == pytest.approx(2.5)

    def test_latency_metrics_validation(self):
        metrics = LatencyMetrics()
        with pytest.raises(SimulationError):
            metrics.mean_latency()
        with pytest.raises(SimulationError):
            metrics.record("f", -1.0)

    def test_weighted_mean(self):
        metrics = LatencyMetrics()
        metrics.record("a", 10.0)
        metrics.record("b", 2.0)
        weighted = metrics.weighted_mean_latency({"a": 3.0, "b": 1.0})
        assert weighted == pytest.approx((3 * 10 + 1 * 2) / 4)

    def test_slot_counter(self):
        counter = SlotCounter(slot_length=5.0, num_slots=4)
        counter.record_cache_chunks(2.0, 3)
        counter.record_storage_chunks(2.0, 1)
        counter.record_storage_chunks(7.0, 2)
        counter.record_cache_chunks(100.0, 9)  # outside the horizon, ignored
        assert counter.total_cache_chunks == 3
        assert counter.total_storage_chunks == 3
        assert counter.cache_fraction() == pytest.approx(0.5)
        rows = counter.as_rows()
        assert rows[0]["cache_chunks"] == 3 and rows[1]["storage_chunks"] == 2


class TestStorageSimulator:
    def test_conservation_of_chunks(self, small_model):
        placement = CacheOptimizer(small_model, tolerance=0.01).optimize().placement
        simulator = StorageSimulator(small_model, placement)
        result = simulator.run(SimulationConfig(horizon=20_000.0, seed=3))
        per_request_chunks = {
            spec.file_id: spec.k for spec in small_model.files
        }
        # Every dispatched request contributes exactly k chunk requests.
        total_chunks = result.chunks_from_cache + result.chunks_from_storage
        expected = sum(
            len(samples) * per_request_chunks[file_id]
            for file_id, samples in result.metrics.per_file.items()
        )
        assert total_chunks == expected
        assert sum(result.per_node_chunks.values()) == result.chunks_from_storage

    def test_simulated_latency_below_analytical_bound(self, small_model):
        placement = CacheOptimizer(small_model, tolerance=0.001).optimize().placement
        simulator = StorageSimulator(small_model, placement)
        result = simulator.run(
            SimulationConfig(horizon=120_000.0, seed=5, warmup=5_000.0)
        )
        # Lemma 1 is an upper bound on the mean latency.
        assert result.mean_latency() <= placement.objective * 1.05

    def test_caching_reduces_simulated_latency(self, small_model):
        optimized = CacheOptimizer(small_model, tolerance=0.001).optimize().placement
        baseline = no_cache_placement(small_model)
        config = SimulationConfig(horizon=80_000.0, seed=9, warmup=4_000.0)
        with_cache = StorageSimulator(small_model, optimized).run(config).mean_latency()
        without_cache = StorageSimulator(small_model, baseline).run(config).mean_latency()
        assert with_cache <= without_cache

    def test_reproducible_with_seed(self, small_model):
        placement = CacheOptimizer(small_model, tolerance=0.01).optimize().placement
        config = SimulationConfig(horizon=5_000.0, seed=42)
        first = StorageSimulator(small_model, placement).run(config)
        second = StorageSimulator(small_model, placement).run(config)
        assert first.mean_latency() == pytest.approx(second.mean_latency())
        assert first.chunks_from_cache == second.chunks_from_cache

    def test_default_scheduler_without_placement(self, small_model):
        result = StorageSimulator(small_model, None).run(
            SimulationConfig(horizon=5_000.0, seed=1)
        )
        assert result.chunks_from_cache == 0
        assert result.cache_chunk_fraction() == 0.0

    def test_config_validation(self):
        with pytest.raises(SimulationError):
            SimulationConfig(horizon=0.0)
        with pytest.raises(SimulationError):
            SimulationConfig(horizon=10.0, warmup=20.0)
        with pytest.raises(SimulationError):
            SimulationConfig(horizon=10.0, slot_length=0.0)

    def test_convenience_helper(self, small_model):
        latency = simulate_placement_latency(
            small_model, None, horizon=5_000.0, seed=2
        )
        assert latency > 0.0
