"""Equivalence tests for the batched simulation engine.

The batch engine must be statistically equivalent to the event-driven
engine: identical seeded runs of either engine are reproducible, and on a
common workload the two engines agree (within sampling noise) on the mean
latency, the cache-chunk fraction and the per-node utilisations.  The
batched systematic sampler must preserve the marginal inclusion
probabilities it is given.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.static import no_cache_placement
from repro.core.algorithm import CacheOptimizer
from repro.exceptions import SimulationError
from repro.queueing.distributions import EmpiricalMomentsService
from repro.scheduling.sampling import batch_systematic_inclusion_sample
from repro.simulation.simulator import SimulationConfig, StorageSimulator


@pytest.fixture(scope="module")
def optimized_placement_factory():
    """Cache of optimized placements, keyed by model identity."""
    cache = {}

    def factory(model):
        key = id(model)
        if key not in cache:
            cache[key] = CacheOptimizer(model, tolerance=0.01).optimize().placement
        return cache[key]

    return factory


class TestBatchSampling:
    def test_rows_have_exact_size_and_distinct_entries(self, rng):
        probs = np.array([0.5, 0.75, 0.75, 1.0, 0.6, 0.4])  # sums to 4
        rows = np.broadcast_to(probs, (500, probs.size))
        selected = batch_systematic_inclusion_sample(rows, rng)
        assert selected.shape == (500, 4)
        for row in selected:
            assert len(set(row.tolist())) == 4

    def test_marginals_preserved(self, rng):
        probs = np.array([0.9, 0.6, 0.3, 0.2, 0.5, 0.5])  # sums to 3
        draws = 20000
        rows = np.broadcast_to(probs, (draws, probs.size))
        selected = batch_systematic_inclusion_sample(rows, rng)
        frequencies = np.bincount(selected.ravel(), minlength=probs.size) / draws
        assert np.allclose(frequencies, probs, atol=0.02)

    def test_heterogeneous_rows(self, rng):
        # Every row may carry different probabilities (the per-request axis).
        base = np.array([0.25, 0.75, 0.5, 0.5])  # sums to 2
        rows = np.stack([np.roll(base, shift) for shift in range(4)] * 2000)
        selected = batch_systematic_inclusion_sample(rows, rng)
        assert selected.shape == (8000, 2)
        # Marginals per row pattern: entry j of pattern s has probability
        # base[(j - s) % 4].
        for shift in range(4):
            rows_of_shift = selected[shift::4]
            frequencies = np.bincount(rows_of_shift.ravel(), minlength=4) / len(
                rows_of_shift
            )
            assert np.allclose(frequencies, np.roll(base, shift), atol=0.03)

    def test_certain_keys_always_selected(self, rng):
        probs = np.array([1.0, 0.5, 0.5])
        rows = np.broadcast_to(probs, (200, 3))
        selected = batch_systematic_inclusion_sample(rows, rng)
        assert np.all(np.any(selected == 0, axis=1))

    def test_inconsistent_rows_rejected(self, rng):
        rows = np.array([[0.5, 0.5], [0.9, 0.7]])  # sums 1.0 and 1.6
        with pytest.raises(SimulationError):
            batch_systematic_inclusion_sample(rows, rng)

    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=3, max_size=8
        ),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_batch_rows_match_integer_sum(self, values, seed):
        total = sum(values)
        target = min(round(total), len(values))
        diff = target - total
        values = list(values)
        values[-1] = min(max(values[-1] + diff, 0.0), 1.0)
        if abs(sum(values) - target) > 1e-9:
            return  # adjustment hit the box boundary; skip this example
        rng = np.random.default_rng(seed)
        rows = np.broadcast_to(np.asarray(values), (32, len(values)))
        selected = batch_systematic_inclusion_sample(rows, rng)
        assert selected.shape == (32, target)
        for row in selected:
            assert len(set(row.tolist())) == target


class TestBatchEngineEquivalence:
    def _run(self, model, placement, engine, **config_kwargs):
        defaults = dict(horizon=150_000.0, seed=7, warmup=5_000.0)
        defaults.update(config_kwargs)
        simulator = StorageSimulator(model, placement, engine=engine)
        return simulator.run(SimulationConfig(**defaults))

    def test_mean_latency_agrees(self, small_model, optimized_placement_factory):
        placement = optimized_placement_factory(small_model)
        event = self._run(small_model, placement, "event")
        batch = self._run(small_model, placement, "batch")
        assert batch.mean_latency() == pytest.approx(event.mean_latency(), rel=0.06)

    def test_cache_fraction_and_chunk_conservation(
        self, small_model, optimized_placement_factory
    ):
        placement = optimized_placement_factory(small_model)
        # No warmup: the chunk counters cover every request, so they can be
        # reconciled exactly against the recorded per-file latencies.
        event = self._run(small_model, placement, "event", warmup=0.0)
        batch = self._run(small_model, placement, "batch", warmup=0.0)
        assert batch.cache_chunk_fraction() == pytest.approx(
            event.cache_chunk_fraction(), abs=0.01
        )
        # Every request contributes exactly k chunks in the batch engine too.
        per_request_chunks = {spec.file_id: spec.k for spec in small_model.files}
        total_chunks = batch.chunks_from_cache + batch.chunks_from_storage
        expected = sum(
            len(samples) * per_request_chunks[file_id]
            for file_id, samples in batch.metrics.per_file.items()
        )
        assert total_chunks == expected
        assert sum(batch.per_node_chunks.values()) == batch.chunks_from_storage

    def test_node_utilization_agrees(self, small_model, optimized_placement_factory):
        placement = optimized_placement_factory(small_model)
        event = self._run(small_model, placement, "event")
        batch = self._run(small_model, placement, "batch")
        for node_id, utilization in event.node_utilization.items():
            assert batch.node_utilization[node_id] == pytest.approx(
                utilization, abs=0.03
            )

    def test_slot_counter_totals_agree(self, small_model, optimized_placement_factory):
        placement = optimized_placement_factory(small_model)
        event = self._run(small_model, placement, "event", slot_length=10_000.0)
        batch = self._run(small_model, placement, "batch", slot_length=10_000.0)
        assert event.slot_counter is not None and batch.slot_counter is not None
        assert batch.slot_counter.cache_fraction() == pytest.approx(
            event.slot_counter.cache_fraction(), abs=0.01
        )
        assert batch.slot_counter.total_cache_chunks == batch.chunks_from_cache

    def test_latency_below_analytical_bound(
        self, small_model, optimized_placement_factory
    ):
        placement = optimized_placement_factory(small_model)
        batch = self._run(small_model, placement, "batch")
        assert batch.mean_latency() <= placement.objective * 1.05

    def test_cache_service_path(self, small_model, optimized_placement_factory):
        placement = optimized_placement_factory(small_model)
        service = EmpiricalMomentsService(mean=0.5, variance=0.05)
        event = self._run(
            small_model, placement, "event", cache_service=service, horizon=100_000.0
        )
        batch = self._run(
            small_model, placement, "batch", cache_service=service, horizon=100_000.0
        )
        assert batch.mean_latency() == pytest.approx(event.mean_latency(), rel=0.06)

    def test_no_cache_baseline(self, small_model):
        baseline = no_cache_placement(small_model)
        batch = self._run(small_model, baseline, "batch")
        assert batch.chunks_from_cache == 0
        assert batch.cache_chunk_fraction() == 0.0


class TestBatchEngineSeeding:
    def test_seeded_runs_reproducible(self, small_model, optimized_placement_factory):
        placement = optimized_placement_factory(small_model)
        config = SimulationConfig(horizon=20_000.0, seed=42)
        first = StorageSimulator(small_model, placement, engine="batch").run(config)
        second = StorageSimulator(small_model, placement, engine="batch").run(config)
        assert first.mean_latency() == second.mean_latency()
        assert first.chunks_from_cache == second.chunks_from_cache
        assert first.per_node_chunks == second.per_node_chunks

    def test_unseeded_runs_differ(self, small_model, optimized_placement_factory):
        placement = optimized_placement_factory(small_model)
        config = SimulationConfig(horizon=20_000.0, seed=None)
        first = StorageSimulator(small_model, placement, engine="batch").run(config)
        second = StorageSimulator(small_model, placement, engine="batch").run(config)
        assert first.mean_latency() != second.mean_latency()

    def test_event_engine_seeded_reproducible_via_seedsequence(
        self, small_model, optimized_placement_factory
    ):
        placement = optimized_placement_factory(small_model)
        config = SimulationConfig(horizon=10_000.0, seed=11)
        first = StorageSimulator(small_model, placement, engine="event").run(config)
        second = StorageSimulator(small_model, placement, engine="event").run(config)
        assert first.mean_latency() == second.mean_latency()

    def test_engines_use_independent_streams(self, small_model):
        # The two engines draw from the same root seed but are not required
        # to produce identical sample paths -- only consistent statistics.
        streams = SimulationConfig(horizon=100.0, seed=3).spawn_streams()
        assert len(streams) == 4

    def test_unknown_engine_rejected(self, small_model):
        with pytest.raises(SimulationError):
            StorageSimulator(small_model, None, engine="warp")

    def test_keep_node_records_unsupported_in_batch(
        self, small_model, optimized_placement_factory
    ):
        placement = optimized_placement_factory(small_model)
        config = SimulationConfig(horizon=1_000.0, seed=1, keep_node_records=True)
        with pytest.raises(SimulationError):
            StorageSimulator(small_model, placement, engine="batch").run(config)
