"""Replay semantics under fault schedules: equivalence, degeneracy, API.

The two load-bearing guarantees of the failure suite:

* an **empty** schedule (zero-rate generators, windows outside the
  horizon) reproduces the healthy replay **bit-for-bit** -- adding the
  fault layer cost nothing when nothing fails;
* under a **real** schedule the epoch and request engines still agree:
  counters exactly, per-request latencies to float reassociation.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.scenario import Scenario
from repro.cluster.cluster import ClusterConfig
from repro.cluster.replay import ClusterReplay, ReplayTrace
from repro.exceptions import ScenarioError
from repro.faults import FaultWindow, GeneratedFaultSchedule, timeline_from_windows


def zipf_rates(num_objects: int, alpha: float, total_rate: float):
    weights = 1.0 / np.arange(1, num_objects + 1) ** alpha
    weights /= weights.sum()
    return {f"obj-{index}": total_rate * float(w) for index, w in enumerate(weights)}


def make_replay(num_objects=50, cache_objects=12, seed=5, policy="lru", params=None):
    rates = zipf_rates(num_objects, 1.1, 2.0)
    config = ClusterConfig(
        object_size_mb=64, cache_capacity_mb=64 * cache_objects, seed=seed
    )
    trace = ReplayTrace.from_rates(rates, 400.0, seed=11)
    replay = ClusterReplay(config, list(rates), policy=policy, policy_params=params)
    return replay, trace


def assert_engines_match(reference, candidate):
    assert candidate.reads == reference.reads
    assert candidate.hits == reference.hits
    assert candidate.promotions == reference.promotions
    assert candidate.evictions_mb == reference.evictions_mb
    assert candidate.chunks_from_cache == reference.chunks_from_cache
    assert candidate.chunks_from_storage == reference.chunks_from_storage
    assert candidate.degraded_reads == reference.degraded_reads
    assert candidate.failed_reads == reference.failed_reads
    assert candidate.repair_jobs == reference.repair_jobs
    assert np.array_equal(candidate.hit_mask, reference.hit_mask)
    assert np.array_equal(candidate.served_mask, reference.served_mask)
    np.testing.assert_allclose(
        candidate.latencies_ms, reference.latencies_ms, rtol=1e-9, atol=1e-9
    )


FAULT_CASES = [
    ("osd_crash", {"crash_rate": 5e-4, "downtime_ms": 20_000.0}),
    ("degraded_read", {"fraction": 0.25}),
    ("straggler", {"fraction": 0.25, "slowdown": 4.0}),
    ("repair_traffic", {"rate": 2.0}),
]


class TestEngineEquivalenceUnderFaults:
    @pytest.mark.parametrize("faults,fault_params", FAULT_CASES)
    def test_epoch_matches_request_engine(self, faults, fault_params):
        replay, trace = make_replay()
        reference = replay.run(
            trace, engine="request", seed=3, faults=faults, fault_params=fault_params
        )
        epoch = replay.run(
            trace, engine="epoch", seed=3, faults=faults, fault_params=fault_params
        )
        assert epoch.faults == faults
        assert_engines_match(reference, epoch)

    def test_composite_schedule(self):
        replay, trace = make_replay()
        faults = [
            GeneratedFaultSchedule("degraded_read", {"fraction": 0.25}),
            GeneratedFaultSchedule("repair_traffic", {"rate": 2.0}),
        ]
        reference = replay.run(trace, engine="request", seed=3, faults=faults)
        epoch = replay.run(trace, engine="epoch", seed=3, faults=faults)
        assert epoch.faults == "degraded_read+repair_traffic"
        assert epoch.degraded_reads > 0
        assert epoch.repair_jobs > 0
        assert_engines_match(reference, epoch)

    def test_ttl_policy_with_faults(self):
        replay, trace = make_replay(policy="ttl", params={"ttl": 50_000.0})
        kwargs = {
            "faults": "osd_crash",
            "fault_params": {"crash_rate": 5e-4, "downtime_ms": 20_000.0},
        }
        reference = replay.run(trace, engine="request", seed=3, **kwargs)
        epoch = replay.run(trace, engine="epoch", seed=3, **kwargs)
        assert_engines_match(reference, epoch)

    def test_epoch_length_one_with_faults_matches_request(self):
        replay, trace = make_replay()
        kwargs = {"faults": "degraded_read", "fault_params": {"fraction": 0.25}}
        reference = replay.run(trace, engine="request", seed=3, **kwargs)
        epoch = replay.run(trace, engine="epoch", seed=3, epoch_length=1, **kwargs)
        assert_engines_match(reference, epoch)

    def test_fixed_epochs_cut_at_fault_boundaries(self):
        # A coarse fixed epoch still reacts to the outage boundary: the
        # boundary clock forces an epoch break there, so degraded reads
        # appear in both engines with identical counts.
        replay, trace = make_replay()
        kwargs = {
            "faults": "degraded_read",
            "fault_params": {"fraction": 0.25, "start_ms": 100_000.0},
        }
        exact = replay.run(trace, engine="epoch", seed=3, **kwargs)
        coarse = replay.run(trace, engine="epoch", seed=3, epoch_length=64, **kwargs)
        assert coarse.degraded_reads > 0
        assert coarse.failed_reads == exact.failed_reads


class TestEmptyScheduleBitEquality:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_zero_rate_schedule_is_bit_equal_to_healthy(self, seed):
        replay, trace = make_replay(num_objects=20)
        healthy = replay.run(trace, engine="epoch", seed=seed)
        faulted = replay.run(
            trace,
            engine="epoch",
            seed=seed,
            faults="osd_crash",
            fault_params={"crash_rate": 0.0},
        )
        assert faulted.hits == healthy.hits
        assert faulted.degraded_reads == 0 and faulted.failed_reads == 0
        # Bit-equality, not approximate: the trivial timeline must not
        # perturb the healthy code path (same RNG stream, same kernels).
        assert np.array_equal(faulted.latencies_ms, healthy.latencies_ms)

    def test_window_outside_horizon_is_bit_equal_to_healthy(self):
        replay, trace = make_replay()
        healthy = replay.run(trace, engine="epoch", seed=3)
        faulted = replay.run(
            trace,
            engine="epoch",
            seed=3,
            faults="degraded_read",
            fault_params={"fraction": 0.5, "start_ms": 1e12},
        )
        assert np.array_equal(faulted.latencies_ms, healthy.latencies_ms)

    def test_precompiled_trivial_timeline_is_bit_equal(self):
        replay, trace = make_replay()
        timeline = timeline_from_windows([], num_osds=12, horizon_ms=1e9)
        healthy = replay.run(trace, engine="epoch", seed=3)
        faulted = replay.run(trace, engine="epoch", seed=3, faults=timeline)
        assert np.array_equal(faulted.latencies_ms, healthy.latencies_ms)


class TestDegenerateFaults:
    def test_all_osds_down_fails_every_miss(self):
        # Zero cache, every OSD dark: every read needs storage chunks and
        # none can be fetched -- all fail, none served, latency stats nan.
        rates = zipf_rates(20, 1.1, 2.0)
        config = ClusterConfig(object_size_mb=64, cache_capacity_mb=0, seed=5)
        trace = ReplayTrace.from_rates(rates, 200.0, seed=11)
        replay = ClusterReplay(config, list(rates), policy="lru")
        for engine in ("epoch", "request"):
            result = replay.run(
                trace,
                engine=engine,
                seed=3,
                faults="degraded_read",
                fault_params={"fraction": 1.0},
            )
            assert result.failed_reads == result.reads
            assert result.served == 0
            assert result.latencies_ms.size == 0
            assert math.isnan(result.mean_latency_ms())
            assert math.isnan(result.percentile_ms(99.0))
            assert not result.served_mask.any()

    def test_partial_outage_degrades_but_serves(self):
        replay, trace = make_replay()
        result = replay.run(
            trace,
            engine="epoch",
            seed=3,
            faults="degraded_read",
            fault_params={"fraction": 0.25},
        )
        assert result.degraded_reads > 0
        assert result.failed_reads == 0
        assert result.served == result.reads

    def test_straggler_inflates_latency(self):
        replay, trace = make_replay()
        healthy = replay.run(trace, engine="epoch", seed=3)
        slowed = replay.run(
            trace,
            engine="epoch",
            seed=3,
            faults="straggler",
            fault_params={"fraction": 0.5, "slowdown": 8.0},
        )
        assert slowed.mean_latency_ms() > healthy.mean_latency_ms()

    def test_repair_traffic_counted_and_slows_reads(self):
        replay, trace = make_replay()
        healthy = replay.run(trace, engine="epoch", seed=3)
        repairing = replay.run(
            trace,
            engine="epoch",
            seed=3,
            faults="repair_traffic",
            fault_params={"rate": 5.0},
        )
        assert repairing.repair_jobs > 0
        assert repairing.mean_latency_ms() > healthy.mean_latency_ms()


class TestScenarioIntegration:
    def test_faults_round_trip(self):
        scenario = Scenario(
            faults="osd_crash",
            fault_params={"crash_rate": 1e-4, "downtime_ms": 30_000.0},
        )
        restored = Scenario.from_dict(scenario.to_dict())
        assert restored == scenario
        assert restored.faults == "osd_crash"
        assert dict(restored.fault_params) == dict(scenario.fault_params)

    def test_unknown_generator_rejected(self):
        with pytest.raises(Exception, match="no_such_fault"):
            Scenario(faults="no_such_fault")

    def test_unknown_fault_param_rejected(self):
        with pytest.raises(ScenarioError):
            Scenario(faults="osd_crash", fault_params={"typo": 1})

    def test_fault_params_without_faults_rejected(self):
        with pytest.raises(ScenarioError, match="fault_params"):
            Scenario(fault_params={"crash_rate": 1.0})

    def test_describe_mentions_faults(self):
        assert "faults=straggler" in Scenario(faults="straggler").describe()

    def test_run_scenario_records_replay(self):
        from repro.api.session import run_scenario

        result = run_scenario(
            Scenario(
                num_files=20,
                cache_capacity=10,
                simulate=False,
                faults="degraded_read",
                fault_params={"fraction": 0.25},
            )
        )
        assert result.replay is not None
        assert result.replay.faults == "degraded_read"
        assert result.replay.reads > 0
        payload = result.to_dict()
        assert payload["cluster_replay"]["faults"] == "degraded_read"
        assert "replay" in result.timings
        assert "cluster replay" in result.summary()

    def test_healthy_scenario_has_no_replay(self):
        from repro.api.session import run_scenario

        result = run_scenario(
            Scenario(num_files=20, cache_capacity=10, simulate=False)
        )
        assert result.replay is None
        assert "cluster_replay" not in result.to_dict()
