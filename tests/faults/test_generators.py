"""Tests of the fault-schedule layer: windows, timelines, generators, registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.registry import FAULTS, get_fault, list_faults
from repro.exceptions import FaultError, ScenarioError
from repro.faults import (
    CompositeFaultSchedule,
    FaultTimeline,
    FaultWindow,
    GeneratedFaultSchedule,
    as_fault_schedule,
    compile_fault_schedule,
    merge_timelines,
    timeline_from_windows,
)


class TestFaultWindow:
    def test_validation(self):
        with pytest.raises(FaultError, match="kind"):
            FaultWindow("sideways", 0, 0.0, 1.0)
        with pytest.raises(FaultError, match="start < end"):
            FaultWindow("down", 0, 5.0, 5.0)
        with pytest.raises(FaultError, match="non-negative"):
            FaultWindow("down", -1, 0.0, 1.0)
        with pytest.raises(FaultError, match="factor"):
            FaultWindow("slow", 0, 0.0, 1.0, factor=0.0)


class TestTimelineFromWindows:
    def test_piecewise_state(self):
        timeline = timeline_from_windows(
            [
                FaultWindow("down", 0, 100.0, 200.0),
                FaultWindow("slow", 1, 150.0, 250.0, factor=3.0),
            ],
            num_osds=3,
            horizon_ms=1000.0,
        )
        assert timeline.boundaries_ms.tolist() == [100.0, 150.0, 200.0, 250.0]
        assert timeline.num_intervals == 5
        assert not timeline.down_at(50.0).any()
        assert timeline.down_at(120.0)[0] and not timeline.down_at(120.0)[1]
        assert timeline.slow_at(180.0)[1] == 3.0
        assert timeline.down_at(180.0)[0]
        assert not timeline.down_at(220.0)[0]
        assert timeline.slow_at(220.0)[1] == 3.0
        assert timeline.slow_at(300.0)[1] == 1.0
        assert not timeline.trivial

    def test_window_clipped_to_horizon(self):
        timeline = timeline_from_windows(
            [FaultWindow("down", 0, 500.0, 2000.0)], num_osds=2, horizon_ms=1000.0
        )
        # The end edge is outside the horizon, so only the start remains.
        assert timeline.boundaries_ms.tolist() == [500.0]
        assert timeline.down_at(900.0)[0]

    def test_window_outside_horizon_is_dropped(self):
        timeline = timeline_from_windows(
            [FaultWindow("down", 0, 5000.0, 6000.0)], num_osds=2, horizon_ms=1000.0
        )
        assert timeline.trivial
        assert timeline.num_intervals == 1

    def test_rejects_unknown_osd(self):
        with pytest.raises(FaultError, match="cluster has 2"):
            timeline_from_windows(
                [FaultWindow("down", 7, 0.0, 1.0)], num_osds=2, horizon_ms=10.0
            )


class TestMergeTimelines:
    def test_masks_or_slow_multiplies_repairs_merge(self):
        down = timeline_from_windows(
            [FaultWindow("down", 0, 100.0, 200.0)], num_osds=2, horizon_ms=1000.0
        )
        slow = timeline_from_windows(
            [FaultWindow("slow", 0, 150.0, 300.0, factor=2.0)],
            num_osds=2,
            horizon_ms=1000.0,
        )
        repairs = FaultTimeline(
            num_osds=2,
            repair_times_ms=np.asarray([50.0, 400.0]),
            repair_osds=np.asarray([1, 0]),
            repair_services_ms=np.asarray([10.0, 10.0]),
        )
        merged = merge_timelines([down, slow, repairs])
        assert merged.boundaries_ms.tolist() == [100.0, 150.0, 200.0, 300.0]
        assert merged.down_at(175.0)[0] and merged.slow_at(175.0)[0] == 2.0
        assert merged.slow_at(250.0)[0] == 2.0 and not merged.down_at(250.0)[0]
        assert merged.repair_times_ms.tolist() == [50.0, 400.0]

    def test_width_mismatch_rejected(self):
        a = FaultTimeline(num_osds=2)
        b = FaultTimeline(num_osds=3)
        with pytest.raises(FaultError, match="different cluster widths"):
            merge_timelines([a, b])


class TestRegistry:
    def test_builtin_generators_registered(self):
        names = list_faults()
        for name in ("osd_crash", "degraded_read", "straggler", "repair_traffic"):
            assert name in names

    def test_accepted_params_introspection(self):
        spec = get_fault("osd_crash")
        accepted = spec.accepted_params()
        assert "crash_rate" in accepted and "downtime_ms" in accepted
        # The positional machinery (num_osds, horizon_ms, rng, service_ms)
        # is not a user parameter.
        assert "rng" not in accepted and "num_osds" not in accepted

    def test_validate_params_rejects_unknown(self):
        with pytest.raises(ScenarioError, match="crash_rate"):
            FAULTS.get("osd_crash").validate_params({"typo_rate": 1.0})


class TestGeneratedSchedules:
    def test_unknown_generator_fails_eagerly(self):
        with pytest.raises(Exception, match="no_such_fault"):
            GeneratedFaultSchedule("no_such_fault")

    def test_unknown_param_fails_eagerly(self):
        with pytest.raises(ScenarioError):
            GeneratedFaultSchedule("straggler", {"warp": 9})

    def test_same_seed_same_timeline(self):
        schedule = GeneratedFaultSchedule("osd_crash", {"crash_rate": 1e-3})
        a = schedule.compile(12, 500_000.0, seed=42)
        b = schedule.compile(12, 500_000.0, seed=42)
        np.testing.assert_array_equal(a.boundaries_ms, b.boundaries_ms)
        np.testing.assert_array_equal(a.down, b.down)
        c = schedule.compile(12, 500_000.0, seed=43)
        assert not np.array_equal(a.boundaries_ms, c.boundaries_ms)

    def test_osd_crash_duty_cycle(self):
        schedule = GeneratedFaultSchedule(
            "osd_crash", {"crash_rate": 1e-3, "downtime_ms": 10_000.0}
        )
        timeline = schedule.compile(4, 1_000_000.0, seed=0)
        # 1e-3 crashes/s * 10 s downtime = ~1% duty cycle per OSD; sample
        # the availability on a grid and allow generous Poisson noise.
        grid = np.linspace(0.0, 1_000_000.0, 2001, endpoint=False)
        rows = timeline.interval_of(grid)
        down_fraction = timeline.down[rows].mean()
        assert 0.001 < down_fraction < 0.05

    def test_degraded_read_explicit_osds_window(self):
        schedule = GeneratedFaultSchedule(
            "degraded_read",
            {"osds": [1, 3], "start_ms": 100.0, "duration_ms": 200.0},
        )
        timeline = schedule.compile(6, 1000.0, seed=0)
        assert timeline.down_at(150.0).tolist() == [False, True, False, True, False, False]
        assert not timeline.down_at(350.0).any()

    def test_straggler_multiplier(self):
        schedule = GeneratedFaultSchedule("straggler", {"osds": [2], "slowdown": 5.0})
        timeline = schedule.compile(4, 1000.0, seed=0)
        assert timeline.slow_at(500.0).tolist() == [1.0, 1.0, 5.0, 1.0]
        assert not timeline.down.any()

    def test_repair_traffic_uses_service_ms(self):
        schedule = GeneratedFaultSchedule("repair_traffic", {"rate": 50.0})
        timeline = schedule.compile(4, 100_000.0, seed=0, service_ms=10.0)
        assert timeline.repair_times_ms.size > 0
        assert np.all(timeline.repair_services_ms == 10.0)
        assert np.all(np.diff(timeline.repair_times_ms) >= 0)
        assert timeline.repair_osds.min() >= 0
        assert timeline.repair_osds.max() < 4

    def test_zero_rate_is_trivial(self):
        crash = GeneratedFaultSchedule("osd_crash", {"crash_rate": 0.0})
        assert crash.compile(4, 1000.0, seed=0).trivial
        repair = GeneratedFaultSchedule("repair_traffic", {"rate": 0.0})
        assert repair.compile(4, 1000.0, seed=0).trivial


class TestComposition:
    def test_composite_compiles_all_parts(self):
        composite = CompositeFaultSchedule(
            (
                GeneratedFaultSchedule("degraded_read", {"osds": [0]}),
                GeneratedFaultSchedule("repair_traffic", {"rate": 20.0}),
            )
        )
        assert composite.label == "degraded_read+repair_traffic"
        timeline = composite.compile(4, 100_000.0, seed=1)
        assert timeline.down_at(50.0)[0]
        assert timeline.repair_times_ms.size > 0

    def test_composite_is_seed_stable(self):
        composite = CompositeFaultSchedule(("osd_crash", "repair_traffic"))
        a = composite.compile(6, 200_000.0, seed=9)
        b = composite.compile(6, 200_000.0, seed=9)
        np.testing.assert_array_equal(a.down, b.down)
        np.testing.assert_array_equal(a.repair_times_ms, b.repair_times_ms)

    def test_empty_composite_rejected(self):
        with pytest.raises(FaultError, match="at least one part"):
            CompositeFaultSchedule(())


class TestCoercion:
    def test_none_stays_none(self):
        assert as_fault_schedule(None) is None
        assert compile_fault_schedule(None, num_osds=4, horizon_ms=100.0) is None

    def test_params_without_schedule_rejected(self):
        with pytest.raises(FaultError, match="without a fault schedule"):
            as_fault_schedule(None, {"crash_rate": 1.0})

    def test_params_on_non_name_rejected(self):
        timeline = FaultTimeline(num_osds=2)
        with pytest.raises(FaultError, match="only apply to a registered"):
            as_fault_schedule(timeline, {"crash_rate": 1.0})

    def test_sequence_becomes_composite(self):
        schedule = as_fault_schedule(["osd_crash", "straggler"])
        assert isinstance(schedule, CompositeFaultSchedule)

    def test_timeline_width_checked_at_compile(self):
        timeline = FaultTimeline(num_osds=2)
        with pytest.raises(FaultError, match="compiled for 2"):
            compile_fault_schedule(timeline, num_osds=5, horizon_ms=10.0)
