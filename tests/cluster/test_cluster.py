"""Tests for the Ceph-like cluster emulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cachetier import CacheTier
from repro.cluster.cluster import CephLikeCluster, ClusterConfig
from repro.cluster.crush import CrushMap, placement_group_count
from repro.cluster.devices import (
    HDD_SERVICE_TABLE,
    SSD_CACHE_LATENCY_TABLE,
    chunk_size_for_object,
    hdd_service_for_chunk_size,
    hdd_speed_multipliers,
    nearest_measured_chunk_size,
    ssd_service_for_chunk_size,
)
from repro.cluster.osd import OSD, ChunkKey
from repro.cluster.pool import ErasureCodedPool, PoolConfig, equivalent_code_pools
from repro.exceptions import ClusterError, ObjectNotFoundError


class TestDevices:
    def test_hdd_moments_match_table_iv(self):
        for chunk_size, row in HDD_SERVICE_TABLE.items():
            service = hdd_service_for_chunk_size(chunk_size)
            assert service.mean == pytest.approx(row["mean_ms"])
            assert service.variance == pytest.approx(row["variance_ms2"])

    def test_ssd_latency_matches_table_v(self):
        for chunk_size, latency in SSD_CACHE_LATENCY_TABLE.items():
            assert ssd_service_for_chunk_size(chunk_size).mean == pytest.approx(latency)

    def test_unknown_chunk_size_rejected(self):
        with pytest.raises(ClusterError):
            hdd_service_for_chunk_size(7)
        with pytest.raises(ClusterError):
            ssd_service_for_chunk_size(7)

    def test_chunk_size_for_object(self):
        assert chunk_size_for_object(64, k=4) == 16
        assert chunk_size_for_object(1024, k=4) == 256
        assert chunk_size_for_object(100, k=4) == 25
        with pytest.raises(ClusterError):
            chunk_size_for_object(2, k=4)

    def test_nearest_measured_chunk_size(self):
        assert nearest_measured_chunk_size(20) == 16
        assert nearest_measured_chunk_size(200) == 256
        with pytest.raises(ClusterError):
            nearest_measured_chunk_size(0)

    def test_speed_multipliers_deterministic_and_bounded(self):
        first = hdd_speed_multipliers(12, spread=0.3, seed=1)
        second = hdd_speed_multipliers(12, spread=0.3, seed=1)
        assert first == second
        assert all(0.7 <= value <= 1.3 for value in first)


class TestCrush:
    def test_placement_group_count_eq17(self):
        # The paper quotes 256 PGs for the (7,4) pools on 12 OSDs (m = 3
        # parity chunks -> 12 * 100 / 3 = 400 ... the paper's 256 comes from
        # its cache-tier formula usage; verify the formula itself).
        assert placement_group_count(12, 3) == 400
        assert placement_group_count(12, 4) == 300
        # Rounding to a power of two is what Ceph documentation recommends.
        assert placement_group_count(12, 3, round_to_power_of_two=True) == 512

    def test_placement_group_count_validation(self):
        with pytest.raises(ClusterError):
            placement_group_count(0, 2)
        with pytest.raises(ClusterError):
            placement_group_count(12, 0)

    def test_object_mapping_is_deterministic(self):
        crush = CrushMap(range(12), num_placement_groups=64, width=7, seed=3)
        assert crush.osds_for_object("obj-1") == crush.osds_for_object("obj-1")
        assert crush.placement_group_for("obj-1") == crush.placement_group_for("obj-1")

    def test_pg_width_and_distinctness(self):
        crush = CrushMap(range(12), num_placement_groups=64, width=7, seed=3)
        for pg in range(64):
            osds = crush.osds_for_placement_group(pg)
            assert len(osds) == 7
            assert len(set(osds)) == 7

    def test_pg_distribution_covers_all_osds(self):
        crush = CrushMap(range(12), num_placement_groups=256, width=7, seed=3)
        distribution = crush.pg_distribution()
        assert set(distribution) == set(range(12))
        assert all(count > 0 for count in distribution.values())

    def test_validation(self):
        with pytest.raises(ClusterError):
            CrushMap([0, 0, 1], num_placement_groups=4, width=2)
        with pytest.raises(ClusterError):
            CrushMap(range(4), num_placement_groups=4, width=9)
        with pytest.raises(ClusterError):
            CrushMap(range(4), num_placement_groups=0, width=2)


class TestOsd:
    def test_store_and_read(self, rng):
        osd = OSD(0, rng=rng)
        key = ChunkKey(pool="p", object_name="o", chunk_index=0)
        osd.store_chunk(key, 16)
        completion, service_time = osd.read_chunk(key, arrival_time=10.0)
        assert completion >= 10.0 + 0.0
        assert service_time > 0
        assert osd.chunks_read == 1
        assert osd.stored_mb == 16

    def test_read_missing_chunk_raises(self, rng):
        osd = OSD(0, rng=rng)
        with pytest.raises(ClusterError):
            osd.read_chunk(ChunkKey("p", "o", 0), 0.0)

    def test_fifo_queueing(self, rng):
        osd = OSD(0, rng=rng)
        key = ChunkKey("p", "o", 0)
        osd.store_chunk(key, 64)
        first, _ = osd.read_chunk(key, 0.0)
        second, _ = osd.read_chunk(key, 0.0)
        assert second > first

    def test_speed_multiplier_slows_reads(self):
        rng_fast = np.random.default_rng(0)
        rng_slow = np.random.default_rng(0)
        fast = OSD(0, speed_multiplier=1.0, rng=rng_fast)
        slow = OSD(1, speed_multiplier=2.0, rng=rng_slow)
        key = ChunkKey("p", "o", 0)
        fast.store_chunk(key, 16)
        slow.store_chunk(key, 16)
        _, fast_time = fast.read_chunk(key, 0.0)
        _, slow_time = slow.read_chunk(key, 0.0)
        assert slow_time == pytest.approx(2.0 * fast_time)

    def test_drop_chunk(self, rng):
        osd = OSD(0, rng=rng)
        key = ChunkKey("p", "o", 0)
        osd.store_chunk(key, 4)
        assert osd.drop_chunk(key)
        assert not osd.drop_chunk(key)
        assert osd.stored_mb == 0


class TestPools:
    def _osds(self, rng):
        return {osd_id: OSD(osd_id, rng=rng) for osd_id in range(12)}

    def test_write_and_read_object(self, rng):
        pool = ErasureCodedPool(PoolConfig("p", n=7, k=4, chunk_size_mb=16), self._osds(rng))
        pool.write_object("obj", size_mb=64)
        assert pool.has_object("obj")
        completion, osds_used = pool.read_object("obj", arrival_time=0.0)
        assert completion > 0.0
        assert len(osds_used) == 4
        assert len(set(osds_used)) == 4

    def test_read_missing_object(self, rng):
        pool = ErasureCodedPool(PoolConfig("p", n=7, k=4, chunk_size_mb=16), self._osds(rng))
        with pytest.raises(ObjectNotFoundError):
            pool.read_object("missing", 0.0)

    def test_delete_object(self, rng):
        osds = self._osds(rng)
        pool = ErasureCodedPool(PoolConfig("p", n=7, k=4, chunk_size_mb=16), osds)
        pool.write_object("obj", 64)
        stored_before = sum(osd.chunks_stored for osd in osds.values())
        pool.delete_object("obj")
        stored_after = sum(osd.chunks_stored for osd in osds.values())
        assert stored_before - stored_after == 7
        with pytest.raises(ObjectNotFoundError):
            pool.delete_object("obj")

    def test_zero_k_pool_reads_instantly(self, rng):
        pool = ErasureCodedPool(PoolConfig("p0", n=7, k=0, chunk_size_mb=16), self._osds(rng))
        pool.write_object("obj", 64)
        completion, osds_used = pool.read_object("obj", 5.0)
        assert completion == 5.0
        assert osds_used == []

    def test_least_backlog_scheduling_prefers_idle_osds(self, rng):
        osds = self._osds(rng)
        pool = ErasureCodedPool(PoolConfig("p", n=7, k=4, chunk_size_mb=16), osds)
        pool.write_object("obj", 64)
        # Load the first chunk's OSD heavily.
        record_osds = pool.crush.osds_for_object("obj")
        busy = osds[record_osds[0]]
        key = ChunkKey("p", "obj", 0)
        for _ in range(20):
            busy.read_chunk(key, 0.0)
        _, used = pool.read_object("obj", 0.0, scheduling="least_backlog")
        assert record_osds[0] not in used

    def test_random_scheduling(self, rng):
        pool = ErasureCodedPool(PoolConfig("p", n=7, k=4, chunk_size_mb=16), self._osds(rng))
        pool.write_object("obj", 64)
        _, used = pool.read_object("obj", 0.0, rng=rng, scheduling="random")
        assert len(used) == 4
        with pytest.raises(ClusterError):
            pool.read_object("obj", 0.0, scheduling="bogus")

    def test_equivalent_code_pools_family(self, rng):
        pools = equivalent_code_pools(7, 4, 16, self._osds(rng))
        assert sorted(pools) == [0, 1, 2, 3, 4]
        assert pools[0].config.k == 4
        assert pools[4].config.k == 0
        assert pools[2].name == "ec-7-2"

    def test_pool_config_validation(self):
        with pytest.raises(ClusterError):
            PoolConfig("bad", n=3, k=4, chunk_size_mb=16)
        with pytest.raises(ClusterError):
            PoolConfig("bad", n=3, k=2, chunk_size_mb=0)


class TestCacheTier:
    def test_hits_after_promotion(self, rng):
        osds = {osd_id: OSD(osd_id, rng=rng) for osd_id in range(12)}
        pool = ErasureCodedPool(PoolConfig("base", n=7, k=4, chunk_size_mb=16), osds)
        tier = CacheTier(pool, capacity_mb=256, rng=rng)
        tier.write_object("obj", 64)
        # The write leaves the object resident, so the first read hits.
        completion, hit = tier.read_object("obj", 0.0)
        assert hit and completion > 0.0
        assert tier.stats.hit_ratio == 1.0

    def test_miss_promotes_and_evicts_lru(self, rng):
        osds = {osd_id: OSD(osd_id, rng=rng) for osd_id in range(12)}
        pool = ErasureCodedPool(PoolConfig("base", n=7, k=4, chunk_size_mb=16), osds)
        tier = CacheTier(pool, capacity_mb=128, rng=rng)
        tier.write_object("a", 64)
        tier.write_object("b", 64)
        tier.write_object("c", 64)  # evicts "a"
        assert not tier.resident("a")
        _, hit = tier.read_object("a", 0.0)
        assert not hit
        assert tier.resident("a")  # promoted on the miss
        assert tier.stats.promotions == 1

    def test_unknown_object_rejected(self, rng):
        osds = {osd_id: OSD(osd_id, rng=rng) for osd_id in range(12)}
        pool = ErasureCodedPool(PoolConfig("base", n=7, k=4, chunk_size_mb=16), osds)
        tier = CacheTier(pool, capacity_mb=128, rng=rng)
        with pytest.raises(ClusterError):
            tier.read_object("ghost", 0.0)

    def test_validation(self, rng):
        osds = {osd_id: OSD(osd_id, rng=rng) for osd_id in range(12)}
        pool = ErasureCodedPool(PoolConfig("base", n=7, k=4, chunk_size_mb=16), osds)
        with pytest.raises(ClusterError):
            CacheTier(pool, capacity_mb=-1)
        with pytest.raises(ClusterError):
            CacheTier(pool, capacity_mb=10, replication=0)

    def test_zero_capacity_tier_misses_cleanly(self, rng):
        # Degenerate configuration: a zero-capacity tier must serve every
        # read through the miss path (hit ratio 0.0), never raise.
        osds = {osd_id: OSD(osd_id, rng=rng) for osd_id in range(12)}
        pool = ErasureCodedPool(PoolConfig("base", n=7, k=4, chunk_size_mb=16), osds)
        tier = CacheTier(pool, capacity_mb=0, rng=rng)
        tier.write_object("obj", 64)
        for attempt in range(3):
            completion, hit = tier.read_object("obj", float(attempt))
            assert completion > 0.0
            assert not hit
        assert tier.stats.hit_ratio == 0.0
        assert tier.used_mb == 0
        assert tier.stats.evictions_mb == 0.0
        assert tier.stats.promotions == 0  # nothing was actually promoted

    def test_object_larger_than_cache_misses_cleanly(self, rng):
        osds = {osd_id: OSD(osd_id, rng=rng) for osd_id in range(12)}
        pool = ErasureCodedPool(PoolConfig("base", n=7, k=4, chunk_size_mb=16), osds)
        tier = CacheTier(pool, capacity_mb=32, rng=rng)
        tier.write_object("huge", 64)  # bigger than the whole tier
        _, hit = tier.read_object("huge", 0.0)
        assert not hit
        assert not tier.resident("huge")
        assert tier.stats.hit_ratio == 0.0
        # Nothing was resident, so nothing can have been evicted.
        assert tier.stats.evictions_mb == 0.0

    def test_rewrite_with_different_size_recharges_the_policy(self, rng):
        osds = {osd_id: OSD(osd_id, rng=rng) for osd_id in range(12)}
        pool = ErasureCodedPool(PoolConfig("base", n=7, k=4, chunk_size_mb=16), osds)
        tier = CacheTier(pool, capacity_mb=128, rng=rng)
        tier.write_object("a", 16)
        assert tier.used_mb == 16
        tier.write_object("a", 64)  # rewrite larger: footprint must follow
        assert tier.used_mb == 64
        tier.write_object("a", 16)  # and shrink back
        assert tier.used_mb == 16

    def test_eviction_accounting_counts_victim_sizes(self, rng):
        osds = {osd_id: OSD(osd_id, rng=rng) for osd_id in range(12)}
        pool = ErasureCodedPool(PoolConfig("base", n=7, k=4, chunk_size_mb=16), osds)
        tier = CacheTier(pool, capacity_mb=128, rng=rng)
        tier.write_object("a", 64)
        tier.write_object("b", 64)
        tier.write_object("c", 64)  # evicts "a" (64 MB victim)
        assert tier.stats.evictions_mb == 64.0
        # A miss-path promotion that displaces a resident object must be
        # accounted too (the pre-policy implementation missed these).
        _, hit = tier.read_object("a", 0.0)  # miss -> promote, evicts "b"
        assert not hit
        assert tier.stats.evictions_mb == 128.0
        assert tier.stats.promotions == 1


class TestCephLikeCluster:
    def test_config_properties(self):
        config = ClusterConfig(object_size_mb=64, cache_capacity_mb=10 * 1024)
        assert config.chunk_size_mb == 16
        assert config.cache_capacity_chunks == 640
        with pytest.raises(ClusterError):
            ClusterConfig(num_osds=3)

    def test_optimal_configuration_round_trip(self):
        config = ClusterConfig(object_size_mb=64, cache_capacity_mb=1024, seed=5)
        cluster = CephLikeCluster(config)
        pool_map = {f"obj-{i}": i % 5 for i in range(20)}
        cluster.setup_optimal_caching(pool_map)
        for name, allocation in pool_map.items():
            latency = cluster.read_optimal(name, 0.0)
            assert latency >= 0.0
            if allocation == 4:
                # Fully cached object: latency is the SSD read only.
                assert latency <= 4 * 31.0

    def test_baseline_configuration_round_trip(self):
        config = ClusterConfig(object_size_mb=64, cache_capacity_mb=1024, seed=5)
        cluster = CephLikeCluster(config)
        names = [f"obj-{i}" for i in range(30)]
        cluster.setup_lru_baseline(names)
        completion, hit = cluster.read_baseline("obj-0", 0.0)
        assert completion >= 0.0
        assert isinstance(hit, bool)

    def test_read_before_setup_raises(self):
        cluster = CephLikeCluster(ClusterConfig())
        with pytest.raises(ClusterError):
            cluster.read_optimal("x", 0.0)
        with pytest.raises(ClusterError):
            cluster.read_baseline("x", 0.0)

    def test_read_benchmark_modes(self):
        config = ClusterConfig(object_size_mb=64, cache_capacity_mb=2048, seed=5)
        cluster = CephLikeCluster(config)
        pool_map = {f"obj-{i}": (1 if i < 10 else 0) for i in range(40)}
        cluster.setup_optimal_caching(pool_map)
        rates = {name: 0.02 for name in pool_map}
        result = cluster.run_read_benchmark(rates, duration_s=200.0, mode="optimal", seed=3)
        assert result.requests > 0
        assert result.mean_latency_ms() > 0
        assert result.chunks_from_cache + result.chunks_from_storage == result.requests * 4
        with pytest.raises(ClusterError):
            cluster.run_read_benchmark(rates, 10.0, mode="bogus")
