"""Tests for the epoch-batched trace replay (repro.cluster.replay).

The core contract: on a seeded trace, the epoch engine (default
miss-bounded boundaries) reproduces the per-request reference engine's
counters *exactly* and its per-request latencies to within floating-point
reassociation, for every registered policy.  The legacy ``CacheTier`` read
path, now backed by the same LRU policy, classifies the same trace
identically -- a cross-check that the refactor preserved the emulation.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import CephLikeCluster, ClusterConfig
from repro.cluster.crush import CrushMap, placement_group_count
from repro.cluster.replay import ClusterReplay, ReplayTrace
from repro.exceptions import ClusterError


def zipf_rates(num_objects: int, alpha: float, total_rate: float):
    weights = 1.0 / np.arange(1, num_objects + 1) ** alpha
    weights /= weights.sum()
    return {f"obj-{index}": total_rate * float(w) for index, w in enumerate(weights)}


def make_trace(rates, duration_s=400.0, seed=11):
    return ReplayTrace.from_rates(rates, duration_s, seed=seed)


def assert_exact_match(reference, candidate):
    assert candidate.reads == reference.reads
    assert candidate.hits == reference.hits
    assert candidate.promotions == reference.promotions
    assert candidate.evictions_mb == reference.evictions_mb
    assert candidate.chunks_from_cache == reference.chunks_from_cache
    assert candidate.chunks_from_storage == reference.chunks_from_storage
    assert np.array_equal(candidate.hit_mask, reference.hit_mask)
    np.testing.assert_allclose(
        candidate.latencies_ms, reference.latencies_ms, rtol=1e-9, atol=1e-9
    )
    if reference.reads:
        assert candidate.mean_latency_ms() == pytest.approx(
            reference.mean_latency_ms(), rel=1e-9
        )
        assert candidate.hit_ratio == reference.hit_ratio


class TestEngineEquivalence:
    @pytest.mark.parametrize(
        "policy,params",
        [
            ("lru", None),
            ("lfu", None),
            ("arc", None),
            ("ttl", {"ttl": 50_000.0}),
            ("ttl", {"ttl": 50_000.0, "refresh_on_hit": True}),
            ("functional_static", None),
        ],
    )
    def test_epoch_matches_request_engine_exactly(self, policy, params):
        rates = zipf_rates(60, 1.1, 2.0)
        config = ClusterConfig(object_size_mb=64, cache_capacity_mb=64 * 15, seed=5)
        trace = make_trace(rates)
        assert trace.num_requests > 200
        replay = ClusterReplay(config, list(rates), policy=policy, policy_params=params)
        reference = replay.run(trace, engine="request", seed=3)
        epoch = replay.run(trace, engine="epoch", seed=3)
        assert_exact_match(reference, epoch)

    def test_epoch_length_one_is_exact(self):
        rates = zipf_rates(40, 1.0, 1.5)
        config = ClusterConfig(object_size_mb=64, cache_capacity_mb=64 * 10, seed=5)
        trace = make_trace(rates)
        replay = ClusterReplay(config, list(rates), policy="lru")
        reference = replay.run(trace, engine="request", seed=3)
        epoch = replay.run(trace, engine="epoch", seed=3, epoch_length=1)
        assert_exact_match(reference, epoch)

    def test_vectorised_fast_path_engages_and_stays_exact(self):
        # Hot-set workload: long hit runs push the classifier into its
        # doubling vector blocks; exactness must be preserved.
        rates = zipf_rates(50, 2.5, 20.0)
        config = ClusterConfig(object_size_mb=64, cache_capacity_mb=64 * 25, seed=5)
        trace = make_trace(rates, duration_s=2000.0)
        replay = ClusterReplay(config, list(rates), policy="lru")
        reference = replay.run(trace, engine="request", seed=3)
        epoch = replay.run(trace, engine="epoch", seed=3)
        assert reference.hit_ratio > 0.9  # long runs actually occurred
        assert_exact_match(reference, epoch)

    def test_seeded_runs_are_reproducible(self):
        rates = zipf_rates(30, 1.2, 2.0)
        config = ClusterConfig(object_size_mb=64, cache_capacity_mb=64 * 8, seed=5)
        trace = make_trace(rates)
        replay = ClusterReplay(config, list(rates), policy="lru")
        first = replay.run(trace, engine="epoch", seed=3)
        second = replay.run(trace, engine="epoch", seed=3)
        np.testing.assert_array_equal(first.latencies_ms, second.latencies_ms)
        third = replay.run(trace, engine="epoch", seed=4)
        assert not np.array_equal(first.latencies_ms, third.latencies_ms)

    @given(epoch_length=st.integers(min_value=1, max_value=400))
    @settings(max_examples=12, deadline=None)
    def test_fixed_epoch_lengths_preserve_invariants(self, epoch_length):
        # Property: any epoch length yields consistent counters, and the
        # frozen approximation's hit-ratio drift shrinks with the epoch
        # length (state only drifts within one frozen epoch, so the error
        # is at most proportional to E).
        rates = zipf_rates(40, 1.3, 3.0)
        config = ClusterConfig(object_size_mb=64, cache_capacity_mb=64 * 12, seed=5)
        trace = make_trace(rates, duration_s=300.0, seed=13)
        replay = ClusterReplay(config, list(rates), policy="lru")
        exact = replay.run(trace, engine="epoch", seed=3)
        frozen = replay.run(trace, engine="epoch", seed=3, epoch_length=epoch_length)
        assert frozen.reads == exact.reads
        assert frozen.hits + frozen.misses == frozen.reads
        assert frozen.chunks_from_cache + frozen.chunks_from_storage == frozen.reads * 4
        assert abs(frozen.hit_ratio - exact.hit_ratio) <= 0.02 + epoch_length / 500.0
        assert np.all(frozen.latencies_ms >= 0.0)

    def test_ttl_expiry_at_epoch_boundaries(self):
        # A short TTL forces many time-driven boundaries; both engines must
        # still agree exactly.
        rates = zipf_rates(25, 1.0, 2.0)
        config = ClusterConfig(object_size_mb=64, cache_capacity_mb=64 * 10, seed=5)
        trace = make_trace(rates, duration_s=300.0)
        replay = ClusterReplay(
            config, list(rates), policy="ttl", policy_params={"ttl": 5_000.0}
        )
        reference = replay.run(trace, engine="request", seed=3)
        epoch = replay.run(trace, engine="epoch", seed=3)
        assert reference.misses > 0  # expiries actually caused misses
        assert_exact_match(reference, epoch)


class TestLegacyCrossCheck:
    def test_cache_tier_classifies_the_same_trace_identically(self):
        rates = zipf_rates(40, 1.2, 2.0)
        config = ClusterConfig(object_size_mb=64, cache_capacity_mb=64 * 10, seed=5)
        trace = make_trace(rates)
        replay = ClusterReplay(config, list(rates), policy="lru")
        epoch = replay.run(trace, engine="epoch", seed=3)

        cluster = CephLikeCluster(config)
        cluster.setup_lru_baseline(list(rates))
        tier = cluster.cache_tier
        setup_evictions_mb = tier.stats.evictions_mb  # write-path evictions
        hits = 0
        for time_ms, position in zip(
            trace.times_ms.tolist(), trace.object_positions.tolist()
        ):
            _, hit = tier.read_object(trace.object_ids[position], time_ms)
            hits += hit
        assert hits == epoch.hits
        assert tier.stats.promotions == epoch.promotions
        assert tier.stats.evictions_mb - setup_evictions_mb == epoch.evictions_mb

    def test_run_replay_benchmark_entry_point(self):
        rates = zipf_rates(30, 1.2, 2.0)
        config = ClusterConfig(object_size_mb=64, cache_capacity_mb=64 * 8, seed=5)
        cluster = CephLikeCluster(config)
        result = cluster.run_replay_benchmark(rates, duration_s=200.0, policy="lfu")
        assert result.engine == "epoch"
        assert result.policy == "lfu"
        assert result.reads > 0
        assert result.mean_latency_ms() > 0.0


class TestDegenerateConfigurations:
    def test_zero_capacity_cache_never_hits_and_never_raises(self):
        rates = zipf_rates(20, 1.0, 2.0)
        config = ClusterConfig(object_size_mb=64, cache_capacity_mb=0, seed=5)
        trace = make_trace(rates, duration_s=200.0)
        for engine in ("request", "epoch"):
            replay = ClusterReplay(config, list(rates), policy="lru")
            result = replay.run(trace, engine=engine, seed=3)
            assert result.hit_ratio == 0.0
            assert result.hits == 0
            assert result.promotions == 0
            assert result.evictions_mb == 0.0
            assert result.chunks_from_storage == result.reads * 4

    def test_empty_trace(self):
        rates = {"obj-0": 1.0}
        config = ClusterConfig(object_size_mb=64, cache_capacity_mb=640, seed=5)
        trace = ReplayTrace(
            times_ms=np.empty(0), object_positions=np.empty(0, np.int64), object_ids=["obj-0"]
        )
        replay = ClusterReplay(config, ["obj-0"], policy="lru")
        result = replay.run(trace, engine="epoch", seed=3)
        assert result.reads == 0 and result.hit_ratio == 0.0
        # Documented contract: an empty latency population yields nan.
        assert math.isnan(result.mean_latency_ms())
        assert math.isnan(result.percentile_ms(99.0))

    def test_trace_validation_rejects_corrupt_inputs(self):
        ids = ["obj-0", "obj-1"]
        good = dict(
            times_ms=np.asarray([1.0, 2.0]),
            object_positions=np.asarray([0, 1]),
            object_ids=ids,
        )
        ReplayTrace(**good)  # sanity: the healthy shape constructs
        with pytest.raises(ClusterError, match="non-negative"):
            ReplayTrace(**{**good, "times_ms": np.asarray([-1.0, 2.0])})
        with pytest.raises(ClusterError, match="sorted"):
            ReplayTrace(**{**good, "times_ms": np.asarray([2.0, 1.0])})
        with pytest.raises(ClusterError, match="finite"):
            ReplayTrace(**{**good, "times_ms": np.asarray([1.0, np.nan])})
        with pytest.raises(ClusterError, match="exactly one"):
            ReplayTrace(**{**good, "object_positions": np.asarray([0])})
        with pytest.raises(ClusterError, match="index object_ids"):
            ReplayTrace(**{**good, "object_positions": np.asarray([0, 5])})
        with pytest.raises(ClusterError, match="index object_ids"):
            ReplayTrace(**{**good, "object_positions": np.asarray([-1, 0])})

    def test_validation(self):
        rates = zipf_rates(5, 1.0, 1.0)
        config = ClusterConfig(object_size_mb=64, cache_capacity_mb=640, seed=5)
        trace = make_trace(rates, duration_s=50.0)
        replay = ClusterReplay(config, list(rates), policy="lru")
        with pytest.raises(ClusterError):
            replay.run(trace, engine="warp")
        with pytest.raises(ClusterError):
            replay.run(trace, engine="epoch", epoch_length=0)
        with pytest.raises(ClusterError):
            ClusterReplay(config, ["a", "a"], policy="lru")
        foreign = ReplayTrace(
            times_ms=np.asarray([1.0]),
            object_positions=np.asarray([0]),
            object_ids=["ghost"],
        )
        with pytest.raises(ClusterError):
            replay.run(foreign, engine="epoch")


class TestCrushDeterminism:
    """Placement determinism guarantees the replay's CRUSH table matches
    the pool's for the same (osds, pg count, width, seed)."""

    def test_same_seed_same_map_across_instances(self):
        first = CrushMap(range(12), num_placement_groups=128, width=7, seed=9)
        second = CrushMap(range(12), num_placement_groups=128, width=7, seed=9)
        for pg in range(128):
            assert first.osds_for_placement_group(pg) == second.osds_for_placement_group(pg)
        for name in ("obj-a", "obj-b", "nested/object.0"):
            assert first.osds_for_object(name) == second.osds_for_object(name)

    def test_different_seeds_differ(self):
        first = CrushMap(range(12), num_placement_groups=128, width=7, seed=9)
        second = CrushMap(range(12), num_placement_groups=128, width=7, seed=10)
        assert any(
            first.osds_for_placement_group(pg) != second.osds_for_placement_group(pg)
            for pg in range(128)
        )

    def test_object_hash_is_process_stable(self):
        # sha256-based placement-group hashing must not depend on
        # PYTHONHASHSEED; pin a few known values.
        crush = CrushMap(range(12), num_placement_groups=256, width=7, seed=0)
        assert crush.placement_group_for("obj-0") == crush.placement_group_for("obj-0")
        from repro.cluster.crush import _stable_hash

        assert _stable_hash("obj-0") == 9919721417370829493
        assert _stable_hash("") == 16406829232824261652

    def test_replay_placement_matches_pool_placement(self, rng):
        from repro.cluster.osd import OSD
        from repro.cluster.pool import ErasureCodedPool, PoolConfig

        config = ClusterConfig(object_size_mb=64, cache_capacity_mb=640, seed=21)
        object_ids = [f"obj-{index}" for index in range(16)]
        replay = ClusterReplay(config, object_ids, policy="lru")
        osds = {osd_id: OSD(osd_id, rng=rng) for osd_id in range(config.num_osds)}
        pool = ErasureCodedPool(
            PoolConfig("ec-base", n=config.n, k=config.k, chunk_size_mb=config.chunk_size_mb),
            osds,
            crush_seed=config.seed,
        )
        for position, object_id in enumerate(object_ids):
            assert (
                replay._placement[position].tolist()  # noqa: SLF001
                == pool.crush.osds_for_object(object_id)
            )

    def test_pg_count_matches_pool_formula(self):
        assert placement_group_count(12, 3) == 400
        assert placement_group_count(8, 4, round_to_power_of_two=True) == 256
