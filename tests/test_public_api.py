"""Tests for the package-level public API and the exception hierarchy."""

from __future__ import annotations

import pytest

import repro
from repro import exceptions


class TestPublicApi:
    def test_version_exposed(self):
        assert repro.__version__ == "1.5.0"

    def test_top_level_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_api_facade_exports_resolve(self):
        import repro.api as api

        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_facade_reexported_at_top_level(self):
        assert repro.Scenario is repro.api.Scenario
        assert repro.run_scenario is repro.api.run_scenario
        assert repro.run_experiment is repro.api.run_experiment

    def test_subpackage_exports_resolve(self):
        import repro.baselines as baselines
        import repro.cluster as cluster
        import repro.erasure as erasure
        import repro.queueing as queueing
        import repro.scheduling as scheduling
        import repro.simulation as simulation
        import repro.workloads as workloads

        for module in (erasure, queueing, scheduling, simulation, baselines, cluster, workloads):
            for name in module.__all__:
                assert getattr(module, name) is not None

    def test_quickstart_snippet_from_docstring(self):
        # The module docstring promises this three-line workflow.
        from repro import Scenario, run_scenario

        result = run_scenario(
            Scenario(num_files=10, cache_capacity=5, tolerance=0.05, simulate=False)
        )
        assert result.placement.total_cached_chunks <= 5
        assert "analytical bound" in result.summary()

    def test_optimize_cache_placement_is_deprecated_but_works(self):
        from repro.workloads.defaults import paper_default_model

        model = paper_default_model(num_files=5, cache_capacity=2)
        with pytest.warns(DeprecationWarning, match="optimize_cache_placement"):
            outcome = repro.optimize_cache_placement(model, tolerance=0.05)
        assert outcome.placement.total_cached_chunks <= 2


class TestExceptionHierarchy:
    def test_all_errors_derive_from_sprout_error(self):
        leaf_exceptions = [
            exceptions.ErasureCodeError,
            exceptions.InsufficientChunksError,
            exceptions.GaloisFieldError,
            exceptions.ModelError,
            exceptions.StabilityError,
            exceptions.OptimizationError,
            exceptions.InfeasibleError,
            exceptions.SimulationError,
            exceptions.ClusterError,
            exceptions.PoolNotFoundError,
            exceptions.ObjectNotFoundError,
            exceptions.CacheError,
            exceptions.WorkloadError,
            exceptions.RegistryError,
            exceptions.ScenarioError,
        ]
        for exception_type in leaf_exceptions:
            assert issubclass(exception_type, exceptions.SproutError)

    def test_specialisations(self):
        assert issubclass(exceptions.InsufficientChunksError, exceptions.ErasureCodeError)
        assert issubclass(exceptions.StabilityError, exceptions.ModelError)
        assert issubclass(exceptions.InfeasibleError, exceptions.OptimizationError)
        assert issubclass(exceptions.ObjectNotFoundError, exceptions.ClusterError)

    def test_catching_base_class(self):
        with pytest.raises(exceptions.SproutError):
            raise exceptions.CacheError("boom")
